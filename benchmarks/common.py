"""Shared workload builders for the benchmark harness.

Every benchmark reproduces one table or figure of the paper's evaluation
(Section V) or one of the ablations listed in DESIGN.md.  The workloads follow
the paper's setup — 9 data owners, 8:2 train/test split, per-owner Gaussian
noise ``N(0, (σ·i)²)``, logistic regression + FedAvg — but on a reduced sample
count and epoch budget so the whole suite completes in minutes on a laptop.
Reduced scale changes absolute numbers, not the shapes the paper reports.

σ values: the paper reports σ on the raw 0..16 pixel scale; our features are
normalized to [0, 1], so the sweep below uses the equivalent σ/16-style values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.loader import Dataset, OwnerDataset, make_owner_datasets
from repro.fl.client import DataOwner
from repro.fl.server import CentralizedTrainer
from repro.fl.trainer import FederatedTrainer, TrainingConfig
from repro.shapley.group import GroupShapleyResult, accumulate_user_values, group_shapley_round
from repro.shapley.native import native_shapley
from repro.shapley.utility import AccuracyUtility, CachedUtility, RetrainUtility

# Paper setup (Section V.A), reduced for benchmark runtime.
N_OWNERS = 9
N_SAMPLES = 1200
SEED = 7
PERMUTATION_SEED = 13
SIGMAS = (0.0, 0.05, 0.1, 0.2)
RETRAIN_EPOCHS = 30
LOCAL_EPOCHS = 10
LEARNING_RATE = 2.0
FL_ROUNDS = 2
GROUP_COUNTS = tuple(range(2, N_OWNERS + 1))


@dataclass
class PaperWorkload:
    """Everything one σ setting needs: data, owners, scorer, and trainers."""

    sigma: float
    dataset: Dataset
    owners: list[OwnerDataset]
    scorer: AccuracyUtility

    @property
    def owner_ids(self) -> list[str]:
        return [owner.owner_id for owner in self.owners]

    def owner_features(self) -> dict[str, np.ndarray]:
        return {owner.owner_id: owner.features for owner in self.owners}

    def owner_labels(self) -> dict[str, np.ndarray]:
        return {owner.owner_id: owner.labels for owner in self.owners}


def build_workload(sigma: float, n_owners: int = N_OWNERS, n_samples: int = N_SAMPLES) -> PaperWorkload:
    """The Section V.A setup for one σ value."""
    dataset, owners = make_owner_datasets(
        n_owners=n_owners, sigma=sigma, n_samples=n_samples, seed=SEED, normalized=True
    )
    scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
    return PaperWorkload(sigma=sigma, dataset=dataset, owners=owners, scorer=scorer)


def ground_truth_shapley(
    workload: PaperWorkload, epochs: int = RETRAIN_EPOCHS, n_workers: int | None = None
) -> dict[str, float]:
    """Fig. 1 ground truth: native SV over 2^n retrained data-coalition models.

    ``n_workers > 1`` retrains the coalitions on a process pool (identical
    values — the parallel backend is parity-pinned to the serial path).
    """
    trainer = CentralizedTrainer(
        workload.dataset.n_features,
        workload.dataset.n_classes,
        epochs=epochs,
        learning_rate=LEARNING_RATE,
    )
    utility = CachedUtility(
        RetrainUtility(
            workload.owner_features(), workload.owner_labels(), workload.scorer,
            trainer=trainer, n_workers=n_workers,
        )
    )
    return native_shapley(workload.owner_ids, utility)


def train_local_models(workload: PaperWorkload, round_number: int, start_parameters=None):
    """One FedAvg round of local training; returns (local models, global model)."""
    clients = [
        DataOwner(
            owner.owner_id, owner.features, owner.labels, workload.dataset.n_classes,
            local_epochs=LOCAL_EPOCHS, learning_rate=LEARNING_RATE,
        )
        for owner in workload.owners
    ]
    trainer = FederatedTrainer(
        clients,
        workload.dataset.n_features,
        workload.dataset.n_classes,
        TrainingConfig(n_rounds=1, local_epochs=LOCAL_EPOCHS, learning_rate=LEARNING_RATE),
    )
    start = trainer.initial_parameters() if start_parameters is None else start_parameters
    record = trainer.run_round(start, round_number)
    local_models = {update.owner_id: update.parameters for update in record.updates}
    return local_models, record.global_parameters


def group_shapley_over_rounds(
    workload: PaperWorkload, m: int, n_rounds: int = FL_ROUNDS
) -> tuple[dict[str, float], list[GroupShapleyResult]]:
    """GroupSV accumulated over ``n_rounds`` federated rounds (v_i = Σ_r v_i^r)."""
    global_parameters = None
    results = []
    for round_number in range(n_rounds):
        local_models, _ = train_local_models(workload, round_number, global_parameters)
        result = group_shapley_round(local_models, m, PERMUTATION_SEED, round_number, workload.scorer)
        results.append(result)
        global_parameters = result.global_model
    return accumulate_user_values(results), results


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a plain-text table (the benches print what the paper tabulates)."""
    widths = [max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) for i in range(len(headers))]
    lines = [" | ".join(str(headers[i]).rjust(widths[i]) for i in range(len(headers)))]
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(str(row[i]).rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
