"""Experiment E7 (extension) — Monte-Carlo SV baselines vs GroupSV.

The related-work section cites permutation-sampling estimators (Ghorbani & Zou,
Jia et al.) as the standard way to cut the 2^n cost of exact SV.  This bench
compares them with GroupSV on the same round of local models:

* accuracy: cosine similarity to the native SV over local models;
* cost: number of distinct coalition-utility evaluations.

GroupSV's selling point in the paper is not raw accuracy but compatibility with
secure aggregation; this bench quantifies what that compatibility costs.
"""

from __future__ import annotations

import time

from benchmarks.common import PERMUTATION_SEED, build_workload, format_table, train_local_models
from repro.shapley.group import group_shapley_round
from repro.shapley.metrics import cosine_similarity
from repro.shapley.montecarlo import permutation_sampling_shapley, truncated_monte_carlo_shapley
from repro.shapley.native import native_shapley
from repro.shapley.utility import CachedUtility, CoalitionModelUtility


def _compare_estimators():
    workload = build_workload(sigma=0.1)
    local_models, _ = train_local_models(workload, round_number=0)
    owners = sorted(local_models)

    exact_cache = CachedUtility(CoalitionModelUtility(local_models, workload.scorer))
    start = time.perf_counter()
    exact = native_shapley(owners, exact_cache)
    exact_time = time.perf_counter() - start

    results = {"native": {"values": exact, "evaluations": exact_cache.evaluations(), "seconds": exact_time}}

    for n_permutations in (20, 100):
        cache = CachedUtility(CoalitionModelUtility(local_models, workload.scorer))
        start = time.perf_counter()
        estimate = permutation_sampling_shapley(owners, cache, n_permutations=n_permutations, seed=1)
        results[f"perm-{n_permutations}"] = {
            "values": estimate, "evaluations": cache.evaluations(), "seconds": time.perf_counter() - start,
        }

    cache = CachedUtility(CoalitionModelUtility(local_models, workload.scorer))
    start = time.perf_counter()
    tmc = truncated_monte_carlo_shapley(owners, cache, n_permutations=100, tolerance=0.02, seed=1)
    results["tmc-100"] = {"values": tmc, "evaluations": cache.evaluations(), "seconds": time.perf_counter() - start}

    for m in (3, 6, len(owners)):
        start = time.perf_counter()
        group = group_shapley_round(local_models, m, PERMUTATION_SEED, 0, workload.scorer)
        results[f"groupsv-m{m}"] = {
            "values": group.user_values,
            "evaluations": len(group.coalition_utilities),
            "seconds": time.perf_counter() - start,
        }
    return results


def bench_ablation_montecarlo_baselines(benchmark):
    """Compare GroupSV with permutation-sampling SV estimators."""
    results = benchmark.pedantic(_compare_estimators, rounds=1, iterations=1, warmup_rounds=0)

    exact = results["native"]["values"]
    rows = []
    for name, payload in results.items():
        similarity = cosine_similarity(payload["values"], exact)
        rows.append([name, f"{similarity:.4f}", payload["evaluations"], f"{payload['seconds']:.3f}"])
    print("\nE7 — SV estimators: similarity to native SV, utility evaluations, runtime")
    print(format_table(["estimator", "cosine to native", "utility evals", "seconds"], rows))

    benchmark.extra_info["summary"] = {
        name: {"cosine": cosine_similarity(payload["values"], exact), "evaluations": payload["evaluations"]}
        for name, payload in results.items()
    }

    # Monte-Carlo with enough permutations approximates native SV well.
    assert cosine_similarity(results["perm-100"]["values"], exact) > 0.95
    # GroupSV at full resolution *is* the native SV over these local models.
    assert cosine_similarity(results[f"groupsv-m{len(exact)}"]["values"], exact) > 0.999
    # GroupSV at moderate m uses far fewer utility evaluations than native SV.
    assert results["groupsv-m3"]["evaluations"] < results["native"]["evaluations"] / 10
