"""Experiment E1 — Figure 1: ground-truth SV distribution over users vs σ.

The paper builds all 2^n data-coalition models, computes native SV (Eq. 1),
and shows that (a) with σ = 0 every owner's SV is close to zero / uniform, and
(b) with σ > 0 the SV decreases with the owner's noise rank (better data ⇒
higher SV), with the spread growing as σ grows.

This bench regenerates that figure's data series: one row per owner, one
column per σ.  The assertions check the *shape* the paper reports, not the
absolute values (our substrate is a reduced-scale simulation).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import SIGMAS, build_workload, format_table, ground_truth_shapley
from repro.shapley.metrics import spearman_correlation


def _ground_truth_series():
    """Native SV per owner for every σ in the sweep."""
    series = {}
    for sigma in SIGMAS:
        workload = build_workload(sigma)
        series[sigma] = ground_truth_shapley(workload)
    return series


def bench_fig1_ground_truth_sv_distribution(benchmark):
    """Regenerate Fig. 1 and check its qualitative shape."""
    series = benchmark.pedantic(_ground_truth_series, rounds=1, iterations=1, warmup_rounds=0)

    owners = sorted(next(iter(series.values())))
    rows = []
    for owner_rank, owner in enumerate(owners):
        rows.append([owner, owner_rank] + [f"{series[sigma][owner]:+.4f}" for sigma in SIGMAS])
    print("\nFig. 1 — ground-truth Shapley value per owner (columns: sigma sweep)")
    print(format_table(["owner", "noise rank"] + [f"sigma={s}" for s in SIGMAS], rows))

    # Shape 1: at sigma = 0 the SV spread over owners is small (near-uniform).
    clean_values = np.array([series[0.0][owner] for owner in owners])
    # Shape 2: at the largest sigma, SV anti-correlates with the noise rank
    # (owner-0 has the cleanest data and the highest value).
    noisy_values = np.array([series[SIGMAS[-1]][owner] for owner in owners])
    ranks = np.arange(len(owners), dtype=float)
    correlation = spearman_correlation(noisy_values.tolist(), (-ranks).tolist())
    spread_clean = clean_values.max() - clean_values.min()
    spread_noisy = noisy_values.max() - noisy_values.min()
    print(f"\nSV spread at sigma=0: {spread_clean:.4f}; at sigma={SIGMAS[-1]}: {spread_noisy:.4f}")
    print(f"Spearman(SV, data quality) at sigma={SIGMAS[-1]}: {correlation:.3f}")

    benchmark.extra_info["spread_sigma0"] = float(spread_clean)
    benchmark.extra_info["spread_sigma_max"] = float(spread_noisy)
    benchmark.extra_info["quality_rank_correlation"] = float(correlation)

    assert spread_noisy > spread_clean, "noise should spread the SV distribution"
    assert correlation > 0.5, "higher data quality should mean higher SV at large sigma"
