"""Experiment E5 (extension) — blockchain overhead and throughput bottlenecks.

Future work §VI item 1 of the paper asks where the bottlenecks lie when the
protocol is deployed on a real chain.  Two measurements:

1. *measured* — run the full in-process protocol for several cohort sizes and
   report transactions, bytes on the wire, and abstract gas per round;
2. *modelled* — feed the measured per-update payload size into analytic
   Ethereum-like and Hyperledger-like throughput models and report the
   achievable rounds/hour and the binding constraint.
"""

from __future__ import annotations

from benchmarks.common import format_table
from repro.analysis.throughput import ThroughputModel, measure_chain_overhead
from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets

COHORT_SIZES = (3, 5, 7)


def _run_protocols():
    reports = {}
    update_bytes = {}
    for n_owners in COHORT_SIZES:
        dataset, owners = make_owner_datasets(n_owners=n_owners, sigma=0.1, n_samples=600, seed=11)
        config = ProtocolConfig(
            n_owners=n_owners, n_groups=min(3, n_owners), n_rounds=2, local_epochs=3, learning_rate=2.0
        )
        protocol = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
        )
        result = protocol.run()
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        reports[n_owners] = measure_chain_overhead(chain, result.network_stats, config.n_rounds)
        # Masked update payload: model dimension * 8 bytes (uint64 ring elements),
        # plus base64 expansion on the wire (~4/3).
        update_bytes[n_owners] = int(protocol.model_dimension * 8 * 4 / 3)
    return reports, update_bytes


def bench_ablation_blockchain_throughput(benchmark):
    """Measure protocol overhead and model deployment throughput."""
    reports, update_bytes = benchmark.pedantic(_run_protocols, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    for n_owners, report in reports.items():
        rows.append([
            n_owners, report.n_blocks, report.n_transactions,
            f"{report.transactions_per_round:.1f}", f"{report.bytes_per_round / 1024:.1f}",
            f"{report.gas_per_round:.0f}",
        ])
    print("\nE5a — measured on-chain overhead per cohort size")
    print(format_table(["owners", "blocks", "txs", "txs/round", "KiB/round", "gas/round"], rows))

    eth = ThroughputModel.ethereum_like()
    fabric = ThroughputModel.hyperledger_like()
    model_rows = []
    for n_owners in COHORT_SIZES:
        payload = update_bytes[n_owners]
        model_rows.append([
            n_owners, payload,
            f"{eth.rounds_per_hour(n_owners, payload):.1f}", eth.bottleneck(n_owners, payload),
            f"{fabric.rounds_per_hour(n_owners, payload):.1f}", fabric.bottleneck(n_owners, payload),
        ])
    print("\nE5b — modelled deployment throughput (rounds/hour and binding constraint)")
    print(format_table(
        ["owners", "update bytes", "eth rounds/h", "eth bottleneck", "fabric rounds/h", "fabric bottleneck"],
        model_rows,
    ))

    benchmark.extra_info["txs_per_round"] = {str(k): r.transactions_per_round for k, r in reports.items()}

    # Overhead grows with the cohort: more owners ⇒ more update transactions and bytes per round.
    tx_rates = [reports[n].transactions_per_round for n in COHORT_SIZES]
    byte_rates = [reports[n].bytes_per_round for n in COHORT_SIZES]
    assert tx_rates == sorted(tx_rates)
    assert byte_rates == sorted(byte_rates)
    # A permissioned chain sustains at least as many rounds/hour as a public one.
    assert fabric.rounds_per_hour(9, update_bytes[COHORT_SIZES[-1]]) >= eth.rounds_per_hour(
        9, update_bytes[COHORT_SIZES[-1]]
    )
