"""Experiment E3 — Table I: runtime of GroupSV vs native SV.

The paper reports the wall-clock time of the contribution-evaluation phase:
GroupSV for m = 2..9 (2 s up to 77 s) versus native SV with 9 users (316 s) —
an order-of-magnitude gap, because GroupSV aggregates coalition models from the
n local updates while native SV retrains 2^n coalition models from raw data.

This bench measures the same two quantities on our (reduced-scale) workload and
asserts the shape: GroupSV runtime grows with m, and native SV is at least an
order of magnitude slower than GroupSV at small m.
"""

from __future__ import annotations

import time

from benchmarks.common import GROUP_COUNTS, build_workload, format_table, ground_truth_shapley, group_shapley_over_rounds


def _measure_runtimes():
    """Wall-clock seconds of GroupSV per m and of the native (retraining) SV."""
    workload = build_workload(sigma=0.1)

    group_times = {}
    for m in GROUP_COUNTS:
        start = time.perf_counter()
        group_shapley_over_rounds(workload, m, n_rounds=1)
        group_times[m] = time.perf_counter() - start

    start = time.perf_counter()
    ground_truth_shapley(workload)
    native_time = time.perf_counter() - start
    return group_times, native_time


def bench_table1_groupsv_vs_native_runtime(benchmark):
    """Regenerate Table I and check the order-of-magnitude gap."""
    group_times, native_time = benchmark.pedantic(_measure_runtimes, rounds=1, iterations=1, warmup_rounds=0)

    headers = ["method"] + [f"m={m}" for m in GROUP_COUNTS] + ["native (n=9)"]
    row = ["time / s"] + [f"{group_times[m]:.2f}" for m in GROUP_COUNTS] + [f"{native_time:.2f}"]
    print("\nTable I — contribution-evaluation runtime, GroupSV vs native SV")
    print(format_table(headers, [row]))

    speedup_small_m = native_time / group_times[GROUP_COUNTS[0]]
    speedup_large_m = native_time / group_times[GROUP_COUNTS[-1]]
    print(f"\nspeedup over native SV: {speedup_small_m:.1f}x at m={GROUP_COUNTS[0]}, "
          f"{speedup_large_m:.1f}x at m={GROUP_COUNTS[-1]}")

    benchmark.extra_info["group_times"] = {str(m): float(t) for m, t in group_times.items()}
    benchmark.extra_info["native_time"] = float(native_time)

    # Shape 1: GroupSV cost grows with the number of groups (2^m coalition models).
    assert group_times[GROUP_COUNTS[-1]] > group_times[GROUP_COUNTS[0]]
    # Shape 2: native SV is at least an order of magnitude more expensive than
    # GroupSV at small m, mirroring the 316 s vs 2 s gap in the paper.
    assert speedup_small_m > 10.0
    # Shape 3: even at full resolution (m = n) GroupSV stays cheaper than native SV.
    assert native_time > group_times[GROUP_COUNTS[-1]]
