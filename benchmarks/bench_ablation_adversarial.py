"""Experiment E6 (extension) — adversarial participants vs GroupSV.

Future work §VI item 2: how do adversarial participants affect the Shapley
value calculation?  For each attack type (free-riding noise, zero update,
scaling) and for two group counts, this bench runs the full on-chain protocol
and reports the attacker's contribution relative to its honest counterfactual
and the damage to the global model.
"""

from __future__ import annotations

from benchmarks.common import format_table
from repro.core.adversary import AdversaryBehavior
from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets

ATTACKS = {
    "noise": AdversaryBehavior(kind="noise", magnitude=3.0, seed=3),
    "zero": AdversaryBehavior(kind="zero"),
    "scale": AdversaryBehavior(kind="scale", magnitude=20.0),
}
GROUP_COUNTS = (2, 5)
N_OWNERS = 5


def _run(owners, dataset, m, adversaries=None):
    config = ProtocolConfig(
        n_owners=N_OWNERS, n_groups=m, n_rounds=2, local_epochs=3, learning_rate=2.0, permutation_seed=13
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config, adversaries=adversaries
    )
    return protocol.run()


def _adversarial_sweep():
    dataset, owners = make_owner_datasets(n_owners=N_OWNERS, sigma=0.1, n_samples=800, seed=19)
    attacker = owners[1].owner_id
    results = {}
    for m in GROUP_COUNTS:
        honest = _run(owners, dataset, m)
        results[(m, "honest")] = (honest.total_contributions[attacker], honest.rounds[-1].global_utility)
        for name, behaviour in ATTACKS.items():
            tampered = _run(owners, dataset, m, adversaries={attacker: behaviour})
            results[(m, name)] = (
                tampered.total_contributions[attacker],
                tampered.rounds[-1].global_utility,
            )
    return attacker, results


def bench_ablation_adversarial_participants(benchmark):
    """Measure the attacker's evaluated contribution under each attack and m."""
    attacker, results = benchmark.pedantic(_adversarial_sweep, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    for (m, scenario), (contribution, utility) in sorted(results.items()):
        rows.append([m, scenario, f"{contribution:+.4f}", f"{utility:.4f}"])
    print(f"\nE6 — attacker {attacker}: contribution and global utility per scenario")
    print(format_table(["m", "scenario", "attacker contribution", "global utility"], rows))

    benchmark.extra_info["results"] = {
        f"m={m}/{scenario}": {"contribution": c, "utility": u} for (m, scenario), (c, u) in results.items()
    }

    # With fine grouping (here m = n, singleton groups) GroupSV isolates the
    # attacker: the value-destroying attacks (free-riding noise, zero updates)
    # must lower its evaluated contribution and must not improve the shared
    # model.  The scaling attack is reported but not asserted on — boosting an
    # under-fit logistic-regression model can accidentally help, which is
    # precisely the m-and-behaviour sensitivity the paper's future work flags.
    fine_m = GROUP_COUNTS[-1]
    honest_contribution, honest_utility = results[(fine_m, "honest")]
    for name in ("noise", "zero"):
        attack_contribution, attack_utility = results[(fine_m, name)]
        assert attack_contribution < honest_contribution + 1e-9, (fine_m, name)
        assert attack_utility <= honest_utility + 0.05, (fine_m, name)

    # With coarse grouping the attacker can partially hide behind its group
    # mates — exactly the sensitivity to m the paper's future work flags.  We
    # report the drop at both resolutions; the fine-grained drop must be at
    # least as decisive as the coarse one for the free-riding (noise) attack.
    coarse_drop = results[(GROUP_COUNTS[0], "honest")][0] - results[(GROUP_COUNTS[0], "noise")][0]
    fine_drop = results[(fine_m, "honest")][0] - results[(fine_m, "noise")][0]
    print(f"\ncontribution drop under the noise attack: m={GROUP_COUNTS[0]}: {coarse_drop:.4f}, "
          f"m={fine_m}: {fine_drop:.4f}")
    assert fine_drop >= coarse_drop - 1e-9
