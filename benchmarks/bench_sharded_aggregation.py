"""Benchmark — sharded secure aggregation and the sampled GroupSV estimator.

Two costs changed in the cross-device PR:

* per-client mask setup: under the flat topology a client derives one DH
  shared secret and one PRNG mask per *cohort* member; under the sharded
  topology only per *shard* member.  Measured as one client's end-to-end
  submission cost (secret derivation + mask expansion + ring fold) at cohort
  sizes up to 10k against shard sizes 16/32/64.
* contribution resolution: exact GroupSV is 2^m in the number of aggregation
  groups; the stratified+truncated permutation estimator replaces it with a
  chosen sample budget.  Measured as estimate-vs-exact error at m = 12 (where
  exact is still computable) with the estimator's own confidence interval as
  the acceptance bar.

The batched-estimator PR then made committee scoring itself the target: the
scalar permutation walk re-folds and re-scores every prefix, while the batched
pipeline builds prefix rows incrementally, dedups coalitions through a bitmask
cache, and scores each block in one GEMM.  Measured here as scalar-vs-batched
wall time on the cross-device game shape (m = ceil(devices / shard) groups,
68-dim models), with bit-identical estimates asserted and a >= 3x speedup
floor pinned at committee sizes of 48+ groups.

The recorded ``extra_info`` feeds the BENCH_shapley.json perf trajectory
(scripts/export_bench_trajectory.py); the asserts pin the acceptance floors.
Reduced-size CI runs shrink the workload through REPRO_BENCH_* without
touching the correctness bars.
"""

from __future__ import annotations

import os
import time

from benchmarks.common import format_table
from repro.core.crossdevice import CrossDeviceConfig, simulate_cross_device
from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import PairwiseMasker
from repro.datasets.synthetic import make_blobs
from repro.shapley.backend import ProcessPoolEvaluationBackend
from repro.shapley.engine import (
    coalition_utility_table,
    exact_shapley_from_utility_vector,
    utility_table_to_vector,
)
from repro.shapley.estimator import sampled_group_shapley
from repro.shapley.utility import AccuracyUtility
from repro.utils.rng import spawn_rng

# CI smoke runs shrink the workload through the environment (see the
# benchmark-artifacts job in .github/workflows/ci.yml); defaults are the
# full measurement sizes reported in docs/performance.md.
COHORT_SIZES = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_COHORT_SIZES", "1000,10000").split(",")
)
SHARD_SIZES = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_SHARD_SIZES", "16,32,64").split(",")
)
MC_GROUPS = int(os.environ.get("REPRO_BENCH_MC_GROUPS", "12"))
MC_SAMPLES = int(os.environ.get("REPRO_BENCH_MC_SAMPLES", "256"))
SV_GROUPS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_SV_GROUPS", "32,313").split(",")
)
SV_SAMPLES = int(os.environ.get("REPRO_BENCH_SV_SAMPLES", "64"))
SV_WORKERS = int(os.environ.get("REPRO_BENCH_SV_WORKERS", "4"))
MODEL_DIMENSION = 68  # 16 features x 4 classes + 4 biases, the harness default


def _client_submission_seconds(n_peers: int, repetitions: int = 3) -> float:
    """One client's cost to join a cohort of ``n_peers + 1``: derive every
    pairwise shared secret and produce one masked submission."""
    params = DHParameters.for_testing(bits=64, seed=11)
    keypair = DHKeyPair.generate(params, "client", seed=11)
    peer_keys = {
        f"peer-{i:05d}": DHKeyPair.generate(params, f"peer-{i:05d}", seed=11).public_key
        for i in range(n_peers)
    }
    codec = FixedPointCodec()
    weights = spawn_rng("bench-shard-weights", 11).normal(size=MODEL_DIMENSION)
    start = time.perf_counter()
    for _ in range(repetitions):
        masker = PairwiseMasker("client", keypair, peer_keys, codec=codec)
        masker.mask(weights, 0)
    return (time.perf_counter() - start) / repetitions


def _measure_mask_setup():
    """Per-client submission cost: flat cohort vs one shard, per cohort size."""
    results = {}
    for cohort in COHORT_SIZES:
        flat_s = _client_submission_seconds(cohort - 1, repetitions=1)
        per_shard = {}
        for shard_size in SHARD_SIZES:
            per_shard[shard_size] = _client_submission_seconds(shard_size - 1)
        results[cohort] = {
            "flat_s": flat_s,
            "sharded_s": per_shard,
            "speedup": {size: flat_s / seconds for size, seconds in per_shard.items()},
        }
    return results


def _measure_round_throughput():
    """Full simulated rounds: every device masks, every shard aggregates."""
    results = {}
    for cohort in COHORT_SIZES:
        config = CrossDeviceConfig(
            n_devices=cohort, shard_size=32, distribution="linear",
            sv_estimator="sampled", sv_samples=32,
        )
        start = time.perf_counter()
        result = simulate_cross_device(config)
        total = time.perf_counter() - start
        record = result.rounds[0]
        results[cohort] = {
            "total_s": total,
            "masking_s": record.seconds_masking,
            "aggregation_s": record.seconds_aggregation,
            "shapley_s": record.seconds_shapley,
            "committees": len(record.shards),
            "max_masks": result.max_mask_count,
        }
    return results


def _measure_estimator_error():
    """Sampled-vs-exact GroupSV at a size where exact is still computable."""
    features, labels = make_blobs(400, 8, 3, seed=21)
    scorer = AccuracyUtility(features[200:], labels[200:], 3)
    rng = spawn_rng("bench-mc-models", 3)
    base = rng.normal(size=(8 + 1) * 3)
    vectors = {
        f"g{i:02d}": base + 0.4 * rng.normal(size=base.size) for i in range(MC_GROUPS)
    }
    group_labels = sorted(vectors)

    start = time.perf_counter()
    table = coalition_utility_table(vectors, scorer)
    exact_values = exact_shapley_from_utility_vector(
        utility_table_to_vector(group_labels, table)
    )
    exact_s = time.perf_counter() - start
    exact = {label: float(v) for label, v in zip(group_labels, exact_values)}

    start = time.perf_counter()
    estimate = sampled_group_shapley(
        group_labels, vectors, scorer, n_permutations=MC_SAMPLES, seed=5
    )
    sampled_s = time.perf_counter() - start

    errors = {label: abs(estimate.values[label] - exact[label]) for label in group_labels}
    return {
        "groups": MC_GROUPS,
        "n_samples": estimate.n_permutations,
        "exact_s": exact_s,
        "sampled_s": sampled_s,
        "exact_evaluations": (1 << MC_GROUPS) - 1,
        "sampled_evaluations": estimate.evaluations,
        "max_abs_error": max(errors.values()),
        "max_half_width": max(estimate.half_widths.values()),
        "covered": estimate.within_bounds(exact),
    }


def _measure_estimator_scoring():
    """Scalar vs batched committee scoring at committee sizes where the
    estimator dominates round wall time (m = ceil(devices / shard))."""
    results = {}
    for m in SV_GROUPS:
        rng = spawn_rng(f"bench-sv-scoring-{m}", 17)
        group_labels = [f"g{i:03d}" for i in range(m)]
        base = rng.normal(size=MODEL_DIMENSION)
        vectors = {
            label: base + 0.4 * rng.normal(size=MODEL_DIMENSION)
            for label in group_labels
        }
        features, targets = make_blobs(256, 16, 4, seed=29)
        scorer = AccuracyUtility(features, targets, 4)

        start = time.perf_counter()
        scalar = sampled_group_shapley(
            group_labels, vectors, scorer,
            n_permutations=SV_SAMPLES, seed=11, method="scalar",
        )
        scalar_s = time.perf_counter() - start

        start = time.perf_counter()
        batched = sampled_group_shapley(
            group_labels, vectors, scorer,
            n_permutations=SV_SAMPLES, seed=11, method="batched",
        )
        batched_s = time.perf_counter() - start
        assert batched == scalar  # the consensus contract: bit-identical receipts

        pool_s = None
        if SV_WORKERS > 1:
            backend = ProcessPoolEvaluationBackend(SV_WORKERS)
            try:
                start = time.perf_counter()
                pooled = sampled_group_shapley(
                    group_labels, vectors, scorer,
                    n_permutations=SV_SAMPLES, seed=11,
                    method="batched", backend=backend,
                )
                pool_s = time.perf_counter() - start
            finally:
                backend.close()
            assert pooled == scalar

        telemetry = batched.telemetry or {}
        results[m] = {
            "n_samples": scalar.n_permutations,
            "coalitions": telemetry.get("coalitions"),
            "cache_hits": telemetry.get("cache_hits"),
            "batches": telemetry.get("batches"),
            "scalar_s": scalar_s,
            "batched_s": batched_s,
            "pool_s": pool_s,
            "speedup": scalar_s / batched_s,
        }
    return results


def _run_all():
    return (
        _measure_mask_setup(),
        _measure_round_throughput(),
        _measure_estimator_error(),
        _measure_estimator_scoring(),
    )


def bench_sharded_aggregation(benchmark):
    """Mask-setup scaling, round throughput, and estimator error/speed floors."""
    mask_setup, rounds, estimator, scoring = benchmark.pedantic(
        _run_all, rounds=1, iterations=1, warmup_rounds=0
    )

    rows = []
    for cohort, entry in mask_setup.items():
        for shard_size in SHARD_SIZES:
            rows.append([
                cohort, shard_size,
                f"{entry['flat_s'] * 1e3:.1f}",
                f"{entry['sharded_s'][shard_size] * 1e3:.2f}",
                f"{entry['speedup'][shard_size]:.0f}x",
            ])
    print("\nPer-client submission cost — flat cohort vs one shard")
    print(format_table(["cohort", "shard", "flat / ms", "sharded / ms", "speedup"], rows))

    rows = [
        [cohort, entry["committees"], entry["max_masks"],
         f"{entry['masking_s']:.2f}", f"{entry['aggregation_s']:.2f}",
         f"{entry['shapley_s']:.2f}", f"{entry['total_s']:.2f}"]
        for cohort, entry in rounds.items()
    ]
    print("\nFull sharded round (shard 32, sampled SV with 32 permutations)")
    print(format_table(
        ["devices", "committees", "max masks", "mask s", "agg s", "sv s", "total s"], rows
    ))

    rows = [
        [m, entry["n_samples"], entry["coalitions"], entry["cache_hits"],
         f"{entry['scalar_s']:.2f}", f"{entry['batched_s']:.2f}",
         "-" if entry["pool_s"] is None else f"{entry['pool_s']:.2f}",
         f"{entry['speedup']:.1f}x"]
        for m, entry in scoring.items()
    ]
    print("\nCommittee scoring — scalar walk vs batched GEMM pipeline")
    print(format_table(
        ["groups", "samples", "coalitions", "cache hits",
         "scalar s", "batched s", f"pool({SV_WORKERS}) s", "speedup"], rows
    ))

    print(
        f"\nsampled vs exact GroupSV at m={estimator['groups']}: "
        f"max |error| {estimator['max_abs_error']:.2e} vs CI half-width "
        f"{estimator['max_half_width']:.2e} over {estimator['n_samples']} permutations "
        f"({estimator['sampled_evaluations']} vs {estimator['exact_evaluations']} "
        f"coalition evaluations, covered={estimator['covered']})"
    )

    benchmark.extra_info["mask_setup"] = {
        str(cohort): {
            "flat_s": float(entry["flat_s"]),
            "sharded_s": {str(k): float(v) for k, v in entry["sharded_s"].items()},
            "speedup": {str(k): float(v) for k, v in entry["speedup"].items()},
        }
        for cohort, entry in mask_setup.items()
    }
    benchmark.extra_info["rounds"] = {
        str(cohort): {key: float(value) for key, value in entry.items()}
        for cohort, entry in rounds.items()
    }
    benchmark.extra_info["estimator"] = {
        key: (float(value) if not isinstance(value, bool) else value)
        for key, value in estimator.items()
    }
    benchmark.extra_info["estimator_scoring"] = {
        str(m): {
            key: (None if value is None else float(value))
            for key, value in entry.items()
        }
        for m, entry in scoring.items()
    }

    # Acceptance floors.  Mask-setup speedup scales with cohort/shard, so the
    # floor only binds at full measurement sizes — reduced CI cohorts skip it.
    for cohort, entry in mask_setup.items():
        if cohort >= 1000:
            assert entry["speedup"][max(SHARD_SIZES)] >= 5.0
    for cohort, entry in rounds.items():
        # O(shard) masks per device, never O(cohort).
        assert entry["max_masks"] <= 32 - 1
    # The estimator's own receipts must cover the exact values at n <= 14.
    assert estimator["covered"]
    assert estimator["sampled_evaluations"] < estimator["exact_evaluations"]
    # Batched scoring must stay clearly ahead of the scalar walk once the
    # committee is big enough that dedup + one-GEMM batching pay off; the
    # 48-group gate keeps the floor live at the reduced CI size (64 groups)
    # without binding on tiny committees where both paths take milliseconds.
    for m, entry in scoring.items():
        if m >= 48:
            assert entry["speedup"] >= 3.0, (m, entry["speedup"])
