"""Microbenchmark — the vectorized bitmask Shapley engine vs the legacy path.

Two hot paths changed:

* exact-SV assembly: the legacy ``exact_shapley_from_utilities`` enumerates all
  subsets per player (O(n·2^n) Python tuple work); the engine applies
  precomputed ``1/(n·C(n-1, s))`` weight tables to a ``(2^n,)`` utility vector
  with vectorized reductions.  Measured on synthetic utility tables at
  n = 12..14 players.
* coalition scoring: the legacy ``CoalitionModelUtility`` instantiates one
  logistic-regression model per coalition; ``AccuracyUtility.score_batch``
  scores every coalition model with a single einsum/argmax pass.  Measured on
  all 2^m coalition averages of m synthetic group models.

The recorded ``speedup`` entries in ``benchmark.extra_info`` feed the
BENCH_*.json trajectory, and the asserts pin the acceptance floor: the engine
must stay ≥ 5x faster than the legacy assembly at n = 12 while agreeing with it
to 1e-9.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.common import format_table
from repro.shapley.engine import (
    coalition_means,
    exact_shapley_from_utility_vector,
    mask_coalition,
)
from repro.shapley.native import exact_shapley_from_utilities
from repro.shapley.utility import AccuracyUtility

# CI smoke runs shrink the workload through the environment (see the
# benchmark-artifacts job in .github/workflows/ci.yml); defaults are the
# full measurement sizes reported in docs/performance.md.
ASSEMBLY_SIZES = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_ASSEMBLY_SIZES", "12,13,14").split(",")
)
SCORING_GROUPS = int(os.environ.get("REPRO_BENCH_SCORING_GROUPS", "10"))
N_FEATURES = 32
N_CLASSES = 6
N_TEST_SAMPLES = 400


def _synthetic_utility_table(n_players: int, seed: int = 0):
    """A random coalition game as both a tuple-keyed table and a bitmask vector."""
    rng = np.random.default_rng(seed)
    players = [f"p{i:02d}" for i in range(n_players)]
    vector = rng.uniform(0.0, 1.0, size=1 << n_players)
    vector[0] = 0.0
    table = {
        mask_coalition(mask, players): float(vector[mask]) for mask in range(1, vector.size)
    }
    table[()] = 0.0
    return players, table, vector


def _measure_assembly():
    """Legacy vs engine exact-SV assembly runtimes and agreement per n."""
    results = {}
    for n_players in ASSEMBLY_SIZES:
        players, table, vector = _synthetic_utility_table(n_players, seed=n_players)

        start = time.perf_counter()
        legacy = exact_shapley_from_utilities(players, table)
        legacy_time = time.perf_counter() - start

        # The engine is fast enough that one run sits near timer resolution;
        # average a few repetitions for a stable number.
        repetitions = 5
        start = time.perf_counter()
        for _ in range(repetitions):
            values = exact_shapley_from_utility_vector(vector)
        engine_time = (time.perf_counter() - start) / repetitions

        max_error = max(abs(values[i] - legacy[player]) for i, player in enumerate(players))
        results[n_players] = {
            "legacy_s": legacy_time,
            "engine_s": engine_time,
            "speedup": legacy_time / engine_time,
            "max_abs_error": max_error,
        }
    return results


def _measure_scoring():
    """Scalar score_vector loop vs one score_batch pass over all coalition models."""
    rng = np.random.default_rng(99)
    test_features = rng.normal(size=(N_TEST_SAMPLES, N_FEATURES))
    test_labels = rng.integers(0, N_CLASSES, size=N_TEST_SAMPLES)
    scorer = AccuracyUtility(test_features, test_labels, N_CLASSES)
    dimension = N_FEATURES * N_CLASSES + N_CLASSES
    members = rng.normal(scale=0.5, size=(SCORING_GROUPS, dimension))
    batch = coalition_means(members)[1:]

    # Warm both paths once (BLAS thread pools, allocator) before timing.
    scorer.score_vector(batch[0])
    scorer.score_batch(batch[:4])
    repetitions = 3

    start = time.perf_counter()
    for _ in range(repetitions):
        scalar = np.array([scorer.score_vector(vector) for vector in batch])
    scalar_time = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    for _ in range(repetitions):
        batched = scorer.score_batch(batch)
    batched_time = (time.perf_counter() - start) / repetitions

    return {
        "coalitions": int(batch.shape[0]),
        "scalar_s": scalar_time,
        "batched_s": batched_time,
        "speedup": scalar_time / batched_time,
        "identical": bool(np.array_equal(scalar, batched)),
    }


def _run_all():
    return _measure_assembly(), _measure_scoring()


def bench_shapley_engine_vs_legacy(benchmark):
    """Engine speedups over the scalar Shapley pipeline (assembly + scoring)."""
    assembly, scoring = benchmark.pedantic(_run_all, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [
            f"n={n}",
            f"{entry['legacy_s'] * 1e3:.1f}",
            f"{entry['engine_s'] * 1e3:.2f}",
            f"{entry['speedup']:.0f}x",
            f"{entry['max_abs_error']:.1e}",
        ]
        for n, entry in assembly.items()
    ]
    print("\nExact-SV assembly — legacy O(n·2^n) loop vs bitmask engine")
    print(format_table(["players", "legacy / ms", "engine / ms", "speedup", "max |Δ|"], rows))
    print(
        f"\ncoalition scoring over {scoring['coalitions']} coalition models: "
        f"{scoring['scalar_s'] * 1e3:.1f} ms scalar vs {scoring['batched_s'] * 1e3:.1f} ms batched "
        f"({scoring['speedup']:.1f}x, identical={scoring['identical']})"
    )

    benchmark.extra_info["assembly"] = {
        str(n): {key: float(value) for key, value in entry.items()} for n, entry in assembly.items()
    }
    benchmark.extra_info["scoring"] = {
        key: (float(value) if not isinstance(value, bool) else value)
        for key, value in scoring.items()
    }

    # Acceptance floor: the engine is at least 5x faster than the legacy
    # assembly at n = 12 while agreeing to 1e-9 everywhere.  Reduced-size
    # runs (env override) skip the speedup floor — tiny games sit inside
    # timer noise — but never the agreement bar.
    if 12 in assembly:
        assert assembly[12]["speedup"] >= 5.0
    for entry in assembly.values():
        assert entry["max_abs_error"] <= 1e-9
    # Batched scoring must match the per-coalition model loop prediction for
    # prediction; the speedup floor only holds at the full measurement size —
    # reduced CI runs sit inside timer noise on shared runners.
    if SCORING_GROUPS >= 10:
        assert scoring["speedup"] > 1.0
    assert scoring["identical"]
