"""Experiment E2 — Figure 2: cosine similarity of GroupSV to native SV vs m.

The paper plots, for several σ values, the cosine similarity between the
contribution vector produced by GroupSV (with m groups) and the ground-truth
native SV.  The reported shape:

* for σ = 0 the similarity *decreases* with m (ground truth is near-uniform,
  and coarse groups assign near-uniform values, so fewer groups look better);
* for σ > 0 the similarity *increases* with m (finer groups approach the
  native per-owner evaluation), and larger σ gives higher similarity overall.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import (
    GROUP_COUNTS,
    SIGMAS,
    build_workload,
    format_table,
    ground_truth_shapley,
    group_shapley_over_rounds,
)
from repro.shapley.metrics import cosine_similarity


def _similarity_matrix():
    """cosine(GroupSV(m), native SV) for every (σ, m) pair."""
    matrix = {}
    for sigma in SIGMAS:
        workload = build_workload(sigma)
        ground_truth = ground_truth_shapley(workload)
        row = {}
        for m in GROUP_COUNTS:
            group_values, _ = group_shapley_over_rounds(workload, m)
            row[m] = cosine_similarity(group_values, ground_truth)
        matrix[sigma] = row
    return matrix


def bench_fig2_group_vs_native_similarity(benchmark):
    """Regenerate Fig. 2 and check the trends the paper reports."""
    matrix = benchmark.pedantic(_similarity_matrix, rounds=1, iterations=1, warmup_rounds=0)

    rows = [[f"sigma={sigma}"] + [f"{matrix[sigma][m]:.4f}" for m in GROUP_COUNTS] for sigma in SIGMAS]
    print("\nFig. 2 — cosine similarity between GroupSV and native SV")
    print(format_table(["series"] + [f"m={m}" for m in GROUP_COUNTS], rows))

    # Trend for sigma > 0: similarity at the largest m beats similarity at the
    # smallest m (the paper's increasing curves).
    increasing = {}
    for sigma in SIGMAS[1:]:
        increasing[sigma] = matrix[sigma][GROUP_COUNTS[-1]] - matrix[sigma][GROUP_COUNTS[0]]
    print("\nsimilarity(m=max) - similarity(m=min) per sigma>0:",
          {k: round(v, 4) for k, v in increasing.items()})

    # Trend across sigma at the largest m: noisier (more diverse) data quality
    # gives higher similarity.
    at_max_m = [matrix[sigma][GROUP_COUNTS[-1]] for sigma in SIGMAS]
    print("similarity at m=max across the sigma sweep:", [round(v, 4) for v in at_max_m])

    benchmark.extra_info["matrix"] = {str(k): {str(m): float(v) for m, v in row.items()} for k, row in matrix.items()}

    assert all(gain > 0 for gain in increasing.values()), (
        "for sigma > 0 the similarity should increase with the number of groups"
    )
    assert at_max_m[-1] >= at_max_m[1] - 0.05, (
        "larger sigma should not reduce the achievable similarity at full resolution"
    )
