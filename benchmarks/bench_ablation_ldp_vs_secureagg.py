"""Experiment E8 (ablation) — LDP noise vs secure aggregation (Section II.B).

The paper motivates its choice of cryptographic masking over local differential
privacy by noting that "the accumulated noises make the model not very useful"
in LDP-based FL.  This bench quantifies that claim on the paper's workload: it
runs the same FedAvg round pipeline where each client either

* masks its update with secure aggregation (exact aggregate, the paper's path), or
* perturbs its update with a Gaussian LDP mechanism at several ε budgets,

and compares the resulting global-model utility and the fidelity of per-owner
contribution scores against the noise-free reference.
"""

from __future__ import annotations

from benchmarks.common import PERMUTATION_SEED, build_workload, format_table, train_local_models
from repro.crypto.ldp import LdpConfig, LdpMechanism
from repro.shapley.group import group_shapley_round
from repro.shapley.metrics import cosine_similarity

EPSILONS = (0.5, 2.0, 8.0)
N_GROUPS = 3


def _compare_mechanisms():
    workload = build_workload(sigma=0.1)
    local_models, _ = train_local_models(workload, round_number=0)

    # Reference: exact aggregation (what secure aggregation reveals on chain,
    # up to fixed-point quantization that is orders of magnitude below noise).
    reference = group_shapley_round(local_models, N_GROUPS, PERMUTATION_SEED, 0, workload.scorer)
    results = {
        "secure-agg": {
            "utility": workload.scorer.score(reference.global_model),
            "contribution_cosine": 1.0,
        }
    }

    for epsilon in EPSILONS:
        mechanism = LdpMechanism(LdpConfig(epsilon=epsilon, delta=1e-5, clip_norm=5.0))
        noisy_models = {
            owner: mechanism.privatize(model, owner, 0) for owner, model in local_models.items()
        }
        noisy_result = group_shapley_round(noisy_models, N_GROUPS, PERMUTATION_SEED, 0, workload.scorer)
        results[f"ldp-eps-{epsilon}"] = {
            "utility": workload.scorer.score(noisy_result.global_model),
            "contribution_cosine": cosine_similarity(noisy_result.user_values, reference.user_values),
        }
    return results


def bench_ablation_ldp_vs_secure_aggregation(benchmark):
    """Compare global-model utility and contribution fidelity: LDP vs masking."""
    results = benchmark.pedantic(_compare_mechanisms, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [name, f"{payload['utility']:.4f}", f"{payload['contribution_cosine']:.4f}"]
        for name, payload in results.items()
    ]
    print("\nE8 — LDP vs secure aggregation: global utility and contribution fidelity")
    print(format_table(["mechanism", "global utility", "contribution cosine vs exact"], rows))

    benchmark.extra_info["results"] = {
        name: {k: float(v) for k, v in payload.items()} for name, payload in results.items()
    }

    secure_utility = results["secure-agg"]["utility"]
    tightest = results[f"ldp-eps-{EPSILONS[0]}"]
    loosest = results[f"ldp-eps-{EPSILONS[-1]}"]
    # Strong LDP noise hurts the shared model relative to exact aggregation...
    assert tightest["utility"] < secure_utility - 0.05
    # ...and degrades the contribution scores' fidelity.
    assert tightest["contribution_cosine"] < 0.99
    # Loosening the budget recovers utility monotonically toward the exact path.
    assert loosest["utility"] >= tightest["utility"]
