"""Microbenchmark — the versioned Merkle state store vs the flat deep-copy path.

Four hot paths changed in the state layer:

* ``state_root()``: the pre-Merkle store serialized and hashed the *entire*
  state dict per block (O(all keys)); the v2 store maintains per-namespace
  bucket trees incrementally, re-hashing only buckets touched since the last
  root (O(keys changed)).  Measured at 1k–100k keys (push to 1M via
  ``REPRO_BENCH_STATE_KEYS=1000,...,1000000``) with a 1% churn ratio against
  both baselines: the v1 flat hash and a from-scratch v2 recompute.
* adaptive bucketing (``state_root_version=3``): the fixed 1024-bucket v2
  layout saturates at six-figure key counts (1% churn of 100k keys dirties
  most buckets); v3 widens the layout as a pure function of the namespace
  size, keeping the incremental root O(Δ).  Measured at the same sizes
  against the same two baselines.
* snapshot/rollback: transaction rollback used to ``copy.deepcopy`` the whole
  world per transaction; the journal makes a snapshot O(1) and a rollback
  O(keys changed).
* inclusion proofs: ``prove``/``verify_state_proof`` tie one entry to a block
  header's state root — timed so the verification cost a participant pays is
  on record.

A fifth section times the persistence engine under the chain: per-block
SQLite commit overhead (O(Δ) per sealed block) against a whole-store rewrite
(O(state)), plus restore-on-reopen with and without pruned reverse deltas —
each with parity asserts, so the bench doubles as a large-state regression
test for the storage layer.

The recorded ``speedup`` entries in ``benchmark.extra_info`` feed the
benchmark-artifact trajectory; the asserts pin the acceptance floors: ≥10x
on ``state_root()`` at 10k keys with ≤1% churn against the full recompute,
and ≥10x for the v3 adaptive root against the flat hash at 100k keys —
where the fixed v2 layout no longer clears that bar.
"""

from __future__ import annotations

import copy
import os
import tempfile
import time

import numpy as np

from benchmarks.common import format_table
from repro.blockchain.chain import Blockchain
from repro.blockchain.contracts.base import Contract, ContractContext, ContractRuntime, contract_method
from repro.blockchain.state import WorldState, verify_state_proof
from repro.blockchain.storage import SQLiteBackend
from repro.blockchain.transaction import Transaction

# CI smoke runs shrink the workload through the environment (see the
# benchmark-artifacts job in .github/workflows/ci.yml); defaults are the
# full measurement sizes reported in docs/performance.md.
KEY_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_STATE_KEYS", "1000,10000,100000").split(",")
)
CHURN_RATIO = float(os.environ.get("REPRO_BENCH_STATE_CHURN", "0.01"))
# Storage-engine section: blocks committed and keys written per block.
STORE_BLOCKS = int(os.environ.get("REPRO_BENCH_STATE_BLOCKS", "16"))
STORE_WRITES = int(os.environ.get("REPRO_BENCH_STATE_WRITES", "250"))
_NAMESPACES = ("fl_training", "contribution", "reward", "registry")


def _build_store(n_keys: int, root_version: int) -> WorldState:
    state = WorldState(root_version=root_version)
    rng = np.random.default_rng(1)
    for i in range(n_keys):
        state.set(
            _NAMESPACES[i % len(_NAMESPACES)],
            f"record/{i:06d}",
            {"owner": f"owner-{i % 50}", "value": float(rng.random()), "round": i % 32},
        )
    return state


def _churn(state: WorldState, changed: int, tag: float) -> None:
    """Rewrite ``changed`` existing keys in place."""
    for i in range(changed):
        state.set(
            _NAMESPACES[i % len(_NAMESPACES)],
            f"record/{i:06d}",
            {"owner": "churned", "value": tag, "round": i % 32},
        )


def _incremental_root_time(n_keys: int, root_version: int, changed: int) -> float:
    """Steady-state incremental ``state_root()`` latency under churn."""
    state = _build_store(n_keys, root_version=root_version)
    state.state_root()  # warm the trees so the loop measures steady state
    repetitions = 5
    start = time.perf_counter()
    for repeat in range(repetitions):
        _churn(state, changed, tag=float(repeat))
        root = state.state_root()
    elapsed = (time.perf_counter() - start) / repetitions
    # Parity: the incremental root must equal a from-scratch recompute of
    # the same data — the bench doubles as a large-state regression test.
    assert WorldState(state.raw(), root_version=root_version).state_root() == root
    return elapsed


def _measure_roots():
    """Flat v1 root and full v2 recompute vs the incremental v2/v3 roots per size."""
    results = {}
    for n_keys in KEY_COUNTS:
        v1 = _build_store(n_keys, root_version=1)
        v2 = _build_store(n_keys, root_version=2)

        start = time.perf_counter()
        v1.state_root()
        flat_s = time.perf_counter() - start

        raw = v2.raw()
        start = time.perf_counter()
        WorldState(raw, root_version=2).state_root()
        full_s = time.perf_counter() - start

        changed = max(1, int(n_keys * CHURN_RATIO))
        incremental_s = _incremental_root_time(n_keys, 2, changed)
        adaptive_s = _incremental_root_time(n_keys, 3, changed)

        results[n_keys] = {
            "changed_keys": changed,
            "flat_v1_s": flat_s,
            "full_merkle_s": full_s,
            "incremental_s": incremental_s,
            "adaptive_s": adaptive_s,
            "speedup_vs_flat": flat_s / incremental_s,
            "speedup_vs_full": full_s / incremental_s,
            "adaptive_speedup_vs_flat": flat_s / adaptive_s,
            "adaptive_speedup_vs_full": full_s / adaptive_s,
        }
    return results


def _measure_rollback():
    """Legacy deepcopy-the-world snapshots vs journal markers (at the mid size)."""
    n_keys = KEY_COUNTS[min(1, len(KEY_COUNTS) - 1)]
    state = _build_store(n_keys, root_version=1)
    raw = state.raw()
    writes = max(1, int(n_keys * CHURN_RATIO))

    start = time.perf_counter()
    legacy_snapshot = copy.deepcopy(raw)  # what snapshot() used to cost
    legacy_s = time.perf_counter() - start
    assert len(legacy_snapshot) == n_keys

    repetitions = 10
    start = time.perf_counter()
    for repeat in range(repetitions):
        marker = state.snapshot()
        _churn(state, writes, tag=float(repeat))
        state.restore(marker)
    journal_s = (time.perf_counter() - start) / repetitions

    return {
        "n_keys": n_keys,
        "writes_rolled_back": writes,
        "legacy_deepcopy_s": legacy_s,
        "journal_cycle_s": journal_s,
        "speedup": legacy_s / journal_s,
    }


def _measure_proofs():
    """Proof production and verification at the mid size."""
    n_keys = KEY_COUNTS[min(1, len(KEY_COUNTS) - 1)]
    state = _build_store(n_keys, root_version=2)
    root = state.state_root()
    namespace, key = _NAMESPACES[0], "record/000000"
    value = state.get(namespace, key)

    repetitions = 50
    start = time.perf_counter()
    for _ in range(repetitions):
        proof = state.prove(namespace, key)
    prove_s = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    for _ in range(repetitions):
        ok = verify_state_proof(root, proof, value=value)
    verify_s = (time.perf_counter() - start) / repetitions
    assert ok
    assert not verify_state_proof(root, proof, value={"tampered": True})

    return {
        "n_keys": n_keys,
        "siblings": len(proof.bucket_siblings) + len(proof.namespace_siblings) + len(proof.top_siblings),
        "prove_s": prove_s,
        "verify_s": verify_s,
    }


class _BulkWriterContract(Contract):
    """Writes a fixed batch of keys per call (bench only)."""

    name = "bulk"

    @contract_method
    def write(self, ctx: ContractContext, start: int, count: int, tag: int) -> int:
        for i in range(int(start), int(start) + int(count)):
            ctx.set(f"record/{i:06d}", {"tag": int(tag), "i": i})
        return int(count)


def _bulk_runtime() -> ContractRuntime:
    runtime = ContractRuntime()
    runtime.register(_BulkWriterContract())
    return runtime


def _grow_bulk_chain(chain: Blockchain, n_blocks: int, writes_per_block: int) -> float:
    start = time.perf_counter()
    for height in range(1, n_blocks + 1):
        tx = Transaction(
            sender="alice", contract="bulk", method="write",
            args={"start": (height - 1) * writes_per_block, "count": writes_per_block,
                  "tag": height},
            nonce=chain.next_nonce("alice"),
        )
        chain.propose_block(f"owner-{height % 2}", [tx])
    return time.perf_counter() - start


def _fingerprint(chain: Blockchain) -> list[tuple[int, str, str]]:
    return [(b.height, b.block_hash, b.header.state_root) for b in chain.blocks]


def _measure_storage():
    """Per-block SQLite commit overhead, whole-store rewrite, and reopen latency."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.db")
        in_memory = Blockchain(_bulk_runtime, state_root_version=3)
        memory_s = _grow_bulk_chain(in_memory, STORE_BLOCKS, STORE_WRITES)

        persisted = Blockchain(
            _bulk_runtime, state_root_version=3, storage=SQLiteBackend(path)
        )
        sqlite_s = _grow_bulk_chain(persisted, STORE_BLOCKS, STORE_WRITES)
        # Parity: the backend is off-chain — byte-identical blocks either way.
        assert _fingerprint(persisted) == _fingerprint(in_memory)

        start = time.perf_counter()
        persisted.storage.rewrite(persisted)  # O(state): the fast-sync snapshot path
        rewrite_s = time.perf_counter() - start
        persisted.storage.close()

        start = time.perf_counter()
        reopened = Blockchain(_bulk_runtime, state_root_version=3)
        restored = reopened.attach_storage(SQLiteBackend(path))
        restore_s = time.perf_counter() - start
        assert restored and _fingerprint(reopened) == _fingerprint(in_memory)

        pruned = reopened.prune(keep_last=2)
        reopened.storage.close()
        start = time.perf_counter()
        pruned_chain = Blockchain(_bulk_runtime, state_root_version=3)
        pruned_chain.attach_storage(SQLiteBackend(path))
        restore_pruned_s = time.perf_counter() - start
        assert _fingerprint(pruned_chain) == _fingerprint(in_memory)
        assert pruned_chain.oldest_retained_version() == STORE_BLOCKS - 1
        pruned_chain.storage.close()

    return {
        "n_blocks": STORE_BLOCKS,
        "writes_per_block": STORE_WRITES,
        "memory_build_s": memory_s,
        "sqlite_build_s": sqlite_s,
        "commit_overhead_s": max(0.0, sqlite_s - memory_s) / STORE_BLOCKS,
        "rewrite_s": rewrite_s,
        "restore_s": restore_s,
        "restore_pruned_s": restore_pruned_s,
        "deltas_pruned": len(pruned),
    }


def _run_all():
    return _measure_roots(), _measure_rollback(), _measure_proofs(), _measure_storage()


def bench_state_store_vs_flat(benchmark):
    """State-store speedups over the flat deep-copy path (roots + rollback + proofs + storage)."""
    roots, rollback, proofs, storage = benchmark.pedantic(
        _run_all, rounds=1, iterations=1, warmup_rounds=0
    )

    rows = [
        [
            f"{n}",
            f"{entry['changed_keys']}",
            f"{entry['flat_v1_s'] * 1e3:.1f}",
            f"{entry['full_merkle_s'] * 1e3:.1f}",
            f"{entry['incremental_s'] * 1e3:.2f}",
            f"{entry['adaptive_s'] * 1e3:.2f}",
            f"{entry['speedup_vs_flat']:.1f}x",
            f"{entry['adaptive_speedup_vs_flat']:.1f}x",
        ]
        for n, entry in roots.items()
    ]
    print("\nstate_root() — flat v1 hash and full Merkle recompute vs incremental roots")
    print(format_table(
        ["keys", "changed", "flat v1 / ms", "full v2 / ms", "incr v2 / ms",
         "adaptive v3 / ms", "v2 vs flat", "v3 vs flat"],
        rows,
    ))
    print(
        f"\nsnapshot/rollback at {rollback['n_keys']} keys: "
        f"{rollback['legacy_deepcopy_s'] * 1e3:.1f} ms legacy deepcopy vs "
        f"{rollback['journal_cycle_s'] * 1e3:.3f} ms journal cycle "
        f"({rollback['speedup']:.0f}x, {rollback['writes_rolled_back']} writes rolled back)"
    )
    print(
        f"proofs at {proofs['n_keys']} keys: prove {proofs['prove_s'] * 1e3:.2f} ms, "
        f"verify {proofs['verify_s'] * 1e3:.3f} ms ({proofs['siblings']} sibling hashes)"
    )
    print(
        f"sqlite store over {storage['n_blocks']} blocks × "
        f"{storage['writes_per_block']} writes: "
        f"{storage['commit_overhead_s'] * 1e3:.2f} ms commit overhead per block "
        f"(whole-store rewrite {storage['rewrite_s'] * 1e3:.1f} ms); reopen "
        f"{storage['restore_s'] * 1e3:.1f} ms, after pruning "
        f"{storage['deltas_pruned']:.0f} deltas {storage['restore_pruned_s'] * 1e3:.1f} ms"
    )

    benchmark.extra_info["roots"] = {
        str(n): {key: float(value) for key, value in entry.items()} for n, entry in roots.items()
    }
    benchmark.extra_info["rollback"] = {key: float(value) for key, value in rollback.items()}
    benchmark.extra_info["proofs"] = {key: float(value) for key, value in proofs.items()}
    benchmark.extra_info["storage"] = {key: float(value) for key, value in storage.items()}

    # Acceptance floor (issue 5): ≥10x on state_root() at 10k keys with ≤1%
    # churn against the O(all keys) full recompute of the same commitment
    # (measured ~60x; ~14x against the cheaper flat v1 hash, floored at 5x to
    # stay out of shared-runner noise).  Reduced-size env overrides that drop
    # the 10k point skip the floor, never the parity asserts above.
    if 10_000 in roots and CHURN_RATIO <= 0.01:
        assert roots[10_000]["speedup_vs_full"] >= 10.0
        assert roots[10_000]["speedup_vs_flat"] >= 5.0
    # Acceptance floor (issue 8): at 100k keys the fixed 1024-bucket layout
    # saturates (1% churn dirties most buckets) but the adaptive v3 layout
    # must still clear ≥10x against the flat hash (measured ~13x, with v2 at
    # ~5x).  Reduced-size env overrides that drop the 100k point skip it.
    if 100_000 in roots and CHURN_RATIO <= 0.01:
        assert roots[100_000]["adaptive_speedup_vs_flat"] >= 10.0
    # The journal must beat deepcopy-the-world snapshots by an order of
    # magnitude at any measured size.
    assert rollback["speedup"] >= 10.0
    # Sealing a block into SQLite is O(Δ): it must cost less per block than
    # one whole-store rewrite once the state dwarfs a single block's delta.
    if STORE_BLOCKS >= 8:
        assert storage["commit_overhead_s"] < storage["rewrite_s"]
