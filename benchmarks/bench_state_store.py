"""Microbenchmark — the versioned Merkle state store vs the flat deep-copy path.

Three hot paths changed in the state layer:

* ``state_root()``: the pre-Merkle store serialized and hashed the *entire*
  state dict per block (O(all keys)); the v2 store maintains per-namespace
  bucket trees incrementally, re-hashing only buckets touched since the last
  root (O(keys changed)).  Measured at 1k–100k keys with a 1% churn ratio
  against both baselines: the v1 flat hash and a from-scratch v2 recompute.
* snapshot/rollback: transaction rollback used to ``copy.deepcopy`` the whole
  world per transaction; the journal makes a snapshot O(1) and a rollback
  O(keys changed).
* inclusion proofs: ``prove``/``verify_state_proof`` tie one entry to a block
  header's state root — timed so the verification cost a participant pays is
  on record.

The recorded ``speedup`` entries in ``benchmark.extra_info`` feed the
benchmark-artifact trajectory; the asserts pin the acceptance floor from the
state-store issue: ≥10x on ``state_root()`` at 10k keys with ≤1% churn
against the full recompute.
"""

from __future__ import annotations

import copy
import os
import time

import numpy as np

from benchmarks.common import format_table
from repro.blockchain.state import WorldState, verify_state_proof

# CI smoke runs shrink the workload through the environment (see the
# benchmark-artifacts job in .github/workflows/ci.yml); defaults are the
# full measurement sizes reported in docs/performance.md.
KEY_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_STATE_KEYS", "1000,10000,100000").split(",")
)
CHURN_RATIO = float(os.environ.get("REPRO_BENCH_STATE_CHURN", "0.01"))
_NAMESPACES = ("fl_training", "contribution", "reward", "registry")


def _build_store(n_keys: int, root_version: int) -> WorldState:
    state = WorldState(root_version=root_version)
    rng = np.random.default_rng(1)
    for i in range(n_keys):
        state.set(
            _NAMESPACES[i % len(_NAMESPACES)],
            f"record/{i:06d}",
            {"owner": f"owner-{i % 50}", "value": float(rng.random()), "round": i % 32},
        )
    return state


def _churn(state: WorldState, changed: int, tag: float) -> None:
    """Rewrite ``changed`` existing keys in place."""
    for i in range(changed):
        state.set(
            _NAMESPACES[i % len(_NAMESPACES)],
            f"record/{i:06d}",
            {"owner": "churned", "value": tag, "round": i % 32},
        )


def _measure_roots():
    """Flat v1 root and full v2 recompute vs the incremental v2 root per size."""
    results = {}
    for n_keys in KEY_COUNTS:
        v1 = _build_store(n_keys, root_version=1)
        v2 = _build_store(n_keys, root_version=2)

        start = time.perf_counter()
        v1.state_root()
        flat_s = time.perf_counter() - start

        raw = v2.raw()
        start = time.perf_counter()
        full_root = WorldState(raw, root_version=2).state_root()
        full_s = time.perf_counter() - start

        v2.state_root()  # warm the trees so the loop measures steady state
        changed = max(1, int(n_keys * CHURN_RATIO))
        repetitions = 5
        start = time.perf_counter()
        for repeat in range(repetitions):
            _churn(v2, changed, tag=float(repeat))
            incremental_root = v2.state_root()
        incremental_s = (time.perf_counter() - start) / repetitions

        # Parity: the incremental root must equal a from-scratch recompute of
        # the same data — the bench doubles as a large-state regression test.
        assert WorldState(v2.raw(), root_version=2).state_root() == incremental_root
        assert full_root != incremental_root  # churn moved the root

        results[n_keys] = {
            "changed_keys": changed,
            "flat_v1_s": flat_s,
            "full_merkle_s": full_s,
            "incremental_s": incremental_s,
            "speedup_vs_flat": flat_s / incremental_s,
            "speedup_vs_full": full_s / incremental_s,
        }
    return results


def _measure_rollback():
    """Legacy deepcopy-the-world snapshots vs journal markers (at the mid size)."""
    n_keys = KEY_COUNTS[min(1, len(KEY_COUNTS) - 1)]
    state = _build_store(n_keys, root_version=1)
    raw = state.raw()
    writes = max(1, int(n_keys * CHURN_RATIO))

    start = time.perf_counter()
    legacy_snapshot = copy.deepcopy(raw)  # what snapshot() used to cost
    legacy_s = time.perf_counter() - start
    assert len(legacy_snapshot) == n_keys

    repetitions = 10
    start = time.perf_counter()
    for repeat in range(repetitions):
        marker = state.snapshot()
        _churn(state, writes, tag=float(repeat))
        state.restore(marker)
    journal_s = (time.perf_counter() - start) / repetitions

    return {
        "n_keys": n_keys,
        "writes_rolled_back": writes,
        "legacy_deepcopy_s": legacy_s,
        "journal_cycle_s": journal_s,
        "speedup": legacy_s / journal_s,
    }


def _measure_proofs():
    """Proof production and verification at the mid size."""
    n_keys = KEY_COUNTS[min(1, len(KEY_COUNTS) - 1)]
    state = _build_store(n_keys, root_version=2)
    root = state.state_root()
    namespace, key = _NAMESPACES[0], "record/000000"
    value = state.get(namespace, key)

    repetitions = 50
    start = time.perf_counter()
    for _ in range(repetitions):
        proof = state.prove(namespace, key)
    prove_s = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    for _ in range(repetitions):
        ok = verify_state_proof(root, proof, value=value)
    verify_s = (time.perf_counter() - start) / repetitions
    assert ok
    assert not verify_state_proof(root, proof, value={"tampered": True})

    return {
        "n_keys": n_keys,
        "siblings": len(proof.bucket_siblings) + len(proof.namespace_siblings) + len(proof.top_siblings),
        "prove_s": prove_s,
        "verify_s": verify_s,
    }


def _run_all():
    return _measure_roots(), _measure_rollback(), _measure_proofs()


def bench_state_store_vs_flat(benchmark):
    """State-store speedups over the flat deep-copy path (roots + rollback + proofs)."""
    roots, rollback, proofs = benchmark.pedantic(_run_all, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [
            f"{n}",
            f"{entry['changed_keys']}",
            f"{entry['flat_v1_s'] * 1e3:.1f}",
            f"{entry['full_merkle_s'] * 1e3:.1f}",
            f"{entry['incremental_s'] * 1e3:.2f}",
            f"{entry['speedup_vs_flat']:.1f}x",
            f"{entry['speedup_vs_full']:.1f}x",
        ]
        for n, entry in roots.items()
    ]
    print("\nstate_root() — flat v1 hash and full Merkle recompute vs incremental root")
    print(format_table(
        ["keys", "changed", "flat v1 / ms", "full v2 / ms", "incremental / ms",
         "vs flat", "vs full"],
        rows,
    ))
    print(
        f"\nsnapshot/rollback at {rollback['n_keys']} keys: "
        f"{rollback['legacy_deepcopy_s'] * 1e3:.1f} ms legacy deepcopy vs "
        f"{rollback['journal_cycle_s'] * 1e3:.3f} ms journal cycle "
        f"({rollback['speedup']:.0f}x, {rollback['writes_rolled_back']} writes rolled back)"
    )
    print(
        f"proofs at {proofs['n_keys']} keys: prove {proofs['prove_s'] * 1e3:.2f} ms, "
        f"verify {proofs['verify_s'] * 1e3:.3f} ms ({proofs['siblings']} sibling hashes)"
    )

    benchmark.extra_info["roots"] = {
        str(n): {key: float(value) for key, value in entry.items()} for n, entry in roots.items()
    }
    benchmark.extra_info["rollback"] = {key: float(value) for key, value in rollback.items()}
    benchmark.extra_info["proofs"] = {key: float(value) for key, value in proofs.items()}

    # Acceptance floor (issue 5): ≥10x on state_root() at 10k keys with ≤1%
    # churn against the O(all keys) full recompute of the same commitment
    # (measured ~60x; ~14x against the cheaper flat v1 hash, floored at 5x to
    # stay out of shared-runner noise).  Reduced-size env overrides that drop
    # the 10k point skip the floor, never the parity asserts above.
    if 10_000 in roots and CHURN_RATIO <= 0.01:
        assert roots[10_000]["speedup_vs_full"] >= 10.0
        assert roots[10_000]["speedup_vs_flat"] >= 5.0
    # The journal must beat deepcopy-the-world snapshots by an order of
    # magnitude at any measured size.
    assert rollback["speedup"] >= 10.0
