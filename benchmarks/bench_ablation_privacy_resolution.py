"""Experiment E4 (ablation) — the privacy/resolution trade-off over m.

Quantifies the Section IV.B discussion: larger m ⇒ smaller anonymity sets
(less privacy) but higher contribution resolution and better agreement with
the native SV; smaller m ⇒ the opposite.  Complements Fig. 2 with the privacy
side of the same sweep.
"""

from __future__ import annotations

from benchmarks.common import GROUP_COUNTS, PERMUTATION_SEED, build_workload, format_table, train_local_models
from repro.analysis.tradeoff import sweep_group_counts
from repro.shapley.native import native_shapley
from repro.shapley.utility import CoalitionModelUtility


def _sweep():
    workload = build_workload(sigma=0.1)
    local_models, _ = train_local_models(workload, round_number=0)
    ground_truth = native_shapley(sorted(local_models), CoalitionModelUtility(local_models, workload.scorer))
    return sweep_group_counts(
        local_models, ground_truth, workload.scorer,
        group_counts=list(GROUP_COUNTS), permutation_seed=PERMUTATION_SEED,
    )


def bench_ablation_privacy_resolution_tradeoff(benchmark):
    """Regenerate the privacy/resolution/cost table over the group count m."""
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [p.n_groups, p.min_anonymity, f"{p.resolution:.2f}", f"{p.cosine_to_ground_truth:.4f}",
         f"{p.rank_correlation:.4f}", p.coalition_evaluations, f"{p.runtime_seconds:.3f}"]
        for p in points
    ]
    print("\nE4 — privacy vs resolution vs cost over the group count m")
    print(format_table(
        ["m", "min anonymity", "resolution", "cosine", "rank corr", "coalitions", "runtime s"], rows
    ))

    benchmark.extra_info["points"] = [
        {"m": p.n_groups, "min_anonymity": p.min_anonymity, "cosine": p.cosine_to_ground_truth}
        for p in points
    ]

    # Privacy decreases monotonically with m (anonymity sets shrink)...
    anonymity = [p.min_anonymity for p in points]
    assert all(a >= b for a, b in zip(anonymity, anonymity[1:]))
    # ...while resolution and the on-chain evaluation cost increase.
    assert all(p1.resolution < p2.resolution for p1, p2 in zip(points, points[1:]))
    assert all(p1.coalition_evaluations < p2.coalition_evaluations for p1, p2 in zip(points, points[1:]))
    # Full resolution (m = n) recovers the native SV over the same local models.
    assert points[-1].cosine_to_ground_truth > 0.999
