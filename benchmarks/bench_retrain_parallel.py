"""Serial vs parallel coalition retraining for the Fig. 1 ground truth.

``RetrainUtility`` is the paper's ground-truth utility: one model retrained
from scratch per coalition, 2^n coalitions per game.  This bench measures the
full power-set sweep (``coalition_utility_vector``) through the serial
reference backend and through the process-pool backend at n = 8, 10, 12
owners, recording wall time, speedup, and — most importantly — that the two
paths produce *identical* utilities (the parallel path is only admissible
because parity tests pin it to the serial one at <= 1e-9).

Speedup depends on the machine: the process pool cannot beat the serial loop
on a single hardware core, so the >= 2x acceptance floor is asserted only
when the host exposes enough cores for the workers to actually run in
parallel; the measured numbers are recorded either way.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.common import LEARNING_RATE, SEED, format_table
from repro.datasets.loader import make_owner_datasets
from repro.fl.server import CentralizedTrainer
from repro.shapley.backend import ProcessPoolEvaluationBackend
from repro.shapley.utility import AccuracyUtility, RetrainUtility

# CI smoke runs shrink the workload through the environment (see the
# benchmark-artifacts job in .github/workflows/ci.yml); defaults are the
# full measurement sizes reported in docs/performance.md.
OWNER_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_OWNER_COUNTS", "8,10,12").split(",")
)
N_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "800"))
RETRAIN_EPOCHS = int(os.environ.get("REPRO_BENCH_RETRAIN_EPOCHS", "3"))
SIGMA = 0.1
N_WORKERS = max(2, min(4, os.cpu_count() or 1))


def _build_utility(n_owners: int, n_workers: int | None) -> RetrainUtility:
    dataset, owners = make_owner_datasets(
        n_owners=n_owners, sigma=SIGMA, n_samples=N_SAMPLES, seed=SEED, normalized=True
    )
    scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
    trainer = CentralizedTrainer(
        dataset.n_features, dataset.n_classes, epochs=RETRAIN_EPOCHS, learning_rate=LEARNING_RATE
    )
    return RetrainUtility(
        {o.owner_id: o.features for o in owners},
        {o.owner_id: o.labels for o in owners},
        scorer,
        trainer=trainer,
        n_workers=n_workers,
    )


def _measure() -> dict[int, dict[str, float]]:
    results: dict[int, dict[str, float]] = {}
    for n_owners in OWNER_COUNTS:
        serial_utility = _build_utility(n_owners, n_workers=None)
        players = sorted(serial_utility.owner_features)

        start = time.perf_counter()
        serial_vector = serial_utility.coalition_utility_vector(players)
        serial_s = time.perf_counter() - start

        parallel_utility = _build_utility(n_owners, n_workers=N_WORKERS)
        start = time.perf_counter()
        parallel_vector = parallel_utility.coalition_utility_vector(players)
        parallel_s = time.perf_counter() - start

        results[n_owners] = {
            "coalitions": float((1 << n_owners) - 1),
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s,
            "max_abs_error": float(np.max(np.abs(serial_vector - parallel_vector))),
        }
    return results


def bench_retrain_parallel(benchmark):
    """Serial vs process-pool coalition retraining (Fig. 1 ground-truth path)."""
    results = benchmark.pedantic(_measure, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [
            f"n={n}",
            f"{int(entry['coalitions'])}",
            f"{entry['serial_s']:.2f}",
            f"{entry['parallel_s']:.2f}",
            f"{entry['speedup']:.2f}x",
            f"{entry['max_abs_error']:.1e}",
        ]
        for n, entry in results.items()
    ]
    cores = os.cpu_count() or 1
    print(f"\nCoalition retraining — serial vs {N_WORKERS} worker processes ({cores} cores)")
    print(format_table(["owners", "retrainings", "serial / s", "parallel / s", "speedup", "max |Δ|"], rows))

    benchmark.extra_info["n_workers"] = N_WORKERS
    benchmark.extra_info["cpu_count"] = cores
    benchmark.extra_info["results"] = {
        str(n): {key: float(value) for key, value in entry.items()} for n, entry in results.items()
    }

    # Parity is unconditional: the parallel path must reproduce the serial
    # utilities (the acceptance bar is 1e-9; in practice they are identical).
    for entry in results.values():
        assert entry["max_abs_error"] <= 1e-9

    # The speedup floor only makes sense when the workers have real cores to
    # run on; on smaller hosts the measured numbers are recorded above.
    if cores >= 2 * N_WORKERS:
        for n, entry in results.items():
            if n >= 10:
                assert entry["speedup"] >= 2.0, f"expected >= 2x at n={n}, got {entry['speedup']:.2f}x"
