"""Tests for deterministic RNG management (repro.utils.rng)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.rng import RngRegistry, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("setup", 3) == derive_seed("setup", 3)

    def test_different_labels_differ(self):
        assert derive_seed("a") != derive_seed("b")

    def test_order_of_parts_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_requires_at_least_one_part(self):
        with pytest.raises(ValidationError):
            derive_seed()

    def test_result_fits_in_63_bits(self):
        assert 0 <= derive_seed("x", 99) < 2**63

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.one_of(st.integers(), st.text(max_size=10)), min_size=1, max_size=4))
    def test_property_stable_and_bounded(self, parts):
        seed = derive_seed(*parts)
        assert seed == derive_seed(*parts)
        assert 0 <= seed < 2**63


class TestSpawnRng:
    def test_same_label_same_stream(self):
        a = spawn_rng("noise", 1).normal(size=5)
        b = spawn_rng("noise", 1).normal(size=5)
        assert np.array_equal(a, b)

    def test_different_labels_different_streams(self):
        a = spawn_rng("noise", 1).normal(size=5)
        b = spawn_rng("noise", 2).normal(size=5)
        assert not np.array_equal(a, b)


class TestRngRegistry:
    def test_persistent_generator_is_reused(self):
        registry = RngRegistry(7)
        first = registry.get("stream")
        assert registry.get("stream") is first

    def test_fresh_restarts_the_stream(self):
        registry = RngRegistry(7)
        persistent_draw = registry.get("stream").normal(size=3)
        fresh_draw = registry.fresh("stream").normal(size=3)
        assert np.array_equal(persistent_draw, fresh_draw)

    def test_streams_are_independent(self):
        registry = RngRegistry(7)
        a = registry.get("a").normal(size=4)
        b = registry.get("b").normal(size=4)
        assert not np.array_equal(a, b)

    def test_same_base_seed_reproduces_streams(self):
        draws1 = RngRegistry(5).get("x").normal(size=4)
        draws2 = RngRegistry(5).get("x").normal(size=4)
        assert np.array_equal(draws1, draws2)

    def test_different_base_seed_changes_streams(self):
        draws1 = RngRegistry(5).get("x").normal(size=4)
        draws2 = RngRegistry(6).get("x").normal(size=4)
        assert not np.array_equal(draws1, draws2)

    def test_reset_reseeds(self):
        registry = RngRegistry(9)
        before = registry.get("x").normal(size=3)
        registry.reset()
        after = registry.get("x").normal(size=3)
        assert np.array_equal(before, after)

    def test_names_lists_created_streams(self):
        registry = RngRegistry(1)
        registry.get("b")
        registry.get("a")
        assert list(registry.names()) == ["a", "b"]

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ValidationError):
            RngRegistry("not-an-int")  # type: ignore[arg-type]
