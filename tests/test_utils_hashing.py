"""Tests for hashing helpers (repro.utils.hashing)."""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import hash_concat, hash_payload, sha256_bytes, sha256_hex


class TestSha256:
    def test_known_vector(self):
        # SHA-256 of the empty string is a well-known constant.
        assert sha256_hex(b"") == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

    def test_str_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_bytes_variant_matches_hex(self):
        assert sha256_bytes(b"xyz").hex() == sha256_hex(b"xyz")

    def test_hex_digest_length(self):
        assert len(sha256_hex("anything")) == 64


class TestHashPayload:
    def test_equal_payloads_hash_equal(self):
        assert hash_payload({"a": 1, "b": [2, 3]}) == hash_payload({"b": [2, 3], "a": 1})

    def test_different_payloads_hash_differently(self):
        assert hash_payload({"a": 1}) != hash_payload({"a": 2})

    def test_array_payloads_hash_by_content(self):
        a = np.arange(5, dtype=np.float64)
        assert hash_payload({"w": a}) == hash_payload({"w": a.copy()})

    def test_array_dtype_affects_hash(self):
        a64 = np.arange(5, dtype=np.float64)
        a32 = np.arange(5, dtype=np.float32)
        assert hash_payload({"w": a64}) != hash_payload({"w": a32})


class TestHashConcat:
    def test_order_matters(self):
        h1, h2 = sha256_hex("a"), sha256_hex("b")
        assert hash_concat([h1, h2]) != hash_concat([h2, h1])

    def test_single_element(self):
        h = sha256_hex("a")
        assert hash_concat([h]) == sha256_hex(h)
