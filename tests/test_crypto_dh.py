"""Tests for Diffie-Hellman key agreement (repro.crypto.dh)."""

from __future__ import annotations

import pytest

from repro.crypto.dh import DHKeyPair, DHParameters, pair_seed, shared_secret
from repro.exceptions import KeyExchangeError, ValidationError


@pytest.fixture(scope="module")
def params():
    return DHParameters.for_testing(bits=64, seed="dh-tests")


class TestDHKeyPair:
    def test_public_key_derived_from_private(self, params):
        keypair = DHKeyPair.generate(params, "alice")
        expected = params.group.power(params.group.generator, keypair.private_key)
        assert keypair.public_key == expected

    def test_generation_is_deterministic_per_owner(self, params):
        assert DHKeyPair.generate(params, "alice").private_key == DHKeyPair.generate(params, "alice").private_key

    def test_different_owners_get_different_keys(self, params):
        assert DHKeyPair.generate(params, "alice").public_key != DHKeyPair.generate(params, "bob").public_key

    def test_different_seeds_give_different_keys(self, params):
        assert (
            DHKeyPair.generate(params, "alice", seed=0).private_key
            != DHKeyPair.generate(params, "alice", seed=1).private_key
        )

    def test_mismatched_public_key_rejected(self, params):
        keypair = DHKeyPair.generate(params, "alice")
        with pytest.raises(KeyExchangeError):
            DHKeyPair(params=params, private_key=keypair.private_key, public_key=keypair.public_key + 1)

    def test_private_key_out_of_range_rejected(self, params):
        with pytest.raises(ValidationError):
            DHKeyPair(params=params, private_key=1)

    def test_default_params_use_2048_bit_group(self):
        assert DHParameters.default().group.bit_length == 2048


class TestSharedSecret:
    def test_symmetry(self, params):
        alice = DHKeyPair.generate(params, "alice")
        bob = DHKeyPair.generate(params, "bob")
        assert shared_secret(alice, bob.public_key) == shared_secret(bob, alice.public_key)

    def test_32_byte_output(self, params):
        alice = DHKeyPair.generate(params, "alice")
        bob = DHKeyPair.generate(params, "bob")
        assert len(shared_secret(alice, bob.public_key)) == 32

    def test_different_pairs_have_different_secrets(self, params):
        alice = DHKeyPair.generate(params, "alice")
        bob = DHKeyPair.generate(params, "bob")
        carol = DHKeyPair.generate(params, "carol")
        assert shared_secret(alice, bob.public_key) != shared_secret(alice, carol.public_key)

    def test_rejects_public_key_outside_group(self, params):
        alice = DHKeyPair.generate(params, "alice")
        with pytest.raises(KeyExchangeError):
            shared_secret(alice, params.group.prime + 5)

    def test_rejects_degenerate_public_key(self, params):
        alice = DHKeyPair.generate(params, "alice")
        with pytest.raises(KeyExchangeError):
            shared_secret(alice, 1)

    def test_works_on_production_size_group(self):
        big = DHParameters.default()
        alice = DHKeyPair.generate(big, "alice")
        bob = DHKeyPair.generate(big, "bob")
        assert shared_secret(alice, bob.public_key) == shared_secret(bob, alice.public_key)


class TestPairSeed:
    def test_deterministic(self):
        assert pair_seed(b"\x01" * 32, 5) == pair_seed(b"\x01" * 32, 5)

    def test_round_dependence(self):
        assert pair_seed(b"\x01" * 32, 5) != pair_seed(b"\x01" * 32, 6)

    def test_secret_dependence(self):
        assert pair_seed(b"\x01" * 32, 5) != pair_seed(b"\x02" * 32, 5)
