"""Tests for optimizers (repro.fl.optimizer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters
from repro.fl.optimizer import MomentumOptimizer, SgdOptimizer


def make_params(value=1.0):
    return ModelParameters.from_mapping({"w": np.full(4, value)})


def make_grads(value=0.5):
    return ModelParameters.from_mapping({"w": np.full(4, value)})


class TestSgd:
    def test_step_moves_against_gradient(self):
        new = SgdOptimizer(learning_rate=0.1).step(make_params(1.0), make_grads(0.5))
        assert np.allclose(new.get("w"), 0.95)

    def test_zero_gradient_is_identity(self):
        new = SgdOptimizer(0.1).step(make_params(2.0), make_grads(0.0))
        assert new.allclose(make_params(2.0))

    def test_learning_rate_scales_step(self):
        small = SgdOptimizer(0.1).step(make_params(), make_grads())
        large = SgdOptimizer(1.0).step(make_params(), make_grads())
        assert np.all(large.get("w") < small.get("w"))

    def test_rejects_non_positive_learning_rate(self):
        with pytest.raises(ValidationError):
            SgdOptimizer(0.0)

    def test_reset_is_noop(self):
        SgdOptimizer(0.1).reset()


class TestMomentum:
    def test_first_step_matches_sgd(self):
        momentum_step = MomentumOptimizer(0.1, momentum=0.9).step(make_params(), make_grads())
        sgd_step = SgdOptimizer(0.1).step(make_params(), make_grads())
        assert momentum_step.allclose(sgd_step)

    def test_velocity_accumulates(self):
        optimizer = MomentumOptimizer(0.1, momentum=0.9)
        params = make_params(1.0)
        params = optimizer.step(params, make_grads(1.0))
        params_second = optimizer.step(params, make_grads(1.0))
        first_step_size = 1.0 - 0.9
        second_step_size = float(params.get("w")[0] - params_second.get("w")[0])
        assert second_step_size > first_step_size

    def test_reset_clears_velocity(self):
        optimizer = MomentumOptimizer(0.1, momentum=0.9)
        optimizer.step(make_params(), make_grads())
        optimizer.reset()
        after_reset = optimizer.step(make_params(), make_grads())
        assert after_reset.allclose(SgdOptimizer(0.1).step(make_params(), make_grads()))

    def test_rejects_momentum_out_of_range(self):
        with pytest.raises(ValidationError):
            MomentumOptimizer(0.1, momentum=1.0)
        with pytest.raises(ValidationError):
            MomentumOptimizer(0.1, momentum=-0.1)

    def test_rejects_non_positive_learning_rate(self):
        with pytest.raises(ValidationError):
            MomentumOptimizer(0.0)
