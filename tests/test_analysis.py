"""Tests for the analysis package (privacy, throughput, trade-off sweeps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.privacy import anonymity_set_sizes, assess_privacy, sv_resolution
from repro.analysis.throughput import ThroughputModel, measure_chain_overhead
from repro.analysis.tradeoff import sweep_group_counts
from repro.exceptions import ValidationError
from repro.shapley.group import make_groups
from repro.shapley.native import native_shapley
from repro.shapley.utility import CoalitionModelUtility


class TestPrivacy:
    def test_anonymity_set_sizes_match_group_sizes(self):
        groups = make_groups([f"o{i}" for i in range(9)], 3, 13, 0)
        sizes = anonymity_set_sizes(groups)
        assert all(size == 3 for size in sizes.values())

    def test_resolution_bounds(self):
        assert sv_resolution(9, 9) == 1.0
        assert sv_resolution(9, 1) == pytest.approx(1 / 9)

    def test_resolution_rejects_bad_m(self):
        with pytest.raises(ValidationError):
            sv_resolution(9, 10)

    def test_more_groups_means_less_privacy(self):
        low_m = assess_privacy(9, 2)
        high_m = assess_privacy(9, 9)
        assert low_m.min_anonymity > high_m.min_anonymity
        assert low_m.revealed_fraction < high_m.revealed_fraction
        assert low_m.resolution < high_m.resolution

    def test_singleton_groups_fully_reveal_a_model(self):
        assert assess_privacy(6, 6).revealed_fraction == 1.0

    def test_single_group_maximum_privacy(self):
        assessment = assess_privacy(8, 1)
        assert assessment.min_anonymity == 8
        assert assessment.mean_anonymity == 8.0

    def test_uneven_groups_report_worst_case(self):
        # 9 owners into 4 groups -> smallest group has 2 members.
        assessment = assess_privacy(9, 4)
        assert assessment.min_anonymity == 2


class TestThroughputMeasurement:
    def test_measures_finished_protocol_run(self, protocol_run):
        protocol, result = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        report = measure_chain_overhead(chain, result.network_stats, n_rounds=protocol.config.n_rounds)
        assert report.n_transactions == result.total_transactions
        assert report.n_blocks == result.chain_height
        assert report.transactions_per_round >= len(protocol.owner_ids)
        assert report.network_bytes > 0
        assert report.gas_per_round > 0

    def test_rejects_zero_rounds(self, protocol_run):
        protocol, result = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        with pytest.raises(ValidationError):
            measure_chain_overhead(chain, result.network_stats, n_rounds=0)


class TestThroughputModel:
    def test_presets(self):
        assert ThroughputModel.ethereum_like().transactions_per_second < ThroughputModel.hyperledger_like().transactions_per_second

    def test_transactions_per_update_is_ceiling_division(self):
        model = ThroughputModel(10, max_tx_payload_bytes=1000, block_interval_seconds=1.0)
        assert model.transactions_per_update(999) == 1
        assert model.transactions_per_update(1000) == 1
        assert model.transactions_per_update(1001) == 2

    def test_round_latency_bounded_by_block_interval(self):
        model = ThroughputModel(1e9, max_tx_payload_bytes=10**9, block_interval_seconds=13.0)
        assert model.round_latency_seconds(9, 1000) == 13.0

    def test_round_latency_bounded_by_throughput(self):
        model = ThroughputModel(1.0, max_tx_payload_bytes=10**9, block_interval_seconds=0.001)
        assert model.round_latency_seconds(9, 1000) == pytest.approx(11.0)

    def test_rounds_per_hour_decreases_with_more_owners(self):
        # Large enough updates that the throughput limit (not the block
        # interval) is binding for the big cohort.
        model = ThroughputModel.ethereum_like()
        update_bytes = 512 * 1024
        assert model.rounds_per_hour(100, update_bytes) < model.rounds_per_hour(5, update_bytes)

    def test_bottleneck_identification(self):
        eth = ThroughputModel.ethereum_like()
        fabric = ThroughputModel.hyperledger_like()
        big_update = 10 * 1024 * 1024
        assert eth.bottleneck(50, big_update) == "throughput"
        assert fabric.bottleneck(3, 1000) == "block-interval"

    def test_invalid_inputs_rejected(self):
        model = ThroughputModel.ethereum_like()
        with pytest.raises(ValidationError):
            model.transactions_per_update(0)
        with pytest.raises(ValidationError):
            model.round_latency_seconds(0, 100)


class TestTradeoffSweep:
    def test_sweep_produces_one_point_per_group_count(self, scorer, local_models):
        ground_truth = native_shapley(sorted(local_models), CoalitionModelUtility(local_models, scorer))
        points = sweep_group_counts(local_models, ground_truth, scorer, group_counts=[2, 4])
        assert [p.n_groups for p in points] == [2, 4]

    def test_full_resolution_point_matches_ground_truth(self, scorer, local_models):
        n = len(local_models)
        ground_truth = native_shapley(sorted(local_models), CoalitionModelUtility(local_models, scorer))
        points = sweep_group_counts(local_models, ground_truth, scorer, group_counts=[n])
        assert points[0].cosine_to_ground_truth == pytest.approx(1.0, abs=1e-9)
        assert points[0].resolution == 1.0

    def test_coalition_evaluations_grow_with_m(self, scorer, local_models):
        ground_truth = {owner: 0.1 for owner in local_models}
        points = sweep_group_counts(local_models, ground_truth, scorer, group_counts=[2, 4])
        assert points[0].coalition_evaluations < points[1].coalition_evaluations

    def test_ground_truth_owner_mismatch_rejected(self, scorer, local_models):
        with pytest.raises(ValidationError):
            sweep_group_counts(local_models, {"ghost": 1.0}, scorer, group_counts=[2])

    def test_default_group_counts_cover_two_to_n(self, scorer, local_models):
        ground_truth = {owner: 0.1 for owner in local_models}
        points = sweep_group_counts(local_models, ground_truth, scorer)
        assert [p.n_groups for p in points] == list(range(2, len(local_models) + 1))
