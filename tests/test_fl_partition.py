"""Tests for dataset partitioning (repro.fl.partition)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.fl.partition import dirichlet_partition, uniform_partition


class TestUniformPartition:
    def test_covers_all_indices_exactly_once(self):
        parts = uniform_partition(100, 7, seed=1)
        combined = np.concatenate(parts)
        assert sorted(combined.tolist()) == list(range(100))

    def test_sizes_are_balanced(self):
        parts = uniform_partition(100, 7, seed=1)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_for_seed(self):
        a = uniform_partition(50, 5, seed=3)
        b = uniform_partition(50, 5, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_different_seed_changes_partition(self):
        a = uniform_partition(50, 5, seed=3)
        b = uniform_partition(50, 5, seed=4)
        assert any(not np.array_equal(x, y) for x, y in zip(a, b))

    def test_single_owner_gets_everything(self):
        parts = uniform_partition(10, 1, seed=0)
        assert len(parts) == 1 and len(parts[0]) == 10

    def test_rejects_more_owners_than_samples(self):
        with pytest.raises(PartitionError):
            uniform_partition(3, 5)

    def test_rejects_non_positive_owner_count(self):
        with pytest.raises(PartitionError):
            uniform_partition(10, 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(10, 200), st.integers(1, 9), st.integers(0, 100))
    def test_property_partition_is_a_partition(self, n_samples, n_owners, seed):
        parts = uniform_partition(n_samples, n_owners, seed=seed)
        combined = np.concatenate(parts)
        assert len(combined) == n_samples
        assert len(set(combined.tolist())) == n_samples


class TestDirichletPartition:
    @pytest.fixture(scope="class")
    def labels(self):
        rng = np.random.default_rng(0)
        return rng.integers(0, 5, size=400)

    def test_covers_all_indices_exactly_once(self, labels):
        parts = dirichlet_partition(labels, 6, alpha=0.5, seed=1)
        combined = np.concatenate(parts)
        assert sorted(combined.tolist()) == list(range(len(labels)))

    def test_every_owner_meets_minimum(self, labels):
        parts = dirichlet_partition(labels, 6, alpha=0.3, seed=1, min_samples_per_owner=5)
        assert all(len(p) >= 5 for p in parts)

    def test_small_alpha_is_more_skewed_than_large_alpha(self, labels):
        def skew(parts):
            sizes = np.array([len(p) for p in parts], dtype=float)
            return sizes.std() / sizes.mean()

        skew_small = skew(dirichlet_partition(labels, 5, alpha=0.05, seed=2))
        skew_large = skew(dirichlet_partition(labels, 5, alpha=100.0, seed=2))
        assert skew_small > skew_large

    def test_deterministic_for_seed(self, labels):
        a = dirichlet_partition(labels, 4, alpha=0.5, seed=9)
        b = dirichlet_partition(labels, 4, alpha=0.5, seed=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_rejects_bad_alpha(self, labels):
        with pytest.raises(PartitionError):
            dirichlet_partition(labels, 4, alpha=0.0)

    def test_rejects_impossible_minimum(self, labels):
        with pytest.raises(PartitionError):
            dirichlet_partition(labels, 4, alpha=0.5, min_samples_per_owner=1000)
