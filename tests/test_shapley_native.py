"""Tests for the exact Shapley value (repro.shapley.native).

These test the combinatorial machinery against known cooperative games where
the Shapley value has a closed form, and check the Shapley axioms as
property-based invariants.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapleyError
from repro.shapley.native import all_coalitions, efficiency_gap, exact_shapley_from_utilities, native_shapley
from repro.shapley.utility import CachedUtility


class TestAllCoalitions:
    def test_counts_power_set(self):
        assert len(all_coalitions(["a", "b", "c"])) == 8

    def test_includes_empty_and_grand_coalition(self):
        coalitions = all_coalitions(["a", "b"])
        assert () in coalitions
        assert ("a", "b") in coalitions

    def test_coalitions_are_sorted_tuples(self):
        coalitions = all_coalitions(["b", "a"])
        assert ("a", "b") in coalitions
        assert ("b", "a") not in coalitions


class TestKnownGames:
    def test_additive_game_gives_individual_values(self):
        # u(S) = sum of each member's private value => v_i equals that value.
        private = {"a": 1.0, "b": 2.0, "c": 4.0}
        values = native_shapley(list(private), lambda s: sum(private[p] for p in s))
        for player, expected in private.items():
            assert values[player] == pytest.approx(expected)

    def test_symmetric_players_share_equally(self):
        # u(S) = 1 if |S| >= 2 else 0 ("majority" game with 3 symmetric players).
        values = native_shapley(["a", "b", "c"], lambda s: 1.0 if len(s) >= 2 else 0.0)
        for value in values.values():
            assert value == pytest.approx(1.0 / 3.0)

    def test_null_player_gets_zero(self):
        # Player "d" never changes the utility.
        def utility(coalition):
            return 1.0 if "a" in coalition else 0.0

        values = native_shapley(["a", "d"], utility)
        assert values["d"] == pytest.approx(0.0)
        assert values["a"] == pytest.approx(1.0)

    def test_glove_game(self):
        # Classic glove game: a has a left glove, b and c have right gloves;
        # a pair is worth 1. Known SVs: a = 2/3, b = c = 1/6.
        def utility(coalition):
            lefts = int("a" in coalition)
            rights = sum(1 for p in ("b", "c") if p in coalition)
            return float(min(lefts, rights))

        values = native_shapley(["a", "b", "c"], utility)
        assert values["a"] == pytest.approx(2.0 / 3.0)
        assert values["b"] == pytest.approx(1.0 / 6.0)
        assert values["c"] == pytest.approx(1.0 / 6.0)

    def test_unanimity_game(self):
        # u(S) = 1 iff S contains the full carrier {a, b}; c is a null player.
        def utility(coalition):
            return 1.0 if {"a", "b"}.issubset(coalition) else 0.0

        values = native_shapley(["a", "b", "c"], utility)
        assert values["a"] == pytest.approx(0.5)
        assert values["b"] == pytest.approx(0.5)
        assert values["c"] == pytest.approx(0.0)

    def test_single_player_gets_grand_utility(self):
        values = native_shapley(["only"], lambda s: 5.0 if s else 0.0)
        assert values["only"] == pytest.approx(5.0)


class TestValidation:
    def test_rejects_empty_player_list(self):
        with pytest.raises(ShapleyError):
            native_shapley([], lambda s: 0.0)

    def test_rejects_duplicate_players(self):
        with pytest.raises(ShapleyError):
            native_shapley(["a", "a"], lambda s: 0.0)

    def test_exact_from_utilities_requires_complete_table(self):
        with pytest.raises(ShapleyError):
            exact_shapley_from_utilities(["a", "b"], {("a",): 1.0, ("a", "b"): 2.0})

    def test_utility_called_once_per_coalition(self):
        calls = []

        def utility(coalition):
            calls.append(coalition)
            return float(len(coalition))

        cached = CachedUtility(utility)
        native_shapley(["a", "b", "c", "d"], cached)
        # 2^4 - 1 non-empty coalitions evaluated exactly once each.
        assert len(calls) == 15


class TestAxiomsAsProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=-5, max_value=5),
            min_size=2,
            max_size=4,
        ),
        st.data(),
    )
    def test_efficiency_and_symmetry(self, private_values, data):
        players = sorted(private_values)
        # Superadditive-ish random game: base additive part plus a bonus that
        # depends only on coalition size (keeps symmetric players symmetric).
        size_bonus = data.draw(
            st.lists(st.floats(min_value=0, max_value=2), min_size=len(players) + 1, max_size=len(players) + 1)
        )

        def utility(coalition):
            return sum(private_values[p] for p in coalition) + size_bonus[len(coalition)] - size_bonus[0]

        values = native_shapley(players, utility)
        # Efficiency: values sum to u(grand) - u(empty).
        grand = utility(tuple(players))
        assert efficiency_gap(values, grand, utility(())) < 1e-9
        # Symmetry: two players with equal private value are interchangeable.
        by_value = {}
        for player, private in private_values.items():
            by_value.setdefault(round(private, 10), []).append(player)
        for group in by_value.values():
            for first, second in zip(group, group[1:]):
                assert values[first] == pytest.approx(values[second])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=10_000))
    def test_additivity(self, n_players, seed):
        import numpy as np

        players = [f"p{i}" for i in range(n_players)]
        rng = np.random.default_rng(seed)
        table_u = {tuple(sorted(c)): float(rng.normal()) for c in all_coalitions(players)}
        table_v = {tuple(sorted(c)): float(rng.normal()) for c in all_coalitions(players)}
        table_u[()] = 0.0
        table_v[()] = 0.0
        table_sum = {key: table_u[key] + table_v[key] for key in table_u}
        sv_u = exact_shapley_from_utilities(players, table_u)
        sv_v = exact_shapley_from_utilities(players, table_v)
        sv_sum = exact_shapley_from_utilities(players, table_sum)
        for player in players:
            assert sv_sum[player] == pytest.approx(sv_u[player] + sv_v[player], abs=1e-9)

    def test_weights_sum_to_one_per_player(self):
        # The Shapley weighting 1/(n * C(n-1, |S|)) over all S ⊆ I\{i} sums to 1.
        n = 6
        total = sum(
            1.0 / (n * math.comb(n - 1, size)) * math.comb(n - 1, size)
            for size in range(n)
        )
        assert total == pytest.approx(1.0)
