"""Tests for hierarchical sharded secure aggregation.

Covers three layers: the pure shard-derivation functions, the crypto-level
equivalence (sum of shard sums == flat group sum, bit for bit), and the full
on-chain protocol under ``aggregation_topology="sharded"`` — identical
contribution receipts to the flat run, canonical shards recorded in the round
block, O(shard) per-client mask counts, rejected wrong-shard claims, and
passing audits in both replay and incremental modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.audit import AuditReport, _audit_sampled_round, audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import RoundScheduler, Scenario
from repro.core.protocol import BlockchainFLProtocol
from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import PairwiseMasker, SecureAggregator
from repro.crypto.sharding import (
    shard_cohort,
    shard_count,
    shard_group,
    shard_membership,
    shard_sizes,
)
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import ConfigurationError, GroupingError
from repro.shapley.estimator import estimator_seed_for_round
from repro.utils.rng import spawn_rng


class TestShardDerivation:
    def test_shard_count_is_the_ceiling(self):
        assert shard_count(1, 2) == 1
        assert shard_count(4, 2) == 2
        assert shard_count(5, 2) == 3
        assert shard_count(32, 32) == 1
        assert shard_count(33, 32) == 2
        assert shard_count(10_000, 32) == 313

    def test_shard_count_rejects_bad_inputs(self):
        with pytest.raises(GroupingError):
            shard_count(0, 2)
        with pytest.raises(GroupingError):
            shard_count(4, 1)

    @pytest.mark.parametrize("n_members", range(2, 70))
    def test_shard_sizes_are_balanced_and_never_singletons(self, n_members):
        sizes = shard_sizes(n_members, 8)
        assert sum(sizes) == n_members
        assert all(size <= 8 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        # A singleton shard would submit an unmasked update.
        assert min(sizes) >= 2

    def test_shard_group_slices_are_contiguous(self):
        members = [f"o{i}" for i in range(7)]
        shards = shard_group(members, 3)
        assert shards == [["o0", "o1", "o2"], ["o3", "o4"], ["o5", "o6"]]
        assert [m for shard in shards for m in shard] == members

    def test_shard_group_rejects_duplicates(self):
        with pytest.raises(GroupingError):
            shard_group(["a", "b", "a"], 2)

    def test_shard_membership_inverts_the_assignment(self):
        shards = shard_cohort([["a", "b", "c"], ["d", "e"]], 2)
        membership = shard_membership(shards)
        for owner, (group_index, shard_index) in membership.items():
            assert owner in shards[group_index][shard_index]
        assert set(membership) == {"a", "b", "c", "d", "e"}

    def test_shard_membership_rejects_duplicates(self):
        with pytest.raises(GroupingError):
            shard_membership([[["a", "b"], ["a"]]])


class TestShardedAggregationEquivalence:
    """Ring arithmetic makes per-shard aggregation exact, not approximate."""

    def _masked_updates(self, owners, cohorts, vectors, round_number=3):
        params = DHParameters.for_testing(bits=64, seed=5)
        keypairs = {o: DHKeyPair.generate(params, o, seed=5) for o in owners}
        public = {o: pair.public_key for o, pair in keypairs.items()}
        codec = FixedPointCodec()
        updates = []
        for cohort in cohorts:
            for owner in cohort:
                peers = {p: public[p] for p in cohort if p != owner}
                masker = PairwiseMasker(owner, keypairs[owner], peers, codec=codec)
                updates.append(masker.mask(vectors[owner], round_number))
        return updates, codec

    def test_sum_of_shard_sums_equals_flat_group_sum(self):
        owners = [f"owner-{i}" for i in range(5)]
        rng = spawn_rng("shard-equivalence", 17)
        vectors = {o: rng.normal(size=12) for o in owners}
        shards = shard_group(owners, 2)

        flat_updates, codec = self._masked_updates(owners, [owners], vectors)
        flat_sum = SecureAggregator(codec=codec).aggregate_sum(flat_updates)

        shard_updates, codec = self._masked_updates(owners, shards, vectors)
        aggregator = SecureAggregator(codec=codec)
        by_owner = {u.owner_id: u for u in shard_updates}
        shard_sums = [
            aggregator.aggregate_sum([by_owner[o] for o in shard]) for shard in shards
        ]
        assert np.array_equal(flat_sum, np.sum(shard_sums, axis=0))

    def test_masks_do_not_cancel_across_shards(self):
        # A single shard's sum is still masked garbage relative to the plain
        # sum — privacy holds until the whole shard is present.
        owners = [f"owner-{i}" for i in range(4)]
        rng = spawn_rng("shard-privacy", 23)
        vectors = {o: rng.normal(size=6) for o in owners}
        shards = shard_group(owners, 2)
        updates, codec = self._masked_updates(owners, shards, vectors)
        partial = codec.decode_sum(updates[0].payload, n_summands=1)
        assert not np.allclose(partial, vectors[owners[0]], atol=1e-3)


@pytest.fixture(scope="module")
def six_setup():
    """Six owners so a 2-group round splits into two shards per group."""
    return make_owner_datasets(n_owners=6, sigma=0.1, n_samples=400, seed=7)


def _build(six_setup, **overrides):
    dataset, owners = six_setup
    settings = dict(
        n_owners=6, n_groups=2, n_rounds=2, local_epochs=2,
        learning_rate=2.0, permutation_seed=13,
    )
    settings.update(overrides)
    return BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
        ProtocolConfig(**settings),
    )


def _fingerprint(protocol):
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    return [(b.height, b.block_hash, b.header.state_root) for b in chain.blocks]


@pytest.fixture(scope="module")
def flat_run(six_setup):
    protocol = _build(six_setup)
    result = protocol.run()
    return protocol, result


@pytest.fixture(scope="module")
def sharded_run(six_setup):
    protocol = _build(six_setup, aggregation_topology="sharded", shard_size=2)
    result = protocol.run()
    return protocol, result


class TestShardedProtocol:
    def test_sharded_contributions_match_flat_exactly(self, flat_run, sharded_run):
        _, flat = flat_run
        _, shard = sharded_run
        for flat_round, shard_round in zip(flat.rounds, shard.rounds):
            assert shard_round.user_values == flat_round.user_values
            assert shard_round.global_utility == flat_round.global_utility

    def test_round_record_carries_the_canonical_shards(self, sharded_run):
        protocol, _ = sharded_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        for round_number in range(protocol.config.n_rounds):
            record = chain.state.get("fl_training", f"round/{round_number}")
            expected = [
                [list(shard) for shard in shard_group(list(group), 2)]
                for group in record["groups"]
            ]
            assert record["shards"] == expected
            for group_shards in record["shards"]:
                assert all(len(shard) <= 2 for shard in group_shards)

    def test_flat_round_record_has_no_shards_key(self, flat_run):
        protocol, _ = flat_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        record = chain.state.get("fl_training", "round/0")
        assert "shards" not in record

    def test_per_client_mask_count_is_o_shard(self, six_setup, monkeypatch):
        import repro.core.participant as participant_module

        peer_counts: list[int] = []

        class SpyMasker(PairwiseMasker):
            def __init__(self, owner_id, keypair, peer_public_keys, codec=None):
                peer_counts.append(len(peer_public_keys))
                super().__init__(owner_id, keypair, peer_public_keys, codec=codec)

        monkeypatch.setattr(participant_module, "PairwiseMasker", SpyMasker)
        protocol = _build(six_setup, aggregation_topology="sharded", shard_size=2)
        protocol.run()
        assert peer_counts, "no masked submissions were built"
        # Every shard has at most 2 members, so every client derives at most
        # one pairwise mask — never the O(group) = 2 of the flat topology.
        assert max(peer_counts) <= 1

    def test_flat_mask_count_is_o_group(self, six_setup, monkeypatch):
        import repro.core.participant as participant_module

        peer_counts: list[int] = []

        class SpyMasker(PairwiseMasker):
            def __init__(self, owner_id, keypair, peer_public_keys, codec=None):
                peer_counts.append(len(peer_public_keys))
                super().__init__(owner_id, keypair, peer_public_keys, codec=codec)

        monkeypatch.setattr(participant_module, "PairwiseMasker", SpyMasker)
        protocol = _build(six_setup)
        protocol.run()
        assert peer_counts and max(peer_counts) == 2  # group of 3, minus self

    def test_sharded_chain_passes_both_audit_modes(self, six_setup, sharded_run):
        dataset, _ = six_setup
        protocol, _ = sharded_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        for mode in ("replay", "incremental"):
            report = audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode=mode,
            )
            assert report.passed, report.mismatches

    def test_wrong_shard_claim_is_rejected_and_chain_unchanged(self, six_setup, sharded_run):
        honest_protocol, _ = sharded_run

        class WrongShardClaim(Scenario):
            def __init__(self, owner_id):
                self.owner_id = owner_id

            def tamper_submission(self, ctx, owner_id, args):
                if owner_id != self.owner_id or "shard_id" not in args:
                    return args
                tampered = dict(args)
                tampered["shard_id"] = int(args["shard_id"]) + 1
                return tampered

        disturbed = _build(six_setup, aggregation_topology="sharded", shard_size=2)
        liar = sorted(disturbed.owner_ids)[0]
        scheduler = RoundScheduler(disturbed, WrongShardClaim(liar))
        scheduler.run()

        assert _fingerprint(disturbed) == _fingerprint(honest_protocol)
        rejections = [r for ctx in scheduler.contexts for r in ctx.rejections]
        assert len(rejections) == disturbed.config.n_rounds
        assert all(r.owner_id == liar for r in rejections)
        assert all("claims shard" in r.reason for r in rejections)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(aggregation_topology="sharded")  # shard_size missing
        with pytest.raises(ConfigurationError):
            ProtocolConfig(aggregation_topology="sharded", shard_size=1)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(shard_size=4)  # flat topology rejects a shard size
        with pytest.raises(ConfigurationError):
            ProtocolConfig(aggregation_topology="ring", shard_size=4)

    def test_on_chain_params_stay_identical_for_flat_exact_configs(self):
        # The new knobs only appear on chain when they deviate from the
        # defaults, so historical flat/exact chains keep their block hashes.
        params = ProtocolConfig().on_chain_params(model_dimension=10)
        assert "aggregation_topology" not in params
        assert "sv_estimator" not in params
        sharded = ProtocolConfig(aggregation_topology="sharded", shard_size=2)
        assert sharded.on_chain_params(model_dimension=10)["shard_size"] == 2
        sampled = ProtocolConfig(sv_estimator="sampled", sv_samples=64)
        assert sampled.on_chain_params(model_dimension=10)["sv_samples"] == 64


class TestShardedSampledProtocol:
    @pytest.fixture(scope="class")
    def sampled_run(self, six_setup):
        protocol = _build(
            six_setup, aggregation_topology="sharded", shard_size=2,
            sv_estimator="sampled", sv_samples=16,
        )
        result = protocol.run()
        return protocol, result

    def test_receipts_carry_estimator_metadata_and_bounds(self, sampled_run):
        protocol, result = sampled_run
        for record in result.rounds:
            assert record.estimator is not None
            assert record.estimator["name"] == "sampled"
            assert record.estimator["seed"] == estimator_seed_for_round(
                protocol.config.permutation_seed, record.round_number
            )
            assert set(record.user_half_widths) == set(record.user_values)
            assert all(width >= 0.0 for width in record.user_half_widths.values())

    def test_sampled_chain_passes_both_audit_modes(self, six_setup, sampled_run):
        dataset, _ = six_setup
        protocol, _ = sampled_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        for mode in ("replay", "incremental"):
            report = audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode=mode,
            )
            assert report.passed, report.mismatches
            assert report.estimators_checked == [0, 1]

    def test_audit_rejects_an_inflated_estimate(self, six_setup, sampled_run):
        dataset, _ = six_setup
        protocol, _ = sampled_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        round_record = chain.state.get("fl_training", "round/0")
        stored = dict(chain.state.get("contribution", "evaluation/0"))
        scorer_features = dataset.test_features
        from repro.shapley.utility import AccuracyUtility

        scorer = AccuracyUtility(scorer_features, dataset.test_labels, dataset.n_classes)
        report = AuditReport(chain_valid=True)
        assert _audit_sampled_round(
            scorer, round_record, stored,
            protocol.config.permutation_seed, protocol.config.sv_samples,
            report, tolerance=1e-9,
        )

        # Push one group's stored value far outside its recorded bound — the
        # kind of lie a proposer inflating its own contribution would tell.
        tampered = dict(stored)
        values = [float(v) for v in stored["group_values"]]
        values[0] += 10 * (float(stored["group_half_widths"][0]) + 0.01)
        tampered["group_values"] = values
        report = AuditReport(chain_valid=True)
        assert not _audit_sampled_round(
            scorer, round_record, tampered,
            protocol.config.permutation_seed, protocol.config.sv_samples,
            report, tolerance=1e-9,
        )
        assert any("outside the verified" in m for m in report.mismatches)

    def test_audit_rejects_an_inflated_bound(self, six_setup, sampled_run):
        dataset, _ = six_setup
        protocol, _ = sampled_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        round_record = chain.state.get("fl_training", "round/0")
        stored = dict(chain.state.get("contribution", "evaluation/0"))
        from repro.shapley.utility import AccuracyUtility

        scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
        # Inflating the half-width (to make any value "verify") is caught by
        # the bound-verification layer.
        tampered = dict(stored)
        widths = [float(w) for w in stored["group_half_widths"]]
        widths[0] += 1.0
        tampered["group_half_widths"] = widths
        report = AuditReport(chain_valid=True)
        assert not _audit_sampled_round(
            scorer, round_record, tampered,
            protocol.config.permutation_seed, protocol.config.sv_samples,
            report, tolerance=1e-9,
        )
        assert any("half-width" in m for m in report.mismatches)
