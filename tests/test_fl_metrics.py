"""Tests for classification metrics (repro.fl.metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fl.metrics import accuracy, confusion_matrix, cross_entropy, macro_f1


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_none_correct(self):
        assert accuracy([0, 1, 2], [1, 2, 0]) == 0.0

    def test_partial(self):
        assert accuracy([0, 1, 2, 3], [0, 1, 0, 0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            accuracy([0, 1], [0])


class TestCrossEntropy:
    def test_confident_correct_prediction_has_low_loss(self):
        probabilities = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert cross_entropy([0, 1], probabilities) < 0.02

    def test_confident_wrong_prediction_has_high_loss(self):
        probabilities = np.array([[0.01, 0.99]])
        assert cross_entropy([0], probabilities) > 4.0

    def test_uniform_prediction_loss_is_log_k(self):
        probabilities = np.full((4, 4), 0.25)
        assert cross_entropy([0, 1, 2, 3], probabilities) == pytest.approx(np.log(4))

    def test_requires_2d_probabilities(self):
        with pytest.raises(ValidationError):
            cross_entropy([0], np.array([0.5, 0.5]))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            cross_entropy([5], np.array([[0.5, 0.5]]))

    def test_sample_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            cross_entropy([0, 1], np.array([[1.0, 0.0]]))


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 2, 2], [0, 1, 2, 2])
        assert np.array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_explicit_class_count(self):
        matrix = confusion_matrix([0], [0], n_classes=5)
        assert matrix.shape == (5, 5)

    def test_rows_sum_to_class_frequencies(self):
        y_true = [0, 0, 1, 2, 2, 2]
        y_pred = [0, 1, 1, 0, 2, 2]
        matrix = confusion_matrix(y_true, y_pred)
        assert list(matrix.sum(axis=1)) == [2, 1, 3]


class TestMacroF1:
    def test_perfect_predictions(self):
        assert macro_f1([0, 1, 2], [0, 1, 2]) == 1.0

    def test_all_wrong(self):
        assert macro_f1([0, 1], [1, 0]) == 0.0

    def test_absent_classes_are_ignored(self):
        # Class 2 never appears; macro-F1 averages only over classes 0 and 1.
        score = macro_f1([0, 1], [0, 1], n_classes=3)
        assert score == 1.0

    def test_between_zero_and_one(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, size=100)
        y_pred = rng.integers(0, 4, size=100)
        assert 0.0 <= macro_f1(y_true, y_pred) <= 1.0
