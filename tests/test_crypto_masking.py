"""Tests for pairwise masking and secure aggregation (repro.crypto.masking)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import MaskedUpdate, PairwiseMasker, SecureAggregator
from repro.exceptions import MaskingError, ValidationError


@pytest.fixture(scope="module")
def dh_params():
    return DHParameters.for_testing(bits=64, seed="masking-tests")


def _build_cohort(dh_params, owner_ids, dimension, seed=0):
    """Key pairs, public keys, and deterministic weight vectors for a cohort."""
    keypairs = {owner: DHKeyPair.generate(dh_params, owner, seed=seed) for owner in owner_ids}
    public_keys = {owner: keypair.public_key for owner, keypair in keypairs.items()}
    rng = np.random.default_rng(42)
    weights = {owner: rng.normal(scale=2.0, size=dimension) for owner in owner_ids}
    return keypairs, public_keys, weights


def _masked_updates(dh_params, owner_ids, dimension, round_number=0, codec=None):
    codec = codec or FixedPointCodec()
    keypairs, public_keys, weights = _build_cohort(dh_params, owner_ids, dimension)
    updates = []
    for owner in owner_ids:
        masker = PairwiseMasker(owner, keypairs[owner], public_keys, codec=codec)
        updates.append(masker.mask(weights[owner], round_number))
    return updates, weights, codec


class TestPairwiseMasker:
    def test_masks_cancel_in_the_sum(self, dh_params):
        owners = ["a", "b", "c"]
        updates, weights, codec = _masked_updates(dh_params, owners, dimension=50)
        aggregator = SecureAggregator(codec)
        total = aggregator.aggregate_sum(updates)
        expected = np.sum([weights[o] for o in owners], axis=0)
        assert np.allclose(total, expected, atol=len(owners) * 2.0 / codec.scale)

    def test_mean_matches_plain_fedavg(self, dh_params):
        owners = ["a", "b", "c", "d", "e"]
        updates, weights, codec = _masked_updates(dh_params, owners, dimension=30)
        mean = SecureAggregator(codec).aggregate_mean(updates)
        expected = np.mean([weights[o] for o in owners], axis=0)
        assert np.allclose(mean, expected, atol=2.0 / codec.scale)

    def test_single_masked_update_is_not_the_plain_encoding(self, dh_params):
        owners = ["a", "b", "c"]
        updates, weights, codec = _masked_updates(dh_params, owners, dimension=40)
        plain = codec.encode(weights["a"])
        masked = next(u for u in updates if u.owner_id == "a").payload
        assert not np.array_equal(masked, plain)

    def test_two_party_masking_works(self, dh_params):
        owners = ["a", "b"]
        updates, weights, codec = _masked_updates(dh_params, owners, dimension=10)
        total = SecureAggregator(codec).aggregate_sum(updates)
        assert np.allclose(total, weights["a"] + weights["b"], atol=4.0 / codec.scale)

    def test_masks_differ_per_round(self, dh_params):
        owners = ["a", "b"]
        keypairs, public_keys, weights = _build_cohort(dh_params, owners, 20)
        masker = PairwiseMasker("a", keypairs["a"], public_keys)
        round0 = masker.mask(weights["a"], 0).payload
        round1 = masker.mask(weights["a"], 1).payload
        assert not np.array_equal(round0, round1)

    def test_missing_participant_breaks_cancellation(self, dh_params):
        owners = ["a", "b", "c"]
        updates, weights, codec = _masked_updates(dh_params, owners, dimension=25)
        partial_sum = SecureAggregator(codec).aggregate_sum(updates[:2])
        expected = weights["a"] + weights["b"]
        assert not np.allclose(partial_sum, expected, atol=1e-3)

    def test_excludes_self_from_peer_keys(self, dh_params):
        owners = ["a", "b"]
        keypairs, public_keys, _ = _build_cohort(dh_params, owners, 5)
        masker = PairwiseMasker("a", keypairs["a"], public_keys)
        assert masker.peers == ["b"]

    def test_group_cohorts_are_independent(self, dh_params):
        # Masks shared within group {a, b} must cancel without involving group {c, d}.
        owners = ["a", "b", "c", "d"]
        keypairs, public_keys, weights = _build_cohort(dh_params, owners, 15)
        codec = FixedPointCodec()
        group_one = ["a", "b"]
        updates = []
        for owner in group_one:
            cohort = {peer: public_keys[peer] for peer in group_one}
            masker = PairwiseMasker(owner, keypairs[owner], cohort, codec=codec)
            updates.append(masker.mask(weights[owner], 0))
        total = SecureAggregator(codec).aggregate_sum(updates)
        assert np.allclose(total, weights["a"] + weights["b"], atol=4.0 / codec.scale)


class TestMaskedUpdateValidation:
    def test_payload_must_be_flat(self):
        with pytest.raises(ValidationError):
            MaskedUpdate(owner_id="a", round_number=0, payload=np.zeros((2, 2), dtype=np.uint64))

    def test_aggregator_rejects_empty_set(self):
        with pytest.raises(MaskingError):
            SecureAggregator().aggregate_sum([])

    def test_aggregator_rejects_mixed_rounds(self, dh_params):
        updates, _, codec = _masked_updates(dh_params, ["a", "b"], dimension=5, round_number=0)
        other, _, _ = _masked_updates(dh_params, ["a", "b"], dimension=5, round_number=1)
        with pytest.raises(MaskingError):
            SecureAggregator(codec).aggregate_sum([updates[0], other[1]])

    def test_aggregator_rejects_duplicate_owner(self, dh_params):
        updates, _, codec = _masked_updates(dh_params, ["a", "b"], dimension=5)
        with pytest.raises(MaskingError):
            SecureAggregator(codec).aggregate_sum([updates[0], updates[0]])

    def test_aggregator_rejects_mismatched_lengths(self, dh_params):
        updates_a, _, codec = _masked_updates(dh_params, ["a", "b"], dimension=5)
        updates_b, _, _ = _masked_updates(dh_params, ["c", "d"], dimension=7)
        with pytest.raises(MaskingError):
            SecureAggregator(codec).aggregate_sum([updates_a[0], updates_b[0]])


class TestMaskingProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=20),
    )
    def test_property_cancellation_for_any_cohort(self, n_owners, dimension, round_number):
        dh_params = DHParameters.for_testing(bits=48, seed="mask-prop")
        owners = [f"owner-{i}" for i in range(n_owners)]
        codec = FixedPointCodec()
        keypairs = {o: DHKeyPair.generate(dh_params, o) for o in owners}
        public_keys = {o: kp.public_key for o, kp in keypairs.items()}
        rng = np.random.default_rng(round_number)
        weights = {o: rng.normal(scale=5.0, size=dimension) for o in owners}
        updates = [
            PairwiseMasker(o, keypairs[o], public_keys, codec=codec).mask(weights[o], round_number)
            for o in owners
        ]
        total = SecureAggregator(codec).aggregate_sum(updates)
        expected = np.sum([weights[o] for o in owners], axis=0)
        assert np.allclose(total, expected, atol=(n_owners + 1) * 2.0 / codec.scale)


class TestVectorizedParity:
    """The batched mask/aggregate paths must equal the scalar ring folds exactly."""

    def test_mask_payload_matches_sequential_reference(self, dh_params):
        # Reference: the pre-vectorization per-peer loop, folded one codec op
        # at a time in canonical peer order.
        owners = ["a", "b", "c", "d"]
        codec = FixedPointCodec()
        keypairs, public_keys, weights = _build_cohort(dh_params, owners, dimension=33)
        for owner in owners:
            masker = PairwiseMasker(owner, keypairs[owner], public_keys, codec=codec)
            expected = codec.encode(np.asarray(weights[owner]).ravel())
            for peer in masker.peers:
                pair_mask = masker._pair_mask(peer, 3, weights[owner].size)
                if peer > owner:
                    expected = codec.add(expected, pair_mask)
                else:
                    expected = codec.subtract(expected, pair_mask)
            payload = masker.mask(weights[owner], round_number=3).payload
            assert np.array_equal(payload, expected)

    def test_mask_without_peers_is_plain_encoding(self, dh_params):
        codec = FixedPointCodec()
        keypairs, _, weights = _build_cohort(dh_params, ["a"], dimension=9)
        masker = PairwiseMasker("a", keypairs["a"], {}, codec=codec)
        payload = masker.mask(weights["a"], round_number=0).payload
        assert np.array_equal(payload, codec.encode(weights["a"]))

    def test_aggregate_sum_matches_sequential_codec_add(self, dh_params):
        owners = ["a", "b", "c", "d", "e"]
        updates, _, codec = _masked_updates(dh_params, owners, dimension=21)
        total = np.zeros(21, dtype=np.uint64)
        for update in updates:
            total = codec.add(total, update.payload)
        expected = codec.decode_sum(total, n_summands=len(updates))
        assert np.array_equal(SecureAggregator(codec).aggregate_sum(updates), expected)

    def test_sum_encoded_matches_fold_in_narrow_field(self):
        codec = FixedPointCodec(precision_bits=16, field_bits=32)
        rng = np.random.default_rng(8)
        stack = rng.integers(0, codec.modulus, size=(7, 15), dtype=np.uint64)
        expected = np.zeros(15, dtype=np.uint64)
        for row in stack:
            expected = codec.add(expected, row)
        assert np.array_equal(codec.sum_encoded(stack), expected)

    def test_sum_encoded_rejects_non_stack(self):
        with pytest.raises(ValidationError):
            FixedPointCodec().sum_encoded(np.zeros(4, dtype=np.uint64))
