"""Tests for the versioned Merkle state store (tentpole of the state-layer refactor).

Four properties are pinned here:

* **Incremental == full recompute** — under randomized op sequences (writes,
  deletes, rollbacks) the incrementally maintained v2 Merkle root always
  equals the root a fresh store computes from the final data.
* **Historical views == genesis replay** — ``state_at(h)`` reads exactly the
  state a prefix replay produces at every height, and
  ``verify_version_roots`` certifies every committed header.
* **v1 byte-identity** — ``state_root_version=1`` stores and chains hash byte
  for byte like the pre-Merkle code (hard-coded digests generated from it).
* **Proof soundness** — an entry's inclusion proof verifies against the
  committed header root, and any tampering (value, key, root) fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import CounterContract, counter_runtime_factory, counter_tx
from repro.blockchain.chain import Blockchain
from repro.blockchain.contracts.base import Contract, ContractContext, ContractRuntime, contract_method
from repro.blockchain.state import (
    N_STATE_BUCKETS,
    StateProof,
    WorldState,
    verify_state_proof,
)
from repro.blockchain.transaction import Transaction
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import RoundScheduler
from repro.core.protocol import BlockchainFLProtocol
from repro.exceptions import ChainValidationError, ValidationError
from repro.utils.serialization import canonical_dumps

# Digests generated with the pre-Merkle WorldState/Blockchain (the seed code):
# state_root_version=1 must keep them byte for byte.
PINNED_V1_STATE_ROOT = "7f288a43225362fedd6eb904e72d2987356574012375ff2f8af9febe0927be17"
PINNED_V1_EMPTY_ROOT = "44136fa355b3678a1146ad16f7e8649e94fb4fc21fe77e8310c060f61caaff8a"
PINNED_V1_GENESIS = "fe6e3fb83124cd4d0cbad9e86e4c41134e5eb2e935ea89dbe72243e985191cd3"
PINNED_V1_BLOCK_1 = "c742471e049ab24ec6aa51b28c70c87be8ab1faf60d0adf08cee6b706d6b6434"
PINNED_V1_BLOCK_2 = "46e3724decdf158b288d788cd57822b5e007af1e8b98deec7475e178c68eccf9"
PINNED_V1_HEAD_STATE = "1f09a60c01bffb5ff612bda0780913771d38ca1cfcdcb3512343d405a173abe9"


def _pinned_state(root_version: int = 1) -> WorldState:
    state = WorldState(root_version=root_version)
    state.set("registry", "protocol_params", {"n_owners": 4, "n_groups": 2})
    state.set("registry", "participant/owner-1", {"public_key": 12345, "role": "owner"})
    state.set("fl_training", "round/0", {"groups": [["owner-1"]], "global_model": [0.5, -1.25]})
    state.set("contribution", "totals", {"owner-1": 0.125})
    state.set("weights", "w", np.arange(6, dtype=np.float64).reshape(2, 3))
    return state


def _random_ops(state: WorldState, rng: np.random.Generator, n_ops: int) -> None:
    """Apply a random mix of writes, deletes, and snapshot/rollback windows."""
    namespaces = ["alpha", "beta", "gamma"]
    for _ in range(n_ops):
        namespace = namespaces[int(rng.integers(len(namespaces)))]
        key = f"k{int(rng.integers(40)):02d}"
        action = rng.random()
        if action < 0.55:
            state.set(namespace, key, {"v": float(rng.random()), "n": int(rng.integers(100))})
        elif action < 0.75:
            state.delete(namespace, key)
        else:
            marker = state.snapshot()
            state.set(namespace, key, [int(x) for x in rng.integers(10, size=3)])
            if rng.random() < 0.5:
                state.restore(marker)


class TestIncrementalRootEqualsFullRecompute:
    def test_randomized_op_sequences(self):
        rng = np.random.default_rng(7)
        state = WorldState(root_version=2)
        for _ in range(12):
            _random_ops(state, rng, n_ops=30)
            incremental = state.state_root()
            full = WorldState(state.raw(), root_version=2).state_root()
            assert incremental == full

    def test_root_independent_of_write_history(self):
        a = WorldState(root_version=2)
        a.set("ns", "k1", 1)
        a.set("ns", "k2", 2)
        a.set("ns", "k1", 3)
        a.delete("ns", "k2")
        b = WorldState(root_version=2)
        b.set("ns", "k1", 3)
        assert a.state_root() == b.state_root()

    def test_emptied_namespace_matches_fresh_store(self):
        a = WorldState(root_version=2)
        a.set("gone", "k", 1)
        a.set("kept", "k", 2)
        a.delete("gone", "k")
        b = WorldState(root_version=2)
        b.set("kept", "k", 2)
        assert a.state_root() == b.state_root()

    def test_empty_stores_agree_across_versions_only_with_themselves(self):
        assert WorldState(root_version=1).state_root() == PINNED_V1_EMPTY_ROOT
        assert WorldState(root_version=2).state_root() != PINNED_V1_EMPTY_ROOT

    def test_copy_shares_no_mutable_root_state(self):
        state = WorldState(root_version=2)
        state.set("ns", "a", 1)
        root = state.state_root()
        clone = state.copy()
        clone.set("ns", "a", 2)
        assert state.state_root() == root
        assert clone.state_root() != root
        assert WorldState(clone.raw(), root_version=2).state_root() == clone.state_root()

    def test_bucket_collisions_keep_roots_consistent(self):
        # Far more keys than buckets forces multi-leaf buckets.
        state = WorldState(root_version=2)
        for i in range(3 * N_STATE_BUCKETS // 2):
            state.set("bulk", f"key-{i:05d}", i)
        assert state.state_root() == WorldState(state.raw(), root_version=2).state_root()


class TestV1ByteIdentity:
    def test_pinned_state_root(self):
        assert _pinned_state(1).state_root() == PINNED_V1_STATE_ROOT

    def test_pinned_chain_hashes(self):
        chain = Blockchain(counter_runtime_factory)
        chain.propose_block("alice", [counter_tx("alice", 0, 5), counter_tx("bob", 0, 7)])
        chain.propose_block("bob", [counter_tx("alice", 1, 2)])
        assert chain.blocks[0].block_hash == PINNED_V1_GENESIS
        assert chain.blocks[1].block_hash == PINNED_V1_BLOCK_1
        assert chain.blocks[2].block_hash == PINNED_V1_BLOCK_2
        assert chain.state.state_root() == PINNED_V1_HEAD_STATE

    def test_v2_diverges_from_v1(self):
        assert _pinned_state(2).state_root() != PINNED_V1_STATE_ROOT


class RandomWriterContract(Contract):
    """Writes a deterministic pseudo-random batch of keys per call (test only)."""

    name = "writer"

    @contract_method
    def scribble(self, ctx: ContractContext, seed: int) -> int:
        rng = np.random.default_rng(int(seed))
        for _ in range(8):
            key = f"cell/{int(rng.integers(30)):02d}"
            if rng.random() < 0.25 and ctx.contains(key):
                ctx.delete(key)
            else:
                ctx.set(key, {"seed": int(seed), "v": float(rng.random())})
        return int(seed)


def _writer_runtime() -> ContractRuntime:
    runtime = ContractRuntime()
    runtime.register(RandomWriterContract())
    runtime.register(CounterContract())
    return runtime


def _writer_chain(root_version: int, n_blocks: int = 6) -> Blockchain:
    chain = Blockchain(_writer_runtime, state_root_version=root_version)
    for height in range(1, n_blocks + 1):
        txs = [
            Transaction(
                sender="alice", contract="writer", method="scribble",
                args={"seed": height * 10 + 1}, nonce=chain.next_nonce("alice"),
            ),
            Transaction(
                sender="bob", contract="writer", method="scribble",
                args={"seed": height * 10 + 2}, nonce=chain.next_nonce("bob"),
            ),
        ]
        chain.propose_block(f"owner-{height % 2}", txs)
    return chain


@pytest.mark.parametrize("root_version", [1, 2])
class TestHistoricalViewsMatchReplay:
    def test_state_at_equals_prefix_replay_at_every_height(self, root_version):
        chain = _writer_chain(root_version)
        # Genesis replay prefix by prefix: the view at height h must read the
        # exact state a replica that stopped at block h would hold.
        prefix = Blockchain(_writer_runtime, state_root_version=root_version)
        assert chain.state_at(0).raw() == prefix.state.raw()
        for block in chain.blocks[1:]:
            prefix.verify_and_append(block)
            view = chain.state_at(block.height)
            assert view.raw() == prefix.state.raw()
            assert view.state_root() == block.header.state_root

    def test_verify_version_roots_covers_every_block(self, root_version):
        chain = _writer_chain(root_version)
        assert chain.verify_version_roots() == list(range(chain.height, -1, -1))

    def test_verify_version_roots_detects_divergence(self, root_version):
        chain = _writer_chain(root_version)
        chain.state.set("writer", "cell/00", {"seed": -1, "v": 999.0})  # post-commit tamper
        with pytest.raises(ChainValidationError):
            chain.verify_version_roots()

    def test_fast_sync_matches_replay(self, root_version):
        chain = _writer_chain(root_version)
        synced = Blockchain(_writer_runtime, state_root_version=root_version)
        synced.fast_sync_from(chain)
        replayed = chain.replay()
        assert synced.state.raw() == replayed.state.raw()
        assert synced.state.state_root() == replayed.state.state_root()
        assert [b.block_hash for b in synced.blocks] == [b.block_hash for b in chain.blocks]
        assert synced.next_nonce("alice") == replayed.next_nonce("alice")
        # The synced replica keeps participating: it can verify the next block.
        extension = chain.clone()
        block = extension.propose_block(
            "owner-1",
            [Transaction(sender="alice", contract="counter", method="increment",
                         args={"amount": 2}, nonce=extension.next_nonce("alice"))],
        )
        synced.verify_and_append(block)
        assert synced.head.block_hash == block.block_hash

    def test_fast_sync_rejects_non_fresh_replica(self, root_version):
        chain = _writer_chain(root_version)
        not_fresh = _writer_chain(root_version, n_blocks=1)
        with pytest.raises(ChainValidationError):
            not_fresh.fast_sync_from(chain)

    def test_failed_fast_sync_leaves_replica_at_genesis_and_retryable(self, root_version):
        tampered = _writer_chain(root_version)
        tampered.state.set("writer", "cell/00", {"seed": -1, "v": 999.0})  # breaks the head root
        fresh = Blockchain(_writer_runtime, state_root_version=root_version)
        with pytest.raises(ChainValidationError):
            fresh.fast_sync_from(tampered)
        # The failed sync committed nothing: still a fresh genesis replica...
        assert fresh.height == 0
        assert len(fresh.state) == 0
        # ...so a retry against an honest peer succeeds.
        honest = _writer_chain(root_version)
        fresh.fast_sync_from(honest)
        assert fresh.head.block_hash == honest.head.block_hash


class TestStateViewReads:
    def test_view_reflects_later_deletes_and_writes(self):
        chain = Blockchain(_writer_runtime, state_root_version=2)
        tx0 = Transaction(sender="a", contract="counter", method="increment",
                          args={"amount": 4}, nonce=0)
        chain.propose_block("p", [tx0])
        tx1 = Transaction(sender="a", contract="counter", method="increment",
                          args={"amount": 6}, nonce=1)
        chain.propose_block("p", [tx1])
        assert chain.state_at(0).get("counter", "value") is None
        assert not chain.state_at(0).contains("counter", "value")
        assert chain.state_at(1).get("counter", "value") == 4
        assert chain.state_at(2).get("counter", "value") == 10
        assert chain.state_at(1).keys("counter") == ["value"]
        assert list(chain.state_at(1).items("counter")) == [("value", 4)]
        assert len(chain.state_at(0)) == 0
        assert len(chain.state_at(1)) == 1

    def test_view_get_returns_copies(self):
        chain = _writer_chain(2, n_blocks=3)
        view = chain.state_at(1)
        key = view.keys("writer")[0]
        value = view.get("writer", key)
        original = view.get("writer", key)
        value["v"] = -1.0
        assert view.get("writer", key) == original != value

    def test_view_rejects_unsealed_heights(self):
        chain = _writer_chain(2, n_blocks=2)
        with pytest.raises(ChainValidationError):
            chain.state_at(3)
        with pytest.raises(ChainValidationError):
            chain.state_at(-1)


class TestProofs:
    def test_roundtrip_and_serialization(self):
        state = _pinned_state(2)
        root = state.state_root()
        for namespace, key in [
            ("registry", "protocol_params"),
            ("fl_training", "round/0"),
            ("contribution", "totals"),
            ("weights", "w"),
        ]:
            proof = state.prove(namespace, key)
            assert proof.root == root
            assert verify_state_proof(root, proof)
            assert verify_state_proof(root, proof, value=state.get(namespace, key))
            restored = StateProof.from_dict(proof.to_dict())
            assert verify_state_proof(root, restored, value=state.get(namespace, key))

    def test_tampered_value_fails(self):
        state = _pinned_state(2)
        root = state.state_root()
        proof = state.prove("contribution", "totals")
        assert not verify_state_proof(root, proof, value={"owner-1": 0.999})

    def test_wrong_root_fails(self):
        state = _pinned_state(2)
        proof = state.prove("contribution", "totals")
        assert not verify_state_proof("00" * 32, proof, value={"owner-1": 0.125})

    def test_transplanted_key_fails(self):
        state = _pinned_state(2)
        root = state.state_root()
        proof = state.prove("contribution", "totals")
        forged = StateProof.from_dict({**proof.to_dict(), "key": "totals-forged"})
        assert not verify_state_proof(root, forged)

    def test_proofs_under_bucket_collisions(self):
        state = WorldState(root_version=2)
        n_keys = 2 * N_STATE_BUCKETS
        for i in range(n_keys):
            state.set("bulk", f"key-{i:05d}", {"i": i})
        root = state.state_root()
        for i in (0, 1, n_keys // 2, n_keys - 1):
            proof = state.prove("bulk", f"key-{i:05d}")
            assert verify_state_proof(root, proof, value={"i": i})
            assert not verify_state_proof(root, proof, value={"i": i + 1})

    def test_malformed_proof_payloads_raise_validation_error(self):
        state = _pinned_state(2)
        payload = state.prove("contribution", "totals").to_dict()
        for broken in (
            {**payload, "bucket_index": "abc"},          # ValueError in int()
            {k: v for k, v in payload.items() if k != "root"},  # KeyError
            {**payload, "bucket_siblings": 3},            # TypeError in iteration
        ):
            with pytest.raises(ValidationError):
                StateProof.from_dict(broken)

    def test_v1_store_refuses_to_prove(self):
        state = _pinned_state(1)
        with pytest.raises(ValidationError):
            state.prove("contribution", "totals")

    def test_missing_key_refuses_to_prove(self):
        with pytest.raises(ValidationError):
            _pinned_state(2).prove("contribution", "nothing")


# ----------------------------------------------------------------------
# Protocol-level integration: a v2 chain end to end
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def v2_protocol_run(dataset, owners):
    """A completed protocol run on a Merkle-rooted (state_root_version=2) chain."""
    config = ProtocolConfig(
        n_owners=len(owners),
        n_groups=2,
        n_rounds=2,
        local_epochs=3,
        learning_rate=2.0,
        permutation_seed=13,
        state_root_version=2,
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    scheduler = RoundScheduler(protocol)
    result = scheduler.run()
    return protocol, result, scheduler


class TestProtocolChainV2:
    def test_registry_pins_the_root_version(self, v2_protocol_run):
        protocol, _, _ = v2_protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        params = chain.state.get("registry", "protocol_params")
        assert int(params["state_root_version"]) == 2

    def test_round_contexts_record_their_committed_header(self, v2_protocol_run):
        protocol, _, scheduler = v2_protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        assert scheduler.contexts, "the scheduler kept no round contexts"
        for ctx in scheduler.contexts:
            height = ctx.metadata["block_height"]
            header = chain.blocks[height].header
            assert ctx.metadata["state_root"] == header.state_root
            # The recorded header commits the round's published entries: the
            # evaluation record is provable against exactly that state root.
            view = chain.state_at(height)
            assert view.get("contribution", f"evaluation/{ctx.round_number}") is not None

    def test_all_replicas_agree_and_replay_matches(self, v2_protocol_run):
        protocol, _, _ = v2_protocol_run
        roots = {p.node.chain.state.state_root() for p in protocol.participants.values()}
        assert len(roots) == 1
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        assert chain.replay().state.state_root() == chain.state.state_root()

    def test_settlement_proof_verifies_against_committed_header(self, v2_protocol_run, dataset):
        protocol, result, _ = v2_protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        header_root = chain.head.header.state_root
        settlement = chain.state.get("reward", "distribution/final")
        proof = chain.state.prove("reward", "distribution/final")
        assert verify_state_proof(header_root, proof, value=settlement)
        # A participant checking its own published totals needs only the header.
        totals = chain.state.get("contribution", "totals")
        totals_proof = chain.state.prove("contribution", "totals")
        assert verify_state_proof(header_root, totals_proof, value=totals)
        assert totals == pytest.approx(result.total_contributions)

    def test_tampered_settlement_entry_fails_the_proof(self, v2_protocol_run):
        protocol, _, _ = v2_protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        header_root = chain.head.header.state_root
        settlement = chain.state.get("reward", "distribution/final")
        proof = chain.state.prove("reward", "distribution/final")
        tampered = dict(settlement)
        first_owner = sorted(tampered["payouts"])[0]
        tampered["payouts"] = {**tampered["payouts"], first_owner: 10_000.0}
        assert not verify_state_proof(header_root, proof, value=tampered)

    def test_incremental_audit_matches_replay_audit(self, v2_protocol_run, dataset):
        protocol, _, _ = v2_protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        replay = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes, mode="replay"
        )
        incremental = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes, mode="incremental"
        )
        assert replay.passed and incremental.passed
        assert incremental.rounds_checked == replay.rounds_checked
        assert incremental.recomputed_totals == pytest.approx(replay.recomputed_totals)
        assert incremental.state_versions_checked == list(range(chain.height, -1, -1))

    def test_audit_flags_replica_on_the_wrong_root_version(self, v2_protocol_run, dataset):
        protocol, _, _ = v2_protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        # A replica configured for a different commitment than the chain
        # pinned at setup must fail the audit's consensus-parameter check.
        imposter = chain.clone()
        imposter.state_root_version = 1
        report = audit_chain(
            imposter, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode="incremental",
        )
        assert not report.passed
        assert any("state_root_version" in m for m in report.mismatches)

    def test_fast_synced_joiner_matches_replay_sync(self, v2_protocol_run, dataset):
        from repro.datasets.loader import OwnerDataset

        protocol, _, _ = v2_protocol_run
        reference = protocol.participants[protocol.owner_ids[0]].node.chain
        rng = np.random.default_rng(5)
        template = protocol.participants[protocol.owner_ids[0]].client
        def newcomer(owner_id: str) -> OwnerDataset:
            return OwnerDataset(
                owner_id=owner_id,
                features=rng.normal(size=(20, template.features.shape[1])),
                labels=rng.integers(0, dataset.n_classes, size=20),
                noise_sigma=0.0,
            )

        fast = protocol._build_participant(newcomer("owner-late-fast"))
        fast.node.chain.fast_sync_from(reference)
        slow = protocol._build_participant(newcomer("owner-late-slow"))
        for block in reference.blocks[1:]:
            slow.node.chain.verify_and_append(block)
        assert fast.node.chain.state.state_root() == slow.node.chain.state.state_root()
        assert canonical_dumps(fast.node.chain.state.raw()) == canonical_dumps(slow.node.chain.state.raw())
        assert fast.node.chain._nonces == slow.node.chain._nonces


class TestIncrementalAuditOnV1Chain:
    def test_verdicts_match_replay_on_the_default_chain(self, protocol_run, dataset):
        protocol, _ = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        replay = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes, mode="replay"
        )
        incremental = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes, mode="incremental"
        )
        assert replay.passed and incremental.passed
        assert incremental.rounds_checked == replay.rounds_checked
        assert incremental.recomputed_totals == pytest.approx(replay.recomputed_totals)


class TestAdaptiveBucketing:
    """STATE_ROOT_V3: per-namespace layouts widen as a pure function of size."""

    def test_v3_matches_v2_below_the_resize_threshold(self):
        # Up to TARGET_KEYS_PER_BUCKET keys per bucket the layout is the fixed
        # 1024-bucket grid, so v2 and v3 roots are identical digest for digest.
        a, b = WorldState(root_version=2), WorldState(root_version=3)
        for i in range(500):
            for state in (a, b):
                state.set("ns", f"key-{i:04d}", {"i": i})
        assert a.state_root() == b.state_root()
        a.set("other", "k", 1)
        b.set("other", "k", 1)
        assert a.state_root() == b.state_root()

    def test_root_is_a_pure_function_of_content_across_resizes(self):
        n = 4 * N_STATE_BUCKETS + 500  # crosses the first widening threshold
        grown = WorldState(root_version=3)
        for i in range(n):
            grown.set("bulk", f"key-{i:05d}", i)
        fresh = WorldState(grown.raw(), root_version=3)
        assert grown.state_root() == fresh.state_root()
        # Shrinking back below the threshold returns to the narrow layout root.
        for i in range(500, n):
            grown.delete("bulk", f"key-{i:05d}")
        small = WorldState(root_version=3)
        for i in range(500):
            small.set("bulk", f"key-{i:05d}", i)
        assert grown.state_root() == small.state_root()

    def test_rollback_across_a_resize_boundary(self):
        state = WorldState(root_version=3)
        for i in range(100):
            state.set("bulk", f"key-{i:05d}", i)
        narrow_root = state.state_root()
        marker = state.snapshot()
        for i in range(100, 4 * N_STATE_BUCKETS + 200):
            state.set("bulk", f"key-{i:05d}", i)
        assert state.state_root() != narrow_root
        state.restore(marker)
        assert state.state_root() == narrow_root

    def test_proofs_verify_at_wide_layouts(self):
        state = WorldState(root_version=3)
        n = 4 * N_STATE_BUCKETS + 300
        for i in range(n):
            state.set("bulk", f"key-{i:05d}", {"i": i})
        root = state.state_root()
        for key in ("key-00000", f"key-{n - 1:05d}", f"key-{n // 2:05d}"):
            proof = state.prove("bulk", key)
            assert proof.n_buckets > N_STATE_BUCKETS
            payload = proof.to_dict()
            assert verify_state_proof(root, StateProof.from_dict(payload))
        # Narrow-layout proofs keep the historical v2 payload shape.
        state.set("tiny", "k", 1)
        assert "n_buckets" not in state.prove("tiny", "k").to_dict()

    def test_tampered_wide_proof_fails(self):
        state = WorldState(root_version=3)
        for i in range(4 * N_STATE_BUCKETS + 100):
            state.set("bulk", f"key-{i:05d}", i)
        root = state.state_root()
        payload = state.prove("bulk", "key-00042").to_dict()
        payload["n_buckets"] = payload.get("n_buckets", N_STATE_BUCKETS) * 2
        assert not verify_state_proof(root, StateProof.from_dict(payload))

    def test_v3_chain_commits_and_replays(self):
        chain = _writer_chain(3, n_blocks=4)
        assert chain.verify_version_roots() == [4, 3, 2, 1, 0]
        replica = Blockchain(_writer_runtime, state_root_version=3)
        for block in chain.blocks[1:]:
            replica.verify_and_append(block)
        assert replica.head.block_hash == chain.head.block_hash


class TestVersionPruning:
    def test_prune_versions_drops_below_horizon(self):
        chain = _writer_chain(2, n_blocks=6)
        pruned = chain.state.prune_versions(keep_last=2)
        assert pruned == [0, 1, 2, 3, 4]
        assert chain.state.oldest_retained_version() == 5
        # Unwinding the oldest retained delta still answers one height below
        # the horizon; anything lower needs a pruned delta and refuses.
        for height in (5, 4):
            assert chain.state.view_at(height).state_root() == chain.blocks[height].header.state_root
        with pytest.raises(ValidationError, match="not retained"):
            chain.state.view_at(3)

    def test_prune_is_idempotent_and_bounded(self):
        chain = _writer_chain(2, n_blocks=4)
        assert chain.state.prune_versions(keep_last=3) == [0, 1]
        assert chain.state.prune_versions(keep_last=3) == []
        with pytest.raises(ValidationError):
            chain.state.prune_versions(keep_last=0)
