"""Tests for the staged round pipeline and its scenario hooks.

The key property: scenario orchestration (dropout recovery, straggler delays,
rejected adversarial submissions) changes *when* things happen off chain but
never *what* lands on chain — every recovered scenario run commits exactly the
blocks (hashes included) of an undisturbed run, and the pipeline itself
reproduces the pre-refactor monolithic loop's chain byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.transaction import Transaction
from repro.core.adversary import AdversaryBehavior
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import (
    AdversarialSubmissionScenario,
    AdversaryInjectionScenario,
    ComposedScenario,
    DropoutScenario,
    LateJoinScenario,
    RoundScheduler,
    Scenario,
    StragglerScenario,
)
from repro.core.protocol import BlockchainFLProtocol
from repro.exceptions import RoundError
from repro.shapley.group import group_members, make_groups


def build_protocol(dataset, owners, **config_overrides):
    """A fresh protocol instance over the shared small setup."""
    settings = dict(
        n_owners=len(owners),
        n_groups=2,
        n_rounds=2,
        local_epochs=2,
        learning_rate=2.0,
        permutation_seed=13,
    )
    settings.update(config_overrides)
    config = ProtocolConfig(**settings)
    return BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )


def chain_fingerprint(protocol):
    """Every block's identity: height, hash, and resulting state root."""
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    return [(block.height, block.block_hash, block.header.state_root) for block in chain.blocks]


def legacy_run(protocol):
    """The pre-pipeline monolithic loop, reproduced verbatim for receipt pins.

    This mirrors the historical ``BlockchainFLProtocol.run`` implementation:
    submissions gossiped one owner at a time in sorted order, then the two
    closing calls, one consensus round per training round, and a final reward
    block.
    """
    protocol.setup()
    global_parameters = protocol._template_parameters
    for round_number in range(protocol.config.n_rounds):
        groups = make_groups(
            protocol.owner_ids, protocol.config.n_groups,
            protocol.config.permutation_seed, round_number,
        )
        membership = group_members(groups)
        for owner_id in protocol.owner_ids:
            participant = protocol.participants[owner_id]
            local_parameters = participant.train_local(global_parameters, round_number)
            group_id = membership[owner_id]
            tx = participant.masked_update_transaction(
                local_parameters, round_number,
                group=list(groups[group_id]), group_id=group_id,
                nonce=protocol._next_nonce(owner_id),
            )
            protocol._submit(tx)
        closer = protocol.owner_ids[round_number % len(protocol.owner_ids)]
        for contract, method in (("fl_training", "finalize_round"), ("contribution", "evaluate_round")):
            protocol._submit(Transaction(
                sender=closer, contract=contract, method=method,
                args={"round_number": round_number}, nonce=protocol._next_nonce(closer),
            ))
        protocol._commit_block()
        chain = protocol._reference_chain()
        record = chain.state.get("fl_training", f"round/{round_number}")
        global_parameters = protocol._template_parameters.from_vector(
            np.asarray(record["global_model"], dtype=np.float64)
        )
    protocol._submit(Transaction(
        sender=protocol.owner_ids[0], contract="reward", method="distribute",
        args={"reward_pool": protocol.config.reward_pool, "label": "final"},
        nonce=protocol._next_nonce(protocol.owner_ids[0]),
    ))
    protocol._commit_block()


class TestPipelineReceiptParity:
    def test_pipeline_reproduces_the_legacy_loop_byte_for_byte(self, dataset, owners):
        reference = build_protocol(dataset, owners)
        legacy_run(reference)

        pipeline = build_protocol(dataset, owners)
        pipeline.run()

        assert chain_fingerprint(pipeline) == chain_fingerprint(reference)

    def test_dropout_recovery_commits_identical_blocks(self, dataset, owners):
        plain = build_protocol(dataset, owners)
        plain_result = plain.run()

        disturbed = build_protocol(dataset, owners)
        dropped = sorted(o.owner_id for o in owners)[1]
        scheduler = RoundScheduler(disturbed, DropoutScenario(dropped, round_number=0, offline_ticks=2))
        disturbed_result = scheduler.run()

        assert chain_fingerprint(disturbed) == chain_fingerprint(plain)
        assert disturbed_result.total_contributions == plain_result.total_contributions
        assert scheduler.contexts[0].ticks_waited == 2
        assert scheduler.contexts[0].withheld == {}  # recovered
        assert scheduler.contexts[1].ticks_waited == 0  # only round 0 was disturbed

    def test_straggler_within_timeout_commits_identical_blocks(self, dataset, owners):
        plain = build_protocol(dataset, owners)
        plain.run()

        disturbed = build_protocol(dataset, owners)
        straggler = sorted(o.owner_id for o in owners)[-1]
        scheduler = RoundScheduler(disturbed, StragglerScenario(straggler, delay_ticks=3))
        scheduler.run()

        assert chain_fingerprint(disturbed) == chain_fingerprint(plain)
        assert all(ctx.ticks_waited == 3 for ctx in scheduler.contexts)

    def test_rejected_adversarial_claim_commits_identical_blocks(self, dataset, owners):
        plain = build_protocol(dataset, owners)
        plain_result = plain.run()

        disturbed = build_protocol(dataset, owners)
        liar = sorted(o.owner_id for o in owners)[0]
        scenario = AdversarialSubmissionScenario(liar)
        scheduler = RoundScheduler(disturbed, scenario)
        disturbed_result = scheduler.run()

        assert chain_fingerprint(disturbed) == chain_fingerprint(plain)
        assert disturbed_result.reward_balances == plain_result.reward_balances
        rejections = [r for ctx in scheduler.contexts for r in ctx.rejections]
        assert len(rejections) == disturbed.config.n_rounds
        assert all(r.owner_id == liar for r in rejections)
        assert all("claims group" in r.reason for r in rejections)

    def test_composed_scenarios_commit_identical_blocks(self, dataset, owners):
        plain = build_protocol(dataset, owners)
        plain.run()

        ids = sorted(o.owner_id for o in owners)
        disturbed = build_protocol(dataset, owners)
        scenario = ComposedScenario([
            DropoutScenario(ids[1], round_number=1, offline_ticks=1),
            StragglerScenario(ids[2], delay_ticks=2, rounds=[0]),
            AdversarialSubmissionScenario(ids[0], rounds=[0]),
        ])
        RoundScheduler(disturbed, scenario).run()

        assert chain_fingerprint(disturbed) == chain_fingerprint(plain)


class TestTimeoutAndFailure:
    def test_straggler_past_timeout_aborts_without_touching_the_chain(self, dataset, owners):
        protocol = build_protocol(dataset, owners)
        straggler = sorted(o.owner_id for o in owners)[0]
        scheduler = RoundScheduler(
            protocol, StragglerScenario(straggler, delay_ticks=5), max_wait_ticks=3
        )
        with pytest.raises(RoundError, match="straggler timeout"):
            scheduler.run()
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        # Only genesis + the setup block: the aborted round staged transactions
        # at the barrier but never gossiped them.
        assert chain.height == 1
        assert all(len(p.node.mempool) == 0 for p in protocol.participants.values())

    def test_permanent_dropout_reports_the_missing_owner(self, dataset, owners):
        protocol = build_protocol(dataset, owners)
        gone = sorted(o.owner_id for o in owners)[2]

        class PermanentDropout(Scenario):
            def withhold_submission(self, ctx, owner_id):
                return "dropout" if owner_id == gone else None

        with pytest.raises(RoundError, match=gone):
            RoundScheduler(protocol, PermanentDropout(), max_wait_ticks=2).run()


class TestScenarioSemantics:
    def test_late_joiner_earns_less_than_full_participation(self, dataset, owners):
        joiner = sorted(o.owner_id for o in owners)[0]

        # Singleton groups give per-owner contribution resolution, so the
        # missing round of signal shows up directly in the joiner's total.
        full = build_protocol(dataset, owners, n_groups=len(owners)).run()
        late = build_protocol(dataset, owners, n_groups=len(owners)).run(
            LateJoinScenario(joiner, join_round=1)
        )

        assert late.total_contributions[joiner] < full.total_contributions[joiner]
        # The other owners' relative ordering is still produced and settled.
        assert set(late.total_contributions) == set(full.total_contributions)

    def test_scenario_injection_matches_participant_level_adversaries(self, dataset, owners):
        attacker = sorted(o.owner_id for o in owners)[1]
        behavior = AdversaryBehavior(kind="noise", magnitude=3.0, seed=5)

        via_participant = build_protocol(dataset, owners)
        participant_protocol = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
            via_participant.config, adversaries={attacker: behavior},
        )
        participant_protocol.run()

        via_scenario = build_protocol(dataset, owners)
        via_scenario.run(AdversaryInjectionScenario({attacker: behavior}))

        assert chain_fingerprint(via_scenario) == chain_fingerprint(participant_protocol)

    def test_windowed_injection_only_tampers_inside_the_window(self, dataset, owners):
        attacker = sorted(o.owner_id for o in owners)[1]
        behavior = AdversaryBehavior(kind="zero")

        windowed = build_protocol(dataset, owners)
        scheduler = RoundScheduler(
            windowed, AdversaryInjectionScenario({attacker: behavior}, start_round=1)
        )
        scheduler.run()
        round0, round1 = scheduler.contexts
        assert np.any(round0.local_models[attacker].to_vector() != 0.0)
        assert np.all(round1.local_models[attacker].to_vector() == 0.0)

    def test_contexts_expose_the_round_state(self, dataset, owners):
        protocol = build_protocol(dataset, owners)
        scheduler = RoundScheduler(protocol)
        scheduler.run()
        assert len(scheduler.contexts) == protocol.config.n_rounds
        for ctx in scheduler.contexts:
            assert set(ctx.local_models) == set(protocol.owner_ids)
            assert set(ctx.submissions) == set(protocol.owner_ids)
            assert ctx.missing_owners() == []
            assert ctx.result is not None
            assert ctx.result.consensus.accepted
            # finalize + evaluate staged by the closing stages
            assert [tx.method for tx in ctx.closing_transactions] == [
                "finalize_round", "evaluate_round",
            ]


class TestVersionedAssembly:
    def test_v2_assembly_run_matches_v1_and_passes_audit(self, dataset, owners):
        v1 = build_protocol(dataset, owners, sv_assembly_version=1).run()

        protocol_v2 = build_protocol(dataset, owners, sv_assembly_version=2)
        v2 = protocol_v2.run()

        for owner, value in v1.total_contributions.items():
            assert v2.total_contributions[owner] == pytest.approx(value, abs=1e-9)

        chain = protocol_v2.participants[protocol_v2.owner_ids[0]].node.chain
        pinned = chain.state.get("registry", "protocol_params")
        assert pinned["sv_assembly_version"] == 2
        report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
        assert report.passed

    def test_v2_chain_replays_on_every_replica(self, dataset, owners):
        protocol = build_protocol(dataset, owners, sv_assembly_version=2)
        protocol.run()
        roots = {p.node.chain.state.state_root() for p in protocol.participants.values()}
        assert len(roots) == 1

    def test_unknown_version_rejected(self, dataset, owners):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProtocolConfig(n_owners=len(owners), sv_assembly_version=3)


class TestAbortRecovery:
    def test_aborted_round_rewinds_nonces_so_a_retry_succeeds(self, dataset, owners):
        protocol = build_protocol(dataset, owners)
        straggler = sorted(o.owner_id for o in owners)[0]
        with pytest.raises(RoundError, match="straggler timeout"):
            RoundScheduler(
                protocol, StragglerScenario(straggler, delay_ticks=9), max_wait_ticks=2
            ).run()

        # The abort consumed no on-chain nonces, so the same protocol object
        # can simply be re-run — and commits the chain a plain run would.
        retry_result = RoundScheduler(protocol).run()

        plain = build_protocol(dataset, owners)
        plain_result = plain.run()
        assert chain_fingerprint(protocol) == chain_fingerprint(plain)
        assert retry_result.total_contributions == plain_result.total_contributions

    def test_composed_withhold_reasons_do_not_cross_deliver(self, dataset, owners):
        target = sorted(o.owner_id for o in owners)[1]
        protocol = build_protocol(dataset, owners)
        # The dropout (4 ticks) withholds first; the straggler's earlier
        # 1-tick schedule must NOT end the dropout outage early.
        scenario = ComposedScenario([
            DropoutScenario(target, round_number=0, offline_ticks=4),
            StragglerScenario(target, delay_ticks=1, rounds=[0]),
        ])
        scheduler = RoundScheduler(protocol, scenario)
        scheduler.run()
        assert scheduler.contexts[0].ticks_waited == 4

        plain = build_protocol(dataset, owners)
        plain.run()
        assert chain_fingerprint(protocol) == chain_fingerprint(plain)


class TestManyGroups:
    def test_eleven_singleton_groups_evaluate_on_chain(self, ):
        # Regression: "group-10" sorts lexicographically before "group-2", so
        # the contract's grand-coalition lookup must use the sorted key.
        from repro.datasets.loader import make_owner_datasets

        dataset, owners = make_owner_datasets(n_owners=11, sigma=0.1, n_samples=550, seed=23)
        config = ProtocolConfig(
            n_owners=11, n_groups=11, n_rounds=1, local_epochs=1,
            learning_rate=2.0, permutation_seed=23,
        )
        protocol = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
        )
        result = protocol.run()
        assert len(result.rounds) == 1
        assert set(result.total_contributions) == {o.owner_id for o in owners}
        assert result.rounds[0].global_utility > 0.0
