"""Tests for contract-level dynamic membership (cohort epochs).

Three layers are covered:

* contract level — `request_join` / `request_leave` semantics, round-boundary
  enforcement, the `active_cohort` / `get_epochs` views, and the training
  contract rejecting submissions from inactive owners;
* runtime level — `JoinScenario` / `LeaveScenario` / `ChurnScenario` emitting
  real registry transactions through the pipeline, with per-epoch reward
  settlement and the transparency audit verifying epoch by epoch;
* parity — a run without membership transactions stays byte-identical to the
  fixed-cohort protocol (the settlement path and state layout are unchanged).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.contracts.contribution import ContributionContract
from repro.blockchain.contracts.fl_training import FLTrainingContract
from repro.blockchain.contracts.registry import ParticipantRegistryContract
from repro.blockchain.contracts.reward import RewardContract
from repro.blockchain.state import WorldState
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import ChurnScenario, JoinScenario, LeaveScenario, RoundScheduler
from repro.core.protocol import BlockchainFLProtocol
from repro.crypto.dh import DHKeyPair, DHParameters
from repro.datasets.loader import make_owner_datasets
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ContractError, ProtocolError
from repro.fl.logistic_regression import LogisticRegressionModel

N_CLASSES = 3
N_FEATURES = 6
OWNERS = [f"owner-{i}" for i in range(4)]


# ----------------------------------------------------------------------
# Contract-level harness (no consensus machinery, direct runtime calls)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def validation_set():
    return make_blobs(n_samples=120, n_features=N_FEATURES, n_classes=N_CLASSES, seed=5)


@pytest.fixture(scope="module")
def dh_setup():
    params = DHParameters.for_testing(bits=64, seed="membership-tests")
    keypairs = {owner: DHKeyPair.generate(params, owner) for owner in OWNERS + ["owner-9"]}
    return keypairs, {owner: kp.public_key for owner, kp in keypairs.items()}


def build_runtime(validation_set) -> ContractRuntime:
    features, labels = validation_set
    runtime = ContractRuntime()
    runtime.register(ParticipantRegistryContract())
    runtime.register(FLTrainingContract())
    runtime.register(ContributionContract(features, labels, N_CLASSES))
    runtime.register(RewardContract())
    return runtime


def call(runtime, state, sender, contract, method, **args):
    return runtime.execute(state, sender, contract, method, args)[0]


def model_dimension() -> int:
    return LogisticRegressionModel(N_FEATURES, N_CLASSES).parameters.dimension


def pinned_params(n_owners=len(OWNERS), n_groups=2, n_rounds=6):
    return {
        "n_owners": n_owners,
        "n_groups": n_groups,
        "n_rounds": n_rounds,
        "permutation_seed": 13,
        "precision_bits": 24,
        "field_bits": 64,
        "max_summands": 64,
        "model_dimension": model_dimension(),
    }


def setup_registry(runtime, state, public_keys, **param_overrides):
    call(runtime, state, OWNERS[0], "registry", "set_protocol_params",
         params=pinned_params(**param_overrides))
    for owner in OWNERS:
        call(runtime, state, owner, "registry", "register_participant",
             public_key=public_keys[owner])


class TestRegistrySlotCap:
    def test_non_owner_roles_do_not_consume_owner_slots(self, validation_set, dh_setup):
        """Regression: an auditor/observer registration used to eat an owner slot."""
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        call(runtime, state, OWNERS[0], "registry", "set_protocol_params",
             params=pinned_params(n_owners=2))
        call(runtime, state, "auditor-1", "registry", "register_participant",
             public_key=997, role="auditor")
        call(runtime, state, OWNERS[0], "registry", "register_participant",
             public_key=public_keys[OWNERS[0]])
        # The second owner slot must still be free despite the auditor.
        call(runtime, state, OWNERS[1], "registry", "register_participant",
             public_key=public_keys[OWNERS[1]])
        with pytest.raises(ContractError, match="owner slots"):
            call(runtime, state, OWNERS[2], "registry", "register_participant",
                 public_key=public_keys[OWNERS[2]])
        # More non-owner roles stay welcome after the owner slots filled up.
        call(runtime, state, "auditor-2", "registry", "register_participant",
             public_key=991, role="auditor")
        assert call(runtime, state, OWNERS[0], "registry", "is_setup_complete")

    def test_setup_incomplete_until_owner_slots_fill(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        call(runtime, state, OWNERS[0], "registry", "set_protocol_params",
             params=pinned_params(n_owners=2))
        call(runtime, state, "auditor-1", "registry", "register_participant",
             public_key=997, role="auditor")
        call(runtime, state, OWNERS[0], "registry", "register_participant",
             public_key=public_keys[OWNERS[0]])
        # One auditor + one owner: two index entries, but only one owner slot used.
        assert not call(runtime, state, OWNERS[0], "registry", "is_setup_complete")


class TestMembershipTransitions:
    def test_join_and_leave_take_effect_at_round_boundaries(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys)

        call(runtime, state, "owner-9", "registry", "request_join",
             public_key=public_keys["owner-9"], effective_round=2)
        call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=4)

        def cohort(round_number):
            return call(runtime, state, OWNERS[0], "registry", "get_active_cohort",
                        round_number=round_number)

        assert cohort(0) == sorted(OWNERS)
        assert cohort(1) == sorted(OWNERS)
        assert cohort(2) == sorted(OWNERS + ["owner-9"])
        assert cohort(3) == sorted(OWNERS + ["owner-9"])
        assert cohort(4) == sorted(set(OWNERS + ["owner-9"]) - {OWNERS[1]})

        epochs = call(runtime, state, OWNERS[0], "registry", "get_epochs")
        assert [(e["start"], e["end"]) for e in epochs] == [(0, 2), (2, 4), (4, 6)]
        assert epochs[0]["cohort"] == sorted(OWNERS)
        assert "owner-9" in epochs[1]["cohort"]
        assert OWNERS[1] not in epochs[2]["cohort"]

    def test_membership_changes_must_target_future_rounds(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys)
        # Simulate the training contract having finalized rounds 0..2.
        state.set("fl_training", "latest_round", 2)

        with pytest.raises(ContractError, match="already finalized"):
            call(runtime, state, "owner-9", "registry", "request_join",
                 public_key=public_keys["owner-9"], effective_round=2)
        with pytest.raises(ContractError, match="already finalized"):
            call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=1)
        # Round 3 is still open for changes.
        call(runtime, state, "owner-9", "registry", "request_join",
             public_key=public_keys["owner-9"], effective_round=3)

    def test_join_validations(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys)

        with pytest.raises(ContractError, match="genesis cohort"):
            call(runtime, state, "owner-9", "registry", "request_join",
                 public_key=public_keys["owner-9"], effective_round=0)
        with pytest.raises(ContractError, match="round boundary"):
            call(runtime, state, "owner-9", "registry", "request_join",
                 public_key=public_keys["owner-9"], effective_round=6)
        with pytest.raises(ContractError, match="already an active"):
            call(runtime, state, OWNERS[0], "registry", "request_join",
                 public_key=public_keys[OWNERS[0]], effective_round=2)
        with pytest.raises(ContractError, match="only owner-role"):
            call(runtime, state, "owner-9", "registry", "request_join",
                 public_key=public_keys["owner-9"], effective_round=2, role="auditor")
        # A participant registered under a non-owner role gets a clear
        # rejection, not a bogus "already active" error.
        call(runtime, state, "auditor-1", "registry", "register_participant",
             public_key=997, role="auditor")
        with pytest.raises(ContractError, match="role 'auditor'"):
            call(runtime, state, "auditor-1", "registry", "request_join",
                 public_key=997, effective_round=2)

    def test_leave_cannot_break_grouping(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys, n_groups=3)
        call(runtime, state, OWNERS[0], "registry", "request_leave", effective_round=2)
        # A second leave at the same boundary would leave 2 owners for 3 groups.
        with pytest.raises(ContractError, match="leave rejected"):
            call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=2)

    def test_compounding_leaves_cannot_strand_a_later_round(self, validation_set, dh_setup):
        """Regression: each leave must keep *every* remaining round groupable."""
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys, n_groups=3, n_rounds=8)
        call(runtime, state, OWNERS[0], "registry", "request_leave", effective_round=5)
        # A second, earlier-boundary leave would drop round 5 to 2 owners for
        # 3 groups even though round 3 itself stays feasible.
        with pytest.raises(ContractError, match="round 5 would keep only 2"):
            call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=3)

    def test_dynamic_joins_do_not_consume_genesis_slots(self, validation_set, dh_setup):
        """Regression: a pre-setup join must not lock out a genesis owner."""
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        call(runtime, state, OWNERS[0], "registry", "set_protocol_params",
             params=pinned_params(n_owners=3))
        call(runtime, state, OWNERS[0], "registry", "register_participant",
             public_key=public_keys[OWNERS[0]])
        call(runtime, state, OWNERS[1], "registry", "register_participant",
             public_key=public_keys[OWNERS[1]])
        call(runtime, state, "owner-9", "registry", "request_join",
             public_key=public_keys["owner-9"], effective_round=2)
        # The joiner neither completes setup nor takes the third genesis slot.
        assert not call(runtime, state, OWNERS[0], "registry", "is_setup_complete")
        call(runtime, state, OWNERS[2], "registry", "register_participant",
             public_key=public_keys[OWNERS[2]])
        assert call(runtime, state, OWNERS[0], "registry", "is_setup_complete")

    def test_rejoin_after_leave(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys)
        call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=2)
        with pytest.raises(ContractError, match="already left"):
            call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=4)
        call(runtime, state, OWNERS[1], "registry", "request_join",
             public_key=public_keys[OWNERS[1]], effective_round=4)
        cohort = lambda r: call(  # noqa: E731 - tiny local reader
            runtime, state, OWNERS[0], "registry", "get_active_cohort", round_number=r)
        assert OWNERS[1] not in cohort(2)
        assert OWNERS[1] not in cohort(3)
        assert OWNERS[1] in cohort(4)

    def test_rejoin_at_leave_boundary_cancels_the_leave(self, validation_set, dh_setup):
        """Regression: a boundary rejoin must coalesce, not split the epoch."""
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys)
        call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=3)
        call(runtime, state, OWNERS[1], "registry", "request_join",
             public_key=public_keys[OWNERS[1]], effective_round=3)
        epochs = call(runtime, state, OWNERS[0], "registry", "get_epochs")
        # One epoch, one cohort — no spurious identical-cohort boundary.
        assert [(e["start"], e["end"]) for e in epochs] == [(0, 6)]
        assert state.get("registry", f"membership/{OWNERS[1]}") == [{"from": 0, "until": None}]

    def test_submission_from_inactive_owner_rejected(self, validation_set, dh_setup):
        runtime, state = build_runtime(validation_set), WorldState()
        _, public_keys = dh_setup
        setup_registry(runtime, state, public_keys)
        call(runtime, state, OWNERS[1], "registry", "request_leave", effective_round=1)

        dummy = np.zeros(model_dimension(), dtype=np.uint64)
        with pytest.raises(ContractError, match="not in the round-1 cohort"):
            call(runtime, state, OWNERS[1], "fl_training", "submit_masked_update",
                 round_number=1, group_id=0, payload=dummy)
        # Not-yet-joined owners are rejected the same way.
        call(runtime, state, "owner-9", "registry", "request_join",
             public_key=public_keys["owner-9"], effective_round=3)
        with pytest.raises(ContractError, match="not in the round-1 cohort"):
            call(runtime, state, "owner-9", "fl_training", "submit_masked_update",
                 round_number=1, group_id=0, payload=dummy)


# ----------------------------------------------------------------------
# Runtime level: the pipeline emitting real membership transactions
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def membership_setup():
    """Five dataset shards: four genesis owners plus one later joiner."""
    return make_owner_datasets(n_owners=5, sigma=0.2, n_samples=400, seed=17)


def build_membership_protocol(dataset, genesis, n_rounds=5):
    config = ProtocolConfig(
        n_owners=len(genesis), n_groups=2, n_rounds=n_rounds,
        local_epochs=2, learning_rate=2.0, permutation_seed=13,
    )
    return BlockchainFLProtocol(
        genesis, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )


@pytest.fixture(scope="module")
def churn_run(membership_setup):
    """Join at round 2, leave at round 4, over 5 rounds (the acceptance scenario)."""
    dataset, owners = membership_setup
    genesis, joiner = owners[:4], owners[4]
    protocol = build_membership_protocol(dataset, genesis)
    leaver = sorted(o.owner_id for o in genesis)[1]
    scenario = ChurnScenario(joins=[(joiner, 2)], leaves=[(leaver, 4)])
    scheduler = RoundScheduler(protocol, scenario)
    result = scheduler.run()
    return protocol, result, joiner.owner_id, leaver


class TestMembershipPipeline:
    def test_cohorts_follow_the_scheduled_epochs(self, churn_run):
        protocol, result, joiner, leaver = churn_run
        cohorts = [sorted({o for g in r.groups for o in g}) for r in result.rounds]
        assert all(joiner not in cohort for cohort in cohorts[:2])
        assert all(joiner in cohort for cohort in cohorts[2:])
        assert all(leaver in cohort for cohort in cohorts[:4])
        assert leaver not in cohorts[4]

    def test_absent_rounds_earn_nothing(self, churn_run):
        _, result, joiner, leaver = churn_run
        per_round = {r.round_number: r.user_values for r in result.rounds}
        assert all(joiner not in per_round[r] for r in (0, 1))
        assert leaver not in per_round[4]
        # The joiner's total is exactly the sum of its active rounds' values.
        active_sum = sum(per_round[r][joiner] for r in (2, 3, 4))
        assert result.total_contributions[joiner] == pytest.approx(active_sum, abs=1e-12)

    def test_epoch_settlement_sums_to_epoch_sv_mass(self, churn_run):
        protocol, result, joiner, leaver = churn_run
        assert [(e["start"], e["end"]) for e in result.epoch_settlements] == [
            (0, 2), (2, 4), (4, 5),
        ]
        per_round = {r.round_number: r for r in result.rounds}
        for epoch in result.epoch_settlements:
            expected_mass = sum(
                sum(max(v, 0.0) for v in per_round[r].user_values.values())
                for r in range(epoch["start"], epoch["end"])
            )
            assert epoch["sv_mass"] == pytest.approx(expected_mass, abs=1e-9)
            assert sum(epoch["payouts"].values()) == pytest.approx(epoch["reward_pool"], abs=1e-6)
            assert set(epoch["payouts"]) <= set(epoch["cohort"])
        pools = sum(e["reward_pool"] for e in result.epoch_settlements)
        assert pools == pytest.approx(protocol.config.reward_pool, abs=1e-9)
        assert sum(result.reward_balances.values()) == pytest.approx(
            protocol.config.reward_pool, abs=1e-6
        )
        # The joiner is paid nothing for epoch 0, the leaver nothing for epoch 2.
        assert joiner not in result.epoch_settlements[0]["payouts"]
        assert leaver not in result.epoch_settlements[2]["payouts"]

    def test_audit_verifies_the_membership_chain_epoch_by_epoch(self, churn_run, membership_setup):
        protocol, _, _, _ = churn_run
        dataset, _ = membership_setup
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
        assert report.passed, report.mismatches
        assert report.rounds_checked == [0, 1, 2, 3, 4]
        assert report.epochs_checked == [0, 1, 2]
        for epoch, totals in report.recomputed_epoch_totals.items():
            assert totals, f"epoch {epoch} recomputed empty"

    def test_miner_replay_reproduces_the_membership_chain_byte_for_byte(self, churn_run):
        protocol, _, _, _ = churn_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        replayed = chain.replay()
        assert replayed.state.state_root() == chain.state.state_root()
        assert [b.block_hash for b in replayed.blocks] == [b.block_hash for b in chain.blocks]
        # Every replica — including the node that joined mid-run — agrees.
        roots = {p.node.chain.state.state_root() for p in protocol.participants.values()}
        assert len(roots) == 1

    def test_tampered_cohort_fails_the_audit(self, churn_run, membership_setup):
        protocol, _, joiner, _ = churn_run
        dataset, _ = membership_setup
        chain = protocol.participants[protocol.owner_ids[0]].node.chain.clone()
        # Stored groups for round 0 suddenly claim the joiner participated.
        record = dict(chain.state.get("fl_training", "round/0"))
        groups = [list(g) for g in record["groups"]]
        groups[0] = groups[0] + [joiner]
        record["groups"] = groups
        chain.state.set("fl_training", "round/0", record)
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes
        )
        assert not report.passed
        assert any("active cohort" in m or "state root" in m for m in report.mismatches)

    def test_join_only_run_matches_scheduled_epochs(self, membership_setup):
        dataset, owners = membership_setup
        genesis, joiner = owners[:4], owners[4]
        protocol = build_membership_protocol(dataset, genesis, n_rounds=3)
        result = RoundScheduler(protocol, JoinScenario(joiner, join_round=1)).run()
        assert [(e["start"], e["end"]) for e in result.epoch_settlements] == [(0, 1), (1, 3)]
        assert joiner.owner_id in result.total_contributions
        report = audit_chain(
            protocol.participants[protocol.owner_ids[0]].node.chain,
            dataset.test_features, dataset.test_labels, dataset.n_classes,
        )
        assert report.passed, report.mismatches

    def test_leave_only_run_shrinks_the_cohort(self, membership_setup):
        dataset, owners = membership_setup
        genesis = owners[:4]
        protocol = build_membership_protocol(dataset, genesis, n_rounds=3)
        leaver = sorted(o.owner_id for o in genesis)[-1]
        result = RoundScheduler(protocol, LeaveScenario(leaver, leave_round=2)).run()
        final_cohort = sorted({o for g in result.rounds[-1].groups for o in g})
        assert leaver not in final_cohort
        assert len(final_cohort) == 3
        report = audit_chain(
            protocol.participants[protocol.owner_ids[0]].node.chain,
            dataset.test_features, dataset.test_labels, dataset.n_classes,
        )
        assert report.passed, report.mismatches

    def test_rejected_membership_request_fails_the_run_loudly(self, membership_setup):
        """Regression: a failed join/leave receipt must not silently degrade
        the run into a fixed-cohort one.  The round's block stays committed,
        so the failure is a run-level ProtocolError, not a RoundError."""
        dataset, owners = membership_setup
        genesis = owners[:2]
        config = ProtocolConfig(
            n_owners=2, n_groups=2, n_rounds=2, local_epochs=1,
            learning_rate=2.0, permutation_seed=13,
        )
        protocol = BlockchainFLProtocol(
            genesis, dataset.test_features, dataset.test_labels, dataset.n_classes, config
        )
        leaver = sorted(o.owner_id for o in genesis)[0]
        # Leaving would drop the cohort to 1 owner for 2 groups — the contract
        # rejects it, and the pipeline must surface the failed receipt.
        with pytest.raises(ProtocolError, match="request_leave.*failed on chain"):
            RoundScheduler(protocol, LeaveScenario(leaver, leave_round=1)).run()

    def test_scenario_constructor_validations(self, membership_setup):
        _, owners = membership_setup
        with pytest.raises(ProtocolError, match="join_round"):
            JoinScenario(owners[4], join_round=0)
        with pytest.raises(ProtocolError, match="leave_round"):
            LeaveScenario("owner-1", leave_round=0)
        with pytest.raises(ProtocolError, match="at least one"):
            ChurnScenario()


class TestEpochSettlementAudit:
    def test_auditor_checks_settlements_under_any_label(self):
        """Regression: a non-'final' settlement label must not dodge the audit."""
        from repro.core.audit import AuditReport, _audit_epochs

        state = WorldState()
        state.set("registry", "participant_index", OWNERS)
        for owner in OWNERS:
            state.set("registry", f"participant/{owner}", {"public_key": 7, "role": "owner"})
        state.set("registry", "membership_index", [OWNERS[1]])
        state.set("registry", f"membership/{OWNERS[1]}", [{"from": 0, "until": 1}])
        round_values = {
            0: {owner: 0.1 for owner in OWNERS},
            1: {owner: 0.1 for owner in OWNERS if owner != OWNERS[1]},
        }
        # The settlement under a custom label records an inflated epoch-1 mass,
        # pays the departed owner, skews one epoch-0 payout amount, and uses a
        # pool split that is not mass-proportional.
        skewed = {o: 12.5 for o in OWNERS}
        skewed[OWNERS[0]] = 13.0
        state.set("reward", "distribution/settle-q1", {
            "reward_pool": 100.0,
            "payouts": {},
            "epochs": {
                "0": {"reward_pool": 50.0, "sv_mass": 0.4, "payouts": skewed},
                "1": {"reward_pool": 50.0, "sv_mass": 9.9, "payouts": {OWNERS[1]: 50.0}},
            },
        })
        report = AuditReport(chain_valid=True)
        _audit_epochs(state, report, round_values, n_rounds=2, tolerance=1e-9)
        assert report.epochs_checked == [0, 1]
        assert any("settle-q1" in m and "SV mass" in m for m in report.mismatches)
        assert any("settle-q1" in m and OWNERS[1] in m for m in report.mismatches)
        assert any("mass-proportional share" in m for m in report.mismatches)
        assert any(f"owner {OWNERS[0]} paid 13.0" in m for m in report.mismatches)

    def test_auditor_checks_single_epoch_distributions(self, churn_run, membership_setup):
        """A distribute_epoch settlement on a real chain is covered by the audit."""
        protocol, _, _, leaver = churn_run
        dataset, _ = membership_setup
        from repro.blockchain.transaction import Transaction

        chain = protocol.participants[protocol.owner_ids[0]].node.chain.clone()
        closer = protocol.owner_ids[0]
        tx = Transaction(
            sender=closer, contract="reward", method="distribute_epoch",
            args={"epoch": 2, "reward_pool": 10.0}, nonce=chain.next_nonce(closer),
        )
        chain.propose_block(closer, [tx])
        distribution = chain.state.get("reward", "distribution/epoch-2")
        assert distribution is not None
        assert leaver not in distribution["payouts"]
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes
        )
        assert report.passed, report.mismatches


class TestFixedCohortParity:
    def test_plain_run_records_no_membership_state(self, protocol_run):
        protocol, result = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        assert chain.state.get("registry", "membership_index", []) == []
        assert result.epoch_settlements == []
        # The settlement went through the classic single-pool distribution.
        distribution = chain.state.get("reward", "distribution/final")
        assert distribution is not None and "epochs" not in distribution
