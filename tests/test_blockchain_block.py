"""Tests for blocks and block headers (repro.blockchain.block)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.blockchain.block import GENESIS_PARENT_HASH, Block, BlockHeader
from repro.blockchain.transaction import Transaction, TransactionReceipt
from repro.exceptions import InvalidBlockError, ValidationError


def make_txs(n=2):
    return [
        Transaction(sender=f"user-{i}", contract="registry", method="register_participant", args={"public_key": i + 2}, nonce=0)
        for i in range(n)
    ]


def make_receipts(txs):
    return [TransactionReceipt(tx_hash=tx.tx_hash, success=True, result=None, gas_used=100) for tx in txs]


def build_block(height=1, parent=GENESIS_PARENT_HASH, n_txs=2, state_root="ab" * 32):
    txs = make_txs(n_txs)
    receipts = make_receipts(txs)
    return Block.build(
        height=height,
        parent_hash=parent,
        proposer="user-0",
        transactions=txs,
        receipts=receipts,
        state_root=state_root,
    )


class TestBlockHeader:
    def test_hash_is_stable(self):
        block = build_block()
        assert block.header.block_hash == block.header.block_hash

    def test_hash_changes_with_state_root(self):
        a = build_block(state_root="aa" * 32)
        b = build_block(state_root="bb" * 32)
        assert a.block_hash != b.block_hash

    def test_rejects_negative_height(self):
        with pytest.raises(ValidationError):
            BlockHeader(height=-1, parent_hash=GENESIS_PARENT_HASH, proposer="x", tx_root="a", receipt_root="b", state_root="c")

    def test_rejects_malformed_parent_hash(self):
        with pytest.raises(ValidationError):
            BlockHeader(height=1, parent_hash="short", proposer="x", tx_root="a", receipt_root="b", state_root="c")


class TestBlock:
    def test_build_computes_matching_roots(self):
        block = build_block()
        block.verify_roots()

    def test_roots_detect_transaction_tampering(self):
        block = build_block(n_txs=3)
        tampered_txs = list(block.transactions)
        tampered_txs[0] = Transaction(
            sender="mallory", contract="registry", method="register_participant", args={"public_key": 99}, nonce=0
        )
        tampered = Block(header=block.header, transactions=tuple(tampered_txs), receipts=block.receipts)
        with pytest.raises(InvalidBlockError):
            tampered.verify_roots()

    def test_roots_detect_receipt_tampering(self):
        block = build_block(n_txs=2)
        tampered_receipts = list(block.receipts)
        tampered_receipts[0] = TransactionReceipt(tx_hash=block.transactions[0].tx_hash, success=False, error="forged")
        tampered = Block(header=block.header, transactions=block.transactions, receipts=tuple(tampered_receipts))
        with pytest.raises(InvalidBlockError):
            tampered.verify_roots()

    def test_requires_one_receipt_per_transaction(self):
        txs = make_txs(2)
        receipts = make_receipts(txs)[:1]
        header = build_block().header
        with pytest.raises(ValidationError):
            Block(header=header, transactions=tuple(txs), receipts=tuple(receipts))

    def test_empty_block_is_valid(self):
        block = Block.build(
            height=1,
            parent_hash=GENESIS_PARENT_HASH,
            proposer="x",
            transactions=[],
            receipts=[],
            state_root="cd" * 32,
        )
        block.verify_roots()
        assert block.tx_hashes() == []

    def test_total_gas_sums_receipts(self):
        block = build_block(n_txs=3)
        assert block.total_gas() == 300

    def test_height_property(self):
        assert build_block(height=7).height == 7

    def test_tx_hashes_match_transactions(self):
        block = build_block(n_txs=2)
        assert block.tx_hashes() == [tx.tx_hash for tx in block.transactions]
