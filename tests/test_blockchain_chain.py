"""Tests for the ledger (repro.blockchain.chain)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.transaction import Transaction
from repro.exceptions import InvalidBlockError, InvalidTransactionError

from tests.helpers import counter_runtime_factory, counter_tx


@pytest.fixture()
def chain():
    return Blockchain(counter_runtime_factory)


class TestGenesis:
    def test_starts_with_genesis(self, chain):
        assert chain.height == 0
        assert chain.head.height == 0

    def test_genesis_has_no_transactions(self, chain):
        assert chain.head.transactions == ()

    def test_validate_fresh_chain(self, chain):
        chain.validate_chain()


class TestTransactionExecution:
    def test_successful_execution_updates_state(self, chain):
        receipt = chain.execute_transaction(counter_tx("alice", 0, amount=5), block_height=1)
        assert receipt.success
        assert receipt.result == 5
        assert chain.state.get("counter", "value") == 5

    def test_failed_execution_rolls_back_state(self, chain):
        chain.execute_transaction(counter_tx("alice", 0, amount=5), 1)
        receipt = chain.execute_transaction(counter_tx("alice", 1, method="fail"), 1)
        assert not receipt.success
        assert "intentional failure" in receipt.error
        assert chain.state.get("counter", "value") == 5

    def test_nonce_must_match(self, chain):
        with pytest.raises(InvalidTransactionError):
            chain.execute_transaction(counter_tx("alice", 3), 1)

    def test_nonce_advances_even_for_failed_transactions(self, chain):
        chain.execute_transaction(counter_tx("alice", 0, method="fail"), 1)
        assert chain.next_nonce("alice") == 1

    def test_unknown_contract_produces_failed_receipt(self, chain):
        tx = Transaction(sender="alice", contract="missing", method="whatever", nonce=0)
        receipt = chain.execute_transaction(tx, 1)
        assert not receipt.success

    def test_gas_is_metered(self, chain):
        receipt = chain.execute_transaction(counter_tx("alice", 0), 1)
        assert receipt.gas_used > 0

    def test_events_are_captured(self, chain):
        receipt = chain.execute_transaction(counter_tx("alice", 0, amount=2), 1)
        assert receipt.events[0]["name"] == "Incremented"
        assert receipt.events[0]["data"]["amount"] == 2


class TestBlockProduction:
    def test_propose_block_advances_chain(self, chain):
        block = chain.propose_block("alice", [counter_tx("alice", 0)])
        assert chain.height == 1
        assert block.header.parent_hash == chain.blocks[0].block_hash

    def test_proposed_block_state_root_matches_state(self, chain):
        block = chain.propose_block("alice", [counter_tx("alice", 0)])
        assert block.header.state_root == chain.state.state_root()

    def test_verify_and_append_on_fresh_replica(self, chain):
        block = chain.propose_block("alice", [counter_tx("alice", 0, amount=3)])
        replica = Blockchain(counter_runtime_factory)
        replica.verify_and_append(block)
        assert replica.state.get("counter", "value") == 3

    def test_verify_rejects_wrong_height(self, chain):
        block = chain.propose_block("alice", [counter_tx("alice", 0)])
        replica = Blockchain(counter_runtime_factory)
        replica.verify_and_append(block)
        with pytest.raises(InvalidBlockError):
            replica.verify_and_append(block)

    def test_verify_rejects_wrong_parent(self, chain):
        chain.propose_block("alice", [counter_tx("alice", 0)])
        second = chain.propose_block("alice", [counter_tx("alice", 1)])
        replica = Blockchain(counter_runtime_factory)
        with pytest.raises(InvalidBlockError):
            replica.verify_and_append(second)

    def test_verify_rejects_forged_receipts(self, chain):
        block = chain.propose_block("alice", [counter_tx("alice", 0, amount=3)])
        forged_receipts = list(block.receipts)
        forged_receipts[0] = dataclasses.replace(forged_receipts[0], result=1000)
        forged = Block.build(
            height=block.height,
            parent_hash=block.header.parent_hash,
            proposer=block.header.proposer,
            transactions=list(block.transactions),
            receipts=forged_receipts,
            state_root=block.header.state_root,
            timestamp=block.header.timestamp,
        )
        replica = Blockchain(counter_runtime_factory)
        with pytest.raises(InvalidBlockError):
            replica.verify_and_append(forged)

    def test_verify_rejects_forged_state_root(self, chain):
        block = chain.propose_block("alice", [counter_tx("alice", 0, amount=3)])
        forged = Block.build(
            height=block.height,
            parent_hash=block.header.parent_hash,
            proposer=block.header.proposer,
            transactions=list(block.transactions),
            receipts=list(block.receipts),
            state_root="00" * 32,
            timestamp=block.header.timestamp,
        )
        replica = Blockchain(counter_runtime_factory)
        with pytest.raises(InvalidBlockError):
            replica.verify_and_append(forged)

    def test_rejected_block_leaves_replica_state_untouched(self, chain):
        good = chain.propose_block("alice", [counter_tx("alice", 0, amount=1)])
        replica = Blockchain(counter_runtime_factory)
        replica.verify_and_append(good)
        bad = Block.build(
            height=2,
            parent_hash=good.block_hash,
            proposer="alice",
            transactions=[counter_tx("alice", 1, amount=7)],
            receipts=[chain.execute_transaction(counter_tx("alice", 1, amount=7), 2)],
            state_root="11" * 32,
        )
        before_root = replica.state.state_root()
        with pytest.raises(InvalidBlockError):
            replica.verify_and_append(bad)
        assert replica.state.state_root() == before_root
        assert replica.next_nonce("alice") == 1


class TestCloneReplayAndQueries:
    def test_clone_is_independent(self, chain):
        chain.propose_block("alice", [counter_tx("alice", 0, amount=2)])
        clone = chain.clone()
        clone.propose_block("alice", [counter_tx("alice", 1, amount=10)])
        assert chain.state.get("counter", "value") == 2
        assert clone.state.get("counter", "value") == 12

    def test_replay_reproduces_state(self, chain):
        chain.propose_block("alice", [counter_tx("alice", 0, amount=2)])
        chain.propose_block("bob", [counter_tx("bob", 0, amount=3)])
        replayed = chain.replay()
        assert replayed.state.state_root() == chain.state.state_root()
        assert replayed.height == chain.height

    def test_validate_chain_detects_broken_link(self, chain):
        chain.propose_block("alice", [counter_tx("alice", 0)])
        chain.propose_block("alice", [counter_tx("alice", 1)])
        chain.blocks[2] = dataclasses.replace(
            chain.blocks[2],
            header=dataclasses.replace(chain.blocks[2].header, parent_hash="99" * 32),
        )
        with pytest.raises(Exception):
            chain.validate_chain()

    def test_find_receipt(self, chain):
        tx = counter_tx("alice", 0, amount=4)
        chain.propose_block("alice", [tx])
        receipt = chain.find_receipt(tx.tx_hash)
        assert receipt is not None and receipt.success

    def test_find_receipt_missing_returns_none(self, chain):
        assert chain.find_receipt("ff" * 32) is None

    def test_events_query(self, chain):
        chain.propose_block("alice", [counter_tx("alice", 0, amount=1), counter_tx("alice", 1, amount=2)])
        events = chain.events("Incremented")
        assert len(events) == 2
        assert chain.events("Nothing") == []

    def test_totals(self, chain):
        chain.propose_block("alice", [counter_tx("alice", 0), counter_tx("alice", 1)])
        assert chain.total_transactions() == 2
        assert chain.total_gas() > 0
