"""Tests for Shamir secret sharing (repro.crypto.secret_sharing)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.secret_sharing import ShamirSecretSharing, Share
from repro.exceptions import SecretSharingError, ValidationError


class TestConstruction:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ValidationError):
            ShamirSecretSharing(threshold=0, n_shares=3)

    def test_rejects_threshold_above_share_count(self):
        with pytest.raises(ValidationError):
            ShamirSecretSharing(threshold=4, n_shares=3)

    def test_share_validation(self):
        with pytest.raises(ValidationError):
            Share(x=0, y=1)
        with pytest.raises(ValidationError):
            Share(x=1, y=-1)


class TestSplitReconstruct:
    def test_basic_roundtrip(self):
        scheme = ShamirSecretSharing(threshold=3, n_shares=5)
        secret = 123456789
        shares = scheme.split(secret, seed="s")
        assert scheme.reconstruct(shares[:3]) == secret

    def test_any_subset_of_threshold_size_reconstructs(self):
        scheme = ShamirSecretSharing(threshold=2, n_shares=4)
        secret = 987654321
        shares = scheme.split(secret, seed="t")
        for i in range(4):
            for j in range(i + 1, 4):
                assert scheme.reconstruct([shares[i], shares[j]]) == secret

    def test_more_than_threshold_also_works(self):
        scheme = ShamirSecretSharing(threshold=2, n_shares=5)
        shares = scheme.split(42, seed="u")
        assert scheme.reconstruct(shares) == 42

    def test_too_few_shares_rejected(self):
        scheme = ShamirSecretSharing(threshold=3, n_shares=5)
        shares = scheme.split(7, seed="v")
        with pytest.raises(SecretSharingError):
            scheme.reconstruct(shares[:2])

    def test_duplicate_shares_do_not_count_twice(self):
        scheme = ShamirSecretSharing(threshold=3, n_shares=5)
        shares = scheme.split(7, seed="w")
        with pytest.raises(SecretSharingError):
            scheme.reconstruct([shares[0], shares[0], shares[0]])

    def test_threshold_minus_one_shares_do_not_reveal_secret(self):
        # With t-1 shares the reconstruction of the wrong subset should not
        # accidentally produce the secret (overwhelmingly unlikely).
        scheme = ShamirSecretSharing(threshold=2, n_shares=3)
        secret = 555
        shares = scheme.split(secret, seed="x")
        single_point_guess = shares[0].y  # evaluating the polynomial at x=1 is not the secret
        assert single_point_guess != secret

    def test_bytes_secret_roundtrip(self):
        scheme = ShamirSecretSharing(threshold=2, n_shares=3)
        secret = b"\x01\x02" * 16
        shares = scheme.split(secret, seed="y")
        assert scheme.reconstruct_bytes(shares[:2], length=32) == secret

    def test_secret_too_large_rejected(self):
        scheme = ShamirSecretSharing(threshold=2, n_shares=3)
        with pytest.raises(SecretSharingError):
            scheme.split((1 << 521) - 1, seed="z")

    def test_deterministic_shares_for_same_seed(self):
        scheme = ShamirSecretSharing(threshold=2, n_shares=3)
        assert scheme.split(99, seed="a") == scheme.split(99, seed="a")

    def test_different_seed_different_shares(self):
        scheme = ShamirSecretSharing(threshold=2, n_shares=3)
        assert scheme.split(99, seed="a") != scheme.split(99, seed="b")

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**256),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=5),
    )
    def test_property_roundtrip(self, secret, threshold, extra_shares):
        n_shares = threshold + extra_shares
        scheme = ShamirSecretSharing(threshold=threshold, n_shares=n_shares)
        shares = scheme.split(secret, seed=secret % 1000)
        assert scheme.reconstruct(shares[:threshold]) == secret
        assert scheme.reconstruct(list(reversed(shares))[:threshold]) == secret
