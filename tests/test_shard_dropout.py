"""Shard-local dropout recovery.

A device dropping mid-round must be recoverable *within its own shard*: the
surviving shard members hold the Shamir shares needed to cancel the dropped
member's pairwise masks, and no other shard contributes (or even learns about)
anything.  At the protocol level, a dropout under the sharded topology must
leave the settled chain byte-identical to an undisturbed sharded run, with the
audit passing in both replay and incremental modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import DropoutScenario, RoundScheduler
from repro.core.protocol import BlockchainFLProtocol
from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.dropout import DropoutRecoveryAggregator, DropoutResilientMasker
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import PairwiseMasker, SecureAggregator
from repro.crypto.sharding import shard_group
from repro.datasets.loader import make_owner_datasets
from repro.utils.rng import spawn_rng


class TestShardLocalRecovery:
    """Crypto-level: one shard recovers from a dropout using only its own shares."""

    def test_dropout_in_one_shard_recovers_without_touching_the_other(self):
        # Shards of 4 so that after one dropout the 3 survivors still hold
        # >= threshold shares of every secret that needs reconstructing.
        owners = [f"owner-{i}" for i in range(8)]
        shards = shard_group(owners, 4)
        assert len(shards) == 2
        rng = spawn_rng("shard-dropout", 31)
        vectors = {o: rng.normal(size=10) for o in owners}

        dh_params = DHParameters.for_testing(bits=64, seed=9)
        keypairs = {o: DHKeyPair.generate(dh_params, o, seed=9) for o in owners}
        public = {o: pair.public_key for o, pair in keypairs.items()}
        codec = FixedPointCodec()
        round_number = 2

        # Shard 0 runs the dropout-resilient protocol: double masking plus
        # Shamir shares distributed among the shard's members only.
        shard0 = shards[0]
        threshold = 2
        shard0_updates = {}
        for owner in shard0:
            peers = {p: public[p] for p in shard0 if p != owner}
            masker = DropoutResilientMasker(
                owner, keypairs[owner], peers, threshold=threshold, codec=codec, seed=9
            )
            shard0_updates[owner] = masker.mask(vectors[owner], round_number)

        dropped = shard0[1]
        survivors = [o for o in shard0 if o != dropped]
        surviving_updates = [shard0_updates[o] for o in survivors]
        # Survivors pool the shares they hold — all from within shard 0.
        collected_self_shares = {
            survivor: [
                shard0_updates[survivor].self_mask_shares[other]
                for other in survivors if other != survivor
            ]
            for survivor in survivors
        }
        collected_key_shares = {
            dropped: [shard0_updates[dropped].key_shares[survivor] for survivor in survivors]
        }
        shard0_public = {o: public[o] for o in shard0}
        recovered = DropoutRecoveryAggregator(threshold=threshold, codec=codec).aggregate_sum(
            surviving_updates,
            shard0_public,
            [dropped],
            collected_self_shares,
            collected_key_shares,
            dh_params,
            round_number,
        )
        expected = np.sum([vectors[o] for o in survivors], axis=0)
        assert np.allclose(recovered, expected, atol=1e-4)

        # Shard 1 is oblivious: plain pairwise masking among its own members
        # aggregates exactly as if the other shard never existed.
        shard1 = shards[1]
        shard1_updates = []
        for owner in shard1:
            peers = {p: public[p] for p in shard1 if p != owner}
            masker = PairwiseMasker(owner, keypairs[owner], peers, codec=codec)
            shard1_updates.append(masker.mask(vectors[owner], round_number))
        shard1_sum = SecureAggregator(codec=codec).aggregate_sum(shard1_updates)
        assert np.allclose(shard1_sum, np.sum([vectors[o] for o in shard1], axis=0), atol=1e-4)

    def test_recovery_needs_threshold_shares(self):
        owners = ["a", "b", "c"]
        rng = spawn_rng("shard-dropout-threshold", 37)
        vectors = {o: rng.normal(size=4) for o in owners}
        dh_params = DHParameters.for_testing(bits=64, seed=3)
        keypairs = {o: DHKeyPair.generate(dh_params, o, seed=3) for o in owners}
        public = {o: pair.public_key for o, pair in keypairs.items()}
        codec = FixedPointCodec()
        updates = {}
        for owner in owners:
            peers = {p: public[p] for p in owners if p != owner}
            masker = DropoutResilientMasker(
                owner, keypairs[owner], peers, threshold=2, codec=codec, seed=3
            )
            updates[owner] = masker.mask(vectors[owner], 0)
        from repro.exceptions import MaskingError

        with pytest.raises(MaskingError):
            DropoutRecoveryAggregator(threshold=2, codec=codec).aggregate_sum(
                [updates["a"], updates["b"]],
                public,
                ["c"],
                {"a": [updates["b"].self_mask_shares["a"]],
                 "b": [updates["a"].self_mask_shares["b"]]},
                {"c": [updates["c"].key_shares["a"]]},  # one share < threshold
                dh_params,
                0,
            )


@pytest.fixture(scope="module")
def six_setup():
    return make_owner_datasets(n_owners=6, sigma=0.1, n_samples=400, seed=7)


def _build(six_setup, **overrides):
    dataset, owners = six_setup
    settings = dict(
        n_owners=6, n_groups=2, n_rounds=2, local_epochs=2,
        learning_rate=2.0, permutation_seed=13,
        aggregation_topology="sharded", shard_size=2,
    )
    settings.update(overrides)
    return BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
        ProtocolConfig(**settings),
    )


def _fingerprint(protocol):
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    return [(b.height, b.block_hash, b.header.state_root) for b in chain.blocks]


class TestShardedDropoutProtocol:
    def test_dropout_in_a_sharded_round_commits_identical_blocks(self, six_setup):
        plain = _build(six_setup)
        plain_result = plain.run()

        disturbed = _build(six_setup)
        dropped = sorted(disturbed.owner_ids)[1]
        scheduler = RoundScheduler(
            disturbed, DropoutScenario(dropped, round_number=0, offline_ticks=2)
        )
        disturbed_result = scheduler.run()

        assert _fingerprint(disturbed) == _fingerprint(plain)
        assert disturbed_result.reward_balances == plain_result.reward_balances
        assert any(ctx.ticks_waited for ctx in scheduler.contexts)

        dataset, _ = six_setup
        chain = disturbed.participants[disturbed.owner_ids[0]].node.chain
        for mode in ("replay", "incremental"):
            report = audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode=mode,
            )
            assert report.passed, report.mismatches

    def test_dropout_in_a_sharded_sampled_round_audits_clean(self, six_setup):
        protocol = _build(six_setup, sv_estimator="sampled", sv_samples=16)
        dropped = sorted(protocol.owner_ids)[2]
        scheduler = RoundScheduler(
            protocol, DropoutScenario(dropped, round_number=1, offline_ticks=1)
        )
        scheduler.run()

        dataset, _ = six_setup
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        for mode in ("replay", "incremental"):
            report = audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode=mode,
            )
            assert report.passed, report.mismatches
            assert report.estimators_checked == [0, 1]
