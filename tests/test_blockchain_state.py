"""Tests for the world state (repro.blockchain.state)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.state import WorldState
from repro.exceptions import ValidationError


class TestBasicAccess:
    def test_get_returns_default_for_missing(self):
        assert WorldState().get("ns", "missing", default=7) == 7

    def test_set_then_get(self):
        state = WorldState()
        state.set("ns", "key", {"a": 1})
        assert state.get("ns", "key") == {"a": 1}

    def test_get_returns_a_copy(self):
        state = WorldState()
        state.set("ns", "key", {"a": [1, 2]})
        value = state.get("ns", "key")
        value["a"].append(3)
        assert state.get("ns", "key") == {"a": [1, 2]}

    def test_set_copies_input(self):
        state = WorldState()
        original = {"a": [1]}
        state.set("ns", "key", original)
        original["a"].append(2)
        assert state.get("ns", "key") == {"a": [1]}

    def test_delete(self):
        state = WorldState()
        state.set("ns", "key", 1)
        state.delete("ns", "key")
        assert not state.contains("ns", "key")

    def test_delete_missing_is_noop(self):
        WorldState().delete("ns", "nothing")

    def test_namespaces_are_isolated(self):
        state = WorldState()
        state.set("a", "key", 1)
        state.set("b", "key", 2)
        assert state.get("a", "key") == 1
        assert state.get("b", "key") == 2

    def test_keys_sorted_within_namespace(self):
        state = WorldState()
        state.set("ns", "b", 1)
        state.set("ns", "a", 2)
        assert state.keys("ns") == ["a", "b"]

    def test_items_iterates_pairs(self):
        state = WorldState()
        state.set("ns", "x", 1)
        state.set("ns", "y", 2)
        assert list(state.items("ns")) == [("x", 1), ("y", 2)]

    def test_len_counts_all_entries(self):
        state = WorldState()
        state.set("a", "k1", 1)
        state.set("b", "k2", 2)
        assert len(state) == 2

    def test_rejects_empty_namespace_or_key(self):
        state = WorldState()
        with pytest.raises(ValidationError):
            state.set("", "k", 1)
        with pytest.raises(ValidationError):
            state.get("ns", "")

    def test_rejects_slash_in_namespace(self):
        with pytest.raises(ValidationError):
            WorldState().set("a/b", "k", 1)

    def test_keys_rejects_slash_in_namespace(self):
        # Regression: keys()/items() used to build the prefix without
        # validation, so keys("a/b") silently read namespace "a"'s "b/..."
        # keys instead of failing.
        state = WorldState()
        state.set("a", "b/secret", 1)
        with pytest.raises(ValidationError):
            state.keys("a/b")
        with pytest.raises(ValidationError):
            list(state.items("a/b"))

    def test_keys_rejects_empty_namespace(self):
        with pytest.raises(ValidationError):
            WorldState().keys("")


class TestSnapshotsAndHashing:
    def test_snapshot_restore_roundtrip(self):
        state = WorldState()
        state.set("ns", "k", 1)
        snapshot = state.snapshot()
        state.set("ns", "k", 2)
        state.set("ns", "other", 3)
        state.restore(snapshot)
        assert state.get("ns", "k") == 1
        assert not state.contains("ns", "other")

    def test_nested_snapshots_restore_in_order(self):
        state = WorldState()
        state.set("ns", "k", 1)
        outer = state.snapshot()
        state.set("ns", "k", 2)
        inner = state.snapshot()
        state.set("ns", "k", 3)
        state.restore(inner)
        assert state.get("ns", "k") == 2
        state.restore(outer)
        assert state.get("ns", "k") == 1

    def test_restore_rejects_stale_snapshot(self):
        state = WorldState()
        snapshot = state.snapshot()
        state.set("ns", "k", 1)
        state.seal_version(0)  # sealing clears the journal the marker points into
        with pytest.raises(ValidationError):
            state.restore(snapshot)

    def test_restore_rejects_raw_dict(self):
        state = WorldState()
        with pytest.raises(ValidationError):
            state.restore({})

    def test_state_root_is_deterministic(self):
        a = WorldState()
        b = WorldState()
        for s in (a, b):
            s.set("ns", "k1", [1, 2, 3])
            s.set("ns", "k2", "text")
        assert a.state_root() == b.state_root()

    def test_state_root_changes_with_content(self):
        a = WorldState()
        a.set("ns", "k", 1)
        root_before = a.state_root()
        a.set("ns", "k", 2)
        assert a.state_root() != root_before

    def test_state_root_insensitive_to_write_order(self):
        a = WorldState()
        a.set("ns", "k1", 1)
        a.set("ns", "k2", 2)
        b = WorldState()
        b.set("ns", "k2", 2)
        b.set("ns", "k1", 1)
        assert a.state_root() == b.state_root()

    def test_state_root_with_arrays(self):
        a = WorldState()
        a.set("ns", "w", np.arange(5, dtype=np.float64))
        b = WorldState()
        b.set("ns", "w", np.arange(5, dtype=np.float64))
        assert a.state_root() == b.state_root()

    def test_copy_is_deep(self):
        a = WorldState()
        a.set("ns", "k", [1])
        b = a.copy()
        b.set("ns", "k", [2])
        assert a.get("ns", "k") == [1]

    def test_raw_returns_copy(self):
        state = WorldState()
        state.set("ns", "k", 1)
        raw = state.raw()
        raw["ns/k"] = 99
        assert state.get("ns", "k") == 1
