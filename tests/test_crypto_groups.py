"""Tests for group parameters and primality testing (repro.crypto.groups)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import MODP_GROUPS, GroupParameters, generate_safe_prime_group, is_probable_prime
from repro.exceptions import ValidationError


class TestIsProbablePrime:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 11, 13, 97, 65537, 2**31 - 1, 2**61 - 1])
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 6, 9, 15, 21, 91, 561, 41041, 2**32, 2**61 - 3])
    def test_known_composites_and_non_primes(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_detected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_large_known_prime(self):
        assert is_probable_prime((1 << 521) - 1)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=10_000))
    def test_property_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert is_probable_prime(n) == by_trial


class TestGroupParameters:
    def test_rfc_groups_have_prime_modulus(self):
        for group in MODP_GROUPS.values():
            assert is_probable_prime(group.prime)

    def test_rfc_group_bit_lengths(self):
        assert MODP_GROUPS["modp-1536"].bit_length == 1536
        assert MODP_GROUPS["modp-2048"].bit_length == 2048
        assert MODP_GROUPS["modp-3072"].bit_length == 3072

    def test_power_matches_builtin_pow(self):
        group = MODP_GROUPS["modp-1536"]
        assert group.power(2, 10) == pow(2, 10, group.prime)

    def test_rejects_tiny_prime(self):
        with pytest.raises(ValidationError):
            GroupParameters(prime=3, generator=2)

    def test_rejects_out_of_range_generator(self):
        with pytest.raises(ValidationError):
            GroupParameters(prime=23, generator=23)

    def test_element_from_seed_in_range_and_deterministic(self):
        group = GroupParameters(prime=2027, generator=2)
        e1 = group.element_from_seed("owner", 1)
        e2 = group.element_from_seed("owner", 1)
        assert e1 == e2
        assert 2 <= e1 <= group.prime - 2


class TestGenerateSafePrimeGroup:
    def test_produces_a_safe_prime(self):
        group = generate_safe_prime_group(48, seed="test")
        p = group.prime
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_deterministic_for_same_seed(self):
        a = generate_safe_prime_group(40, seed="x")
        b = generate_safe_prime_group(40, seed="x")
        assert a.prime == b.prime and a.generator == b.generator

    def test_different_seeds_give_different_groups(self):
        a = generate_safe_prime_group(40, seed="x")
        b = generate_safe_prime_group(40, seed="y")
        assert a.prime != b.prime

    def test_generator_is_in_group(self):
        group = generate_safe_prime_group(32, seed="g")
        assert 1 < group.generator < group.prime

    def test_generator_has_subgroup_order_q(self):
        group = generate_safe_prime_group(32, seed="q")
        q = (group.prime - 1) // 2
        assert pow(group.generator, q, group.prime) == 1

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ValidationError):
            generate_safe_prime_group(4)
        with pytest.raises(ValidationError):
            generate_safe_prime_group(4096)
