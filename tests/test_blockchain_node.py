"""Tests for miner nodes (repro.blockchain.node)."""

from __future__ import annotations

import pytest

from repro.blockchain.consensus import ConsensusEngine
from repro.blockchain.network import Network
from repro.blockchain.node import MinerNode
from repro.exceptions import ConsensusError

from tests.helpers import counter_runtime_factory, counter_tx


def build_cluster(n_nodes=4, byzantine=()):
    network = Network()
    nodes = {}
    for i in range(n_nodes):
        node_id = f"node-{i}"
        nodes[node_id] = MinerNode(
            node_id, network, counter_runtime_factory, byzantine=node_id in byzantine
        )
    return network, nodes


class TestGossip:
    def test_submitted_transaction_reaches_every_mempool(self):
        _, nodes = build_cluster(3)
        tx = counter_tx("node-0", 0)
        nodes["node-0"].submit_transaction(tx)
        assert all(tx.tx_hash in node.mempool for node in nodes.values())

    def test_duplicate_gossip_is_deduplicated(self):
        _, nodes = build_cluster(3)
        tx = counter_tx("node-0", 0)
        nodes["node-0"].submit_transaction(tx)
        nodes["node-1"].submit_transaction(tx)
        assert all(len(node.mempool) == 1 for node in nodes.values())


class TestConsensusRound:
    def test_honest_cluster_commits_block_everywhere(self):
        _, nodes = build_cluster(4)
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0, amount=5))
        engine = ConsensusEngine()
        leader = nodes[engine.select_leader(sorted(nodes))]
        result = leader.run_consensus_round(engine)
        assert result.accepted
        # The leader committed and broadcast; every replica holds the new block.
        assert all(node.chain.height == 1 for node in nodes.values())
        assert all(node.chain.state.get("counter", "value") == 5 for node in nodes.values())

    def test_mempools_are_cleared_after_commit(self):
        _, nodes = build_cluster(3)
        nodes["node-1"].submit_transaction(counter_tx("node-1", 0))
        engine = ConsensusEngine()
        nodes["node-0"].run_consensus_round(engine)
        assert all(len(node.mempool) == 0 for node in nodes.values())

    def test_replicas_stay_in_sync_over_multiple_blocks(self):
        _, nodes = build_cluster(4)
        engine = ConsensusEngine()
        order = sorted(nodes)
        for height in range(3):
            sender = order[height % len(order)]
            nodes[sender].submit_transaction(counter_tx(sender, nodes[sender].chain.next_nonce(sender), amount=height + 1))
            leader = nodes[engine.select_leader(order)]
            leader.run_consensus_round(engine)
        roots = {node.chain.state.state_root() for node in nodes.values()}
        assert len(roots) == 1
        assert list(nodes.values())[0].chain.state.get("counter", "value") == 6

    def test_minority_byzantine_does_not_block_progress(self):
        _, nodes = build_cluster(5, byzantine=("node-4",))
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0, amount=2))
        engine = ConsensusEngine()
        result = nodes["node-0"].run_consensus_round(engine)
        assert result.accepted
        assert result.votes["node-4"] is False

    def test_majority_byzantine_blocks_progress(self):
        _, nodes = build_cluster(5, byzantine=("node-2", "node-3", "node-4"))
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0))
        engine = ConsensusEngine()
        with pytest.raises(ConsensusError):
            nodes["node-0"].run_consensus_round(engine)
        # No honest replica advanced past genesis.
        assert all(node.chain.height == 0 for node in nodes.values())

    def test_verification_votes_record_rejection_reason(self):
        _, nodes = build_cluster(3, byzantine=("node-2",))
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0))
        block = nodes["node-0"].propose_block()
        votes, rejections, unreachable = nodes["node-0"].collect_votes(block)
        assert votes["node-1"] is True
        assert votes["node-2"] is False
        assert "node-2" in rejections
        assert unreachable == {}

    def test_proposal_does_not_mutate_leader_state_before_commit(self):
        _, nodes = build_cluster(3)
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0, amount=9))
        nodes["node-0"].propose_block()
        assert nodes["node-0"].chain.height == 0
        assert nodes["node-0"].chain.state.get("counter", "value") is None


def build_faulty_cluster(plan, n_nodes=4):
    from repro.blockchain.transport import FaultInjectingTransport

    network = Network(FaultInjectingTransport(plan))
    nodes = {}
    for i in range(n_nodes):
        node_id = f"node-{i}"
        nodes[node_id] = MinerNode(node_id, network, counter_runtime_factory)
    return network, nodes


class TestGossipRetry:
    def test_dropped_gossip_is_recovered_by_retry(self):
        from repro.blockchain.transport import FaultPlan, LinkFault

        # Seed 1 drops node-0 -> node-1 on the first attempt and delivers on
        # the first retry (the draws are deterministic under the plan seed).
        plan = FaultPlan(seed=1, links={
            "node-0->node-1": LinkFault(drop_probability=0.6, topics=("tx",)),
        })
        network, nodes = build_faulty_cluster(plan, n_nodes=3)
        tx = counter_tx("node-0", 0)
        report = nodes["node-0"].submit_transaction(tx)
        delivery = report.deliveries["node-1"]
        assert delivery.delivered
        assert delivery.attempts == 2
        assert network.stats.delivery_by_topic["tx"]["retries"] == 1
        assert report.retry_backoffs == [2]
        assert tx.tx_hash in nodes["node-1"].mempool

    def test_retry_budget_is_bounded(self):
        from repro.blockchain.transport import FaultPlan, LinkFault

        plan = FaultPlan(links={
            "node-0->node-1": LinkFault(drop_probability=1.0, topics=("tx",)),
        })
        network, nodes = build_faulty_cluster(plan, n_nodes=3)
        tx = counter_tx("node-0", 0)
        report = nodes["node-0"].submit_transaction(tx)
        delivery = report.deliveries["node-1"]
        assert not delivery.delivered
        assert delivery.attempts == 3  # initial broadcast + max_retries (2)
        assert report.retry_backoffs == [2, 4]  # exponential backoff schedule
        assert tx.tx_hash not in nodes["node-1"].mempool
        assert tx.tx_hash in nodes["node-2"].mempool  # unaffected link delivered


class TestQuorumUnderFaults:
    def test_unreachable_voter_counts_as_abstain_not_hang(self):
        from repro.blockchain.transport import FaultPlan, PartitionSpec

        network, nodes = build_faulty_cluster(FaultPlan())
        network.transport.set_partition(
            PartitionSpec("eclipse", (("node-3",),), direction="inbound")
        )
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0))
        block = nodes["node-0"].propose_block()
        votes, rejections, unreachable = nodes["node-0"].collect_votes(block)
        assert votes == {
            "node-0": True, "node-1": True, "node-2": True, "node-3": False,
        }
        assert unreachable == {"node-3": "partitioned"}
        assert "no vote received" in rejections["node-3"]
        # 3 of 4 accepts: the abstain does not block the majority.
        engine = ConsensusEngine()
        result = nodes["node-0"].run_consensus_round(engine)
        assert result.accepted
        assert result.unreachable == {"node-3": "partitioned"}

    def test_majority_unreachable_rejects_the_round(self):
        from repro.blockchain.transport import FaultPlan, PartitionSpec

        network, nodes = build_faulty_cluster(FaultPlan())
        network.transport.set_partition(
            PartitionSpec("split", (("node-0", "node-1"), ("node-2", "node-3")))
        )
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0))
        engine = ConsensusEngine()
        with pytest.raises(ConsensusError):
            nodes["node-0"].run_consensus_round(engine)
        assert all(node.chain.height == 0 for node in nodes.values())


class TestResync:
    def commit_block(self, nodes, nonce, amount):
        nodes["node-0"].submit_transaction(counter_tx("node-0", nonce, amount=amount))
        return nodes["node-0"].run_consensus_round(ConsensusEngine())

    def test_explicit_resync_after_heal(self):
        from repro.blockchain.transport import FaultPlan, PartitionSpec

        network, nodes = build_faulty_cluster(FaultPlan())
        network.transport.set_partition(
            PartitionSpec("eclipse", (("node-3",),), direction="inbound")
        )
        self.commit_block(nodes, nonce=0, amount=5)
        assert nodes["node-3"].chain.height == 0  # missed the commit entirely
        network.transport.heal_all()
        assert nodes["node-3"].try_resync() is True
        assert nodes["node-3"].chain.height == 1
        assert nodes["node-3"].chain.head.block_hash == nodes["node-0"].chain.head.block_hash
        assert nodes["node-3"].chain.state.get("counter", "value") == 5
        assert nodes["node-3"].resyncs == [
            {"peer": "node-0", "from_height": 0, "to_height": 1, "blocks": 1}
        ]

    def test_gapped_commit_triggers_automatic_resync(self):
        from repro.blockchain.transport import FaultPlan, PartitionSpec

        network, nodes = build_faulty_cluster(FaultPlan())
        network.transport.set_partition(
            PartitionSpec("eclipse", (("node-3",),), direction="inbound")
        )
        self.commit_block(nodes, nonce=0, amount=5)
        network.transport.heal_all()
        # The next commit arrives above node-3's height: it must fill the gap
        # from its peers instead of rejecting the block.
        self.commit_block(nodes, nonce=1, amount=2)
        assert nodes["node-3"].chain.height == 2
        assert nodes["node-3"].chain.head.block_hash == nodes["node-0"].chain.head.block_hash
        assert nodes["node-3"].resyncs and nodes["node-3"].resyncs[0]["peer"] == "node-0"

    def test_resync_without_ahead_peer_reports_failure(self):
        from repro.blockchain.transport import FaultPlan

        _, nodes = build_faulty_cluster(FaultPlan())
        assert nodes["node-0"].try_resync() is False
        assert nodes["node-0"].resyncs == []
