"""Tests for miner nodes (repro.blockchain.node)."""

from __future__ import annotations

import pytest

from repro.blockchain.consensus import ConsensusEngine
from repro.blockchain.network import Network
from repro.blockchain.node import MinerNode
from repro.exceptions import ConsensusError

from tests.helpers import counter_runtime_factory, counter_tx


def build_cluster(n_nodes=4, byzantine=()):
    network = Network()
    nodes = {}
    for i in range(n_nodes):
        node_id = f"node-{i}"
        nodes[node_id] = MinerNode(
            node_id, network, counter_runtime_factory, byzantine=node_id in byzantine
        )
    return network, nodes


class TestGossip:
    def test_submitted_transaction_reaches_every_mempool(self):
        _, nodes = build_cluster(3)
        tx = counter_tx("node-0", 0)
        nodes["node-0"].submit_transaction(tx)
        assert all(tx.tx_hash in node.mempool for node in nodes.values())

    def test_duplicate_gossip_is_deduplicated(self):
        _, nodes = build_cluster(3)
        tx = counter_tx("node-0", 0)
        nodes["node-0"].submit_transaction(tx)
        nodes["node-1"].submit_transaction(tx)
        assert all(len(node.mempool) == 1 for node in nodes.values())


class TestConsensusRound:
    def test_honest_cluster_commits_block_everywhere(self):
        _, nodes = build_cluster(4)
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0, amount=5))
        engine = ConsensusEngine()
        leader = nodes[engine.select_leader(sorted(nodes))]
        result = leader.run_consensus_round(engine)
        assert result.accepted
        # The leader committed and broadcast; every replica holds the new block.
        assert all(node.chain.height == 1 for node in nodes.values())
        assert all(node.chain.state.get("counter", "value") == 5 for node in nodes.values())

    def test_mempools_are_cleared_after_commit(self):
        _, nodes = build_cluster(3)
        nodes["node-1"].submit_transaction(counter_tx("node-1", 0))
        engine = ConsensusEngine()
        nodes["node-0"].run_consensus_round(engine)
        assert all(len(node.mempool) == 0 for node in nodes.values())

    def test_replicas_stay_in_sync_over_multiple_blocks(self):
        _, nodes = build_cluster(4)
        engine = ConsensusEngine()
        order = sorted(nodes)
        for height in range(3):
            sender = order[height % len(order)]
            nodes[sender].submit_transaction(counter_tx(sender, nodes[sender].chain.next_nonce(sender), amount=height + 1))
            leader = nodes[engine.select_leader(order)]
            leader.run_consensus_round(engine)
        roots = {node.chain.state.state_root() for node in nodes.values()}
        assert len(roots) == 1
        assert list(nodes.values())[0].chain.state.get("counter", "value") == 6

    def test_minority_byzantine_does_not_block_progress(self):
        _, nodes = build_cluster(5, byzantine=("node-4",))
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0, amount=2))
        engine = ConsensusEngine()
        result = nodes["node-0"].run_consensus_round(engine)
        assert result.accepted
        assert result.votes["node-4"] is False

    def test_majority_byzantine_blocks_progress(self):
        _, nodes = build_cluster(5, byzantine=("node-2", "node-3", "node-4"))
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0))
        engine = ConsensusEngine()
        with pytest.raises(ConsensusError):
            nodes["node-0"].run_consensus_round(engine)
        # No honest replica advanced past genesis.
        assert all(node.chain.height == 0 for node in nodes.values())

    def test_verification_votes_record_rejection_reason(self):
        _, nodes = build_cluster(3, byzantine=("node-2",))
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0))
        block = nodes["node-0"].propose_block()
        votes, rejections = nodes["node-0"].collect_votes(block)
        assert votes["node-1"] is True
        assert votes["node-2"] is False
        assert "node-2" in rejections

    def test_proposal_does_not_mutate_leader_state_before_commit(self):
        _, nodes = build_cluster(3)
        nodes["node-0"].submit_transaction(counter_tx("node-0", 0, amount=9))
        nodes["node-0"].propose_block()
        assert nodes["node-0"].chain.height == 0
        assert nodes["node-0"].chain.state.get("counter", "value") is None
