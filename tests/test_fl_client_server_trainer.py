"""Tests for data owners, the centralized trainer, and the FedAvg loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fl.aggregation import fedavg
from repro.fl.client import DataOwner
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.server import CentralizedTrainer
from repro.fl.trainer import FederatedTrainer, TrainingConfig


@pytest.fixture(scope="module")
def owner_clients(dataset, owners):
    return [
        DataOwner(o.owner_id, o.features, o.labels, dataset.n_classes, local_epochs=5, learning_rate=2.0)
        for o in owners
    ]


class TestDataOwner:
    def test_local_train_returns_update_with_metadata(self, dataset, owner_clients):
        client = owner_clients[0]
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes)
        update = client.local_train(template.parameters, round_number=0)
        assert update.owner_id == client.owner_id
        assert update.round_number == 0
        assert update.n_samples == client.n_samples
        assert update.parameters.dimension == template.parameters.dimension

    def test_local_training_improves_local_accuracy(self, dataset, owner_clients):
        client = owner_clients[0]
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes)
        before = client.evaluate(template.parameters)["accuracy"]
        update = client.local_train(template.parameters, round_number=0)
        after = client.evaluate(update.parameters)["accuracy"]
        assert after > before

    def test_local_training_is_deterministic(self, dataset, owner_clients):
        client = owner_clients[0]
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes)
        a = client.local_train(template.parameters, round_number=1)
        b = client.local_train(template.parameters, round_number=1)
        assert a.parameters.allclose(b.parameters)

    def test_round_number_changes_minibatch_order_only(self, dataset, owners):
        data = owners[0]
        client = DataOwner(
            data.owner_id, data.features, data.labels, dataset.n_classes,
            local_epochs=2, learning_rate=1.0, batch_size=16,
        )
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes)
        a = client.local_train(template.parameters, round_number=0)
        b = client.local_train(template.parameters, round_number=1)
        assert not a.parameters.allclose(b.parameters)

    def test_rejects_empty_dataset(self, dataset):
        with pytest.raises(ValidationError):
            DataOwner("empty", np.zeros((0, dataset.n_features)), np.zeros(0), dataset.n_classes)

    def test_rejects_mismatched_features_labels(self, dataset):
        with pytest.raises(ValidationError):
            DataOwner("bad", np.zeros((5, dataset.n_features)), np.zeros(4), dataset.n_classes)


class TestCentralizedTrainer:
    def test_training_reaches_reasonable_accuracy(self, dataset):
        trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes, epochs=60, learning_rate=2.0)
        params = trainer.train(dataset.train_features, dataset.train_labels)
        metrics = trainer.evaluate(params, dataset.test_features, dataset.test_labels)
        assert metrics["accuracy"] > 0.7

    def test_coalition_training_pools_data(self, dataset, owners):
        trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes, epochs=20, learning_rate=2.0)
        owner_features = {o.owner_id: o.features for o in owners}
        owner_labels = {o.owner_id: o.labels for o in owners}
        pair = tuple(sorted(owner_features)[:2])
        params = trainer.train_on_coalition(owner_features, owner_labels, pair)
        assert params.dimension == LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters.dimension

    def test_coalition_order_does_not_matter(self, dataset, owners):
        trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes, epochs=10, learning_rate=2.0)
        owner_features = {o.owner_id: o.features for o in owners}
        owner_labels = {o.owner_id: o.labels for o in owners}
        ids = sorted(owner_features)[:3]
        forward = trainer.train_on_coalition(owner_features, owner_labels, tuple(ids))
        backward = trainer.train_on_coalition(owner_features, owner_labels, tuple(reversed(ids)))
        assert forward.allclose(backward)

    def test_unknown_coalition_member_rejected(self, dataset, owners):
        trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes)
        owner_features = {o.owner_id: o.features for o in owners}
        owner_labels = {o.owner_id: o.labels for o in owners}
        with pytest.raises(ValidationError):
            trainer.train_on_coalition(owner_features, owner_labels, ("ghost",))

    def test_empty_coalition_rejected(self, dataset, owners):
        trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes)
        owner_features = {o.owner_id: o.features for o in owners}
        owner_labels = {o.owner_id: o.labels for o in owners}
        with pytest.raises(ValidationError):
            trainer.train_on_coalition(owner_features, owner_labels, ())


class TestFederatedTrainer:
    def test_round_record_contains_all_updates(self, dataset, owner_clients):
        trainer = FederatedTrainer(owner_clients, dataset.n_features, dataset.n_classes)
        record = trainer.run_round(trainer.initial_parameters(), 0)
        assert len(record.updates) == len(owner_clients)

    def test_global_model_is_average_of_locals(self, dataset, owner_clients):
        trainer = FederatedTrainer(owner_clients, dataset.n_features, dataset.n_classes)
        record = trainer.run_round(trainer.initial_parameters(), 0)
        expected = fedavg([update.parameters for update in record.updates])
        assert record.global_parameters.allclose(expected)

    def test_training_improves_test_accuracy(self, dataset, owner_clients):
        config = TrainingConfig(n_rounds=3, local_epochs=5, learning_rate=2.0)
        trainer = FederatedTrainer(owner_clients, dataset.n_features, dataset.n_classes, config)
        final = trainer.train(dataset.test_features, dataset.test_labels)
        first_round_acc = trainer.history[0].eval_metrics["accuracy"]
        last_round_acc = trainer.history[-1].eval_metrics["accuracy"]
        assert last_round_acc >= first_round_acc
        assert last_round_acc > 0.5
        assert final.dimension == trainer.initial_parameters().dimension

    def test_history_has_one_record_per_round(self, dataset, owner_clients):
        config = TrainingConfig(n_rounds=2, local_epochs=2, learning_rate=1.0)
        trainer = FederatedTrainer(owner_clients, dataset.n_features, dataset.n_classes, config)
        trainer.train()
        assert len(trainer.history) == 2

    def test_sample_weighting_changes_aggregate_when_sizes_differ(self, dataset, owners):
        unequal_clients = [
            DataOwner(o.owner_id, o.features[: 40 + 40 * i], o.labels[: 40 + 40 * i], dataset.n_classes,
                      local_epochs=3, learning_rate=1.0)
            for i, o in enumerate(owners[:3])
        ]
        unweighted = FederatedTrainer(unequal_clients, dataset.n_features, dataset.n_classes,
                                      TrainingConfig(n_rounds=1, local_epochs=3, learning_rate=1.0))
        weighted = FederatedTrainer(unequal_clients, dataset.n_features, dataset.n_classes,
                                    TrainingConfig(n_rounds=1, local_epochs=3, learning_rate=1.0, weight_by_samples=True))
        a = unweighted.run_round(unweighted.initial_parameters(), 0).global_parameters
        b = weighted.run_round(weighted.initial_parameters(), 0).global_parameters
        assert not a.allclose(b)

    def test_rejects_duplicate_owner_ids(self, dataset, owner_clients):
        with pytest.raises(ValidationError):
            FederatedTrainer(owner_clients + [owner_clients[0]], dataset.n_features, dataset.n_classes)

    def test_rejects_empty_owner_list(self, dataset):
        with pytest.raises(ValidationError):
            FederatedTrainer([], dataset.n_features, dataset.n_classes)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            TrainingConfig(n_rounds=0)
        with pytest.raises(ValidationError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValidationError):
            TrainingConfig(local_epochs=0)
