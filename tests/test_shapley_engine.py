"""Parity and regression tests for the vectorized bitmask Shapley engine.

The engine (repro.shapley.engine) must reproduce the legacy scalar pipeline:
``exact_shapley_from_utilities`` is kept as the reference oracle, and every
vectorized stage is checked against its scalar counterpart — the subset-sum
coalition construction bit-for-bit, ``score_batch`` prediction-for-prediction,
and the assembled Shapley values to 1e-9 on random games.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapleyError, ValidationError
from repro.fl.model import ModelParameters
from repro.shapley.engine import (
    MAX_PLAYERS,
    BitmaskCoalitionEngine,
    coalition_mask,
    coalition_means,
    exact_shapley_from_utility_vector,
    mask_coalition,
    player_bits,
    popcount_table,
    shapley_weight_table,
    subset_sums,
    utility_table_to_vector,
)
from repro.shapley.group import compute_group_shapley, group_shapley_round, make_groups, aggregate_group_models
from repro.shapley.montecarlo import permutation_sampling_shapley, truncated_monte_carlo_shapley
from repro.shapley.native import all_coalitions, exact_shapley_from_utilities, native_shapley
from repro.shapley.utility import AccuracyUtility, CachedUtility, CoalitionModelUtility
from repro.utils.rng import spawn_rng


def random_utility_table(players, rng, empty=0.0):
    """A random tuple-keyed coalition-utility table over all subsets."""
    table = {coalition: float(rng.normal()) for coalition in all_coalitions(players) if coalition}
    table[()] = empty
    return table


# ----------------------------------------------------------------------
# Bitmask helpers
# ----------------------------------------------------------------------


class TestBitmaskHelpers:
    def test_player_bits_sorts_players(self):
        assert player_bits(["b", "a"]) == {"a": 0, "b": 1}

    def test_mask_roundtrip(self):
        players = ["a", "b", "c", "d"]
        bits = player_bits(players)
        for coalition in all_coalitions(players):
            mask = coalition_mask(coalition, bits)
            assert mask_coalition(mask, players) == coalition

    def test_unknown_player_rejected(self):
        with pytest.raises(ShapleyError):
            coalition_mask(("ghost",), player_bits(["a"]))

    def test_duplicate_players_rejected(self):
        with pytest.raises(ShapleyError):
            player_bits(["a", "a"])

    def test_popcount_table(self):
        counts = popcount_table(4)
        assert counts.size == 16
        for mask in range(16):
            assert counts[mask] == bin(mask).count("1")

    def test_weight_table_sums_to_one(self):
        # Sum over sizes of C(n-1, s) * w[s] is the total weight each player
        # distributes over its marginal contributions: exactly 1.
        from math import comb

        n = 7
        weights = shapley_weight_table(n)
        assert sum(comb(n - 1, s) * weights[s] for s in range(n)) == pytest.approx(1.0)

    def test_player_cap_enforced(self):
        with pytest.raises(ShapleyError):
            shapley_weight_table(MAX_PLAYERS + 1)


# ----------------------------------------------------------------------
# Exact-SV assembly parity against the legacy oracle
# ----------------------------------------------------------------------


class TestExactAssemblyParity:
    @pytest.mark.parametrize("n_players", range(1, 11))
    def test_matches_legacy_on_random_games(self, n_players):
        players = [f"p{i}" for i in range(n_players)]
        for seed in range(3):
            rng = np.random.default_rng(1000 * n_players + seed)
            table = random_utility_table(players, rng)
            oracle = exact_shapley_from_utilities(players, table)
            vector = utility_table_to_vector(players, table)
            values = exact_shapley_from_utility_vector(vector)
            for position, player in enumerate(players):
                assert abs(values[position] - oracle[player]) <= 1e-9

    def test_matches_legacy_with_nonzero_empty_utility(self):
        players = ["a", "b", "c"]
        rng = np.random.default_rng(42)
        table = random_utility_table(players, rng, empty=0.37)
        oracle = exact_shapley_from_utilities(players, table)
        values = exact_shapley_from_utility_vector(utility_table_to_vector(players, table))
        for position, player in enumerate(players):
            assert abs(values[position] - oracle[player]) <= 1e-9

    def test_glove_game_closed_form(self):
        # a holds a left glove, b and c right gloves; known SVs 2/3, 1/6, 1/6.
        players = ["a", "b", "c"]
        bits = player_bits(players)
        vector = np.zeros(8)
        for coalition in all_coalitions(players):
            lefts = int("a" in coalition)
            rights = sum(1 for p in ("b", "c") if p in coalition)
            vector[coalition_mask(coalition, bits)] = float(min(lefts, rights))
        values = exact_shapley_from_utility_vector(vector)
        assert values[0] == pytest.approx(2.0 / 3.0)
        assert values[1] == pytest.approx(1.0 / 6.0)
        assert values[2] == pytest.approx(1.0 / 6.0)

    def test_efficiency_axiom(self):
        rng = np.random.default_rng(7)
        vector = rng.normal(size=64)
        values = exact_shapley_from_utility_vector(vector)
        assert values.sum() == pytest.approx(vector[-1] - vector[0], abs=1e-9)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ShapleyError):
            exact_shapley_from_utility_vector(np.zeros(6))

    def test_rejects_scalar_vector(self):
        with pytest.raises(ShapleyError):
            exact_shapley_from_utility_vector(np.zeros(1))

    def test_missing_coalition_still_raises_in_oracle(self):
        with pytest.raises(ShapleyError):
            utility_table_to_vector(["a", "b"], {("a",): 1.0, ("a", "b"): 2.0})


class TestEmptyValueHandling:
    """The exact_shapley_from_utilities empty-coalition fix (satellite task)."""

    def test_explicit_table_entry_wins(self):
        values = exact_shapley_from_utilities(["a"], {(): 0.5, ("a",): 2.0})
        assert values["a"] == pytest.approx(1.5)

    def test_caller_supplied_empty_value_is_honored(self):
        values = exact_shapley_from_utilities(["a"], {("a",): 2.0}, empty_value=0.5)
        assert values["a"] == pytest.approx(1.5)

    def test_default_remains_zero(self):
        values = exact_shapley_from_utilities(["a"], {("a",): 2.0})
        assert values["a"] == pytest.approx(2.0)

    def test_empty_value_applies_to_every_marginal(self):
        # For two players the empty utility enters both players' size-0 terms.
        table = {("a",): 1.0, ("b",): 1.0, ("a", "b"): 2.0}
        baseline = exact_shapley_from_utilities(["a", "b"], table)
        shifted = exact_shapley_from_utilities(["a", "b"], table, empty_value=1.0)
        assert baseline["a"] - shifted["a"] == pytest.approx(0.5)
        assert baseline["b"] - shifted["b"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Subset-sum DP: bit-for-bit against the sequential fold
# ----------------------------------------------------------------------


class TestSubsetSums:
    def test_matches_sequential_fold_bit_for_bit(self):
        rng = np.random.default_rng(3)
        members = rng.normal(size=(6, 17))
        sums = subset_sums(members)
        for mask in range(1, 64):
            picked = [members[i] for i in range(6) if mask >> i & 1]
            total = picked[0].copy()
            for extra in picked[1:]:
                total = total + extra
            assert np.array_equal(sums[mask], total)

    def test_coalition_means_match_model_parameters_mean(self):
        rng = np.random.default_rng(5)
        template = ModelParameters.from_mapping({"w": np.zeros((3, 4)), "b": np.zeros(4)})
        members = [template.from_vector(rng.normal(size=16)) for _ in range(5)]
        matrix = np.stack([member.to_vector() for member in members])
        means = coalition_means(matrix)
        for mask in range(1, 32):
            picked = [members[i] for i in range(5) if mask >> i & 1]
            expected = ModelParameters.mean(picked).to_vector()
            assert np.array_equal(means[mask], expected)

    def test_empty_row_is_zero(self):
        means = coalition_means(np.ones((3, 4)))
        assert np.array_equal(means[0], np.zeros(4))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValidationError):
            subset_sums(np.zeros(4))


# ----------------------------------------------------------------------
# Batched scoring
# ----------------------------------------------------------------------


class TestScoreBatch:
    def test_matches_score_vector_on_local_models(self, scorer, local_models):
        vectors = np.stack([params.to_vector() for params in local_models.values()])
        batch = scorer.score_batch(vectors)
        scalar = np.array([scorer.score_vector(vector) for vector in vectors])
        assert np.array_equal(batch, scalar)

    def test_matches_score_vector_on_random_vectors(self, dataset, scorer, rng):
        dimension = dataset.n_features * dataset.n_classes + dataset.n_classes
        vectors = rng.normal(size=(32, dimension))
        batch = scorer.score_batch(vectors)
        scalar = np.array([scorer.score_vector(vector) for vector in vectors])
        assert np.array_equal(batch, scalar)

    def test_macro_f1_metric(self, dataset, local_models, rng):
        scorer = AccuracyUtility(
            dataset.test_features, dataset.test_labels, dataset.n_classes, metric="macro_f1"
        )
        dimension = dataset.n_features * dataset.n_classes + dataset.n_classes
        vectors = np.concatenate(
            [
                np.stack([params.to_vector() for params in local_models.values()]),
                rng.normal(size=(8, dimension)),
            ]
        )
        batch = scorer.score_batch(vectors)
        scalar = np.array([scorer.score_vector(vector) for vector in vectors])
        assert np.array_equal(batch, scalar)

    def test_single_vector_promoted_to_batch(self, scorer, local_models):
        vector = next(iter(local_models.values())).to_vector()
        assert scorer.score_batch(vector).shape == (1,)
        assert scorer.score_batch(vector)[0] == scorer.score_vector(vector)

    def test_rejects_wrong_dimension(self, scorer):
        with pytest.raises(ValidationError):
            scorer.score_batch(np.zeros((2, 3)))

    def test_argmax_ties_resolve_like_scalar_path(self):
        # Softmax collapses sub-epsilon logit gaps into exact ties; the batch
        # path must apply the same decision function so both pick the same
        # class (regression for the raw-logit argmax divergence).
        scorer = AccuracyUtility(np.array([[1.0]]), np.array([1]), 2)
        vector = np.array([1e-20, 2e-20, 0.0, 0.0])
        assert scorer.score_batch(vector)[0] == scorer.score_vector(vector)


# ----------------------------------------------------------------------
# Engine end-to-end vs the scalar utility pipeline
# ----------------------------------------------------------------------


class TestBitmaskCoalitionEngine:
    def test_utility_table_matches_scalar_coalition_utility(self, scorer, local_models):
        engine = BitmaskCoalitionEngine(
            {owner: params.to_vector() for owner, params in local_models.items()}, scorer
        )
        scalar = CoalitionModelUtility(local_models, scorer)
        table = engine.utility_table()
        assert len(table) == 2 ** len(local_models) - 1
        for coalition, value in table.items():
            assert value == scalar(coalition)

    def test_shapley_values_match_legacy_oracle(self, scorer, local_models):
        engine = BitmaskCoalitionEngine(
            {owner: params.to_vector() for owner, params in local_models.items()}, scorer
        )
        values = engine.shapley_values()
        oracle = exact_shapley_from_utilities(
            sorted(local_models), engine.utility_table(include_empty=True)
        )
        for owner in local_models:
            assert abs(values[owner] - oracle[owner]) <= 1e-9

    def test_native_shapley_routes_through_engine(self, scorer, local_models):
        # The vectorized path must agree with a hand-built scalar table.
        utility = CachedUtility(CoalitionModelUtility(local_models, scorer))
        values = native_shapley(sorted(local_models), utility)
        scalar_table = {(): 0.0}
        reference = CoalitionModelUtility(local_models, scorer)
        for coalition in all_coalitions(sorted(local_models)):
            if coalition:
                scalar_table[coalition] = reference(coalition)
        oracle = exact_shapley_from_utilities(sorted(local_models), scalar_table)
        for owner in local_models:
            assert abs(values[owner] - oracle[owner]) <= 1e-9
        # The cache reports full power-set coverage, exactly as the scalar path did.
        assert utility.evaluations() == 2 ** len(local_models) - 1
        assert utility.cache_contents() == {k: v for k, v in scalar_table.items() if k}

    def test_empty_member_map_rejected(self, scorer):
        with pytest.raises(ValidationError):
            BitmaskCoalitionEngine({}, scorer)

    def test_memory_budget_rejected_with_clear_error(self, scorer, monkeypatch):
        import repro.shapley.engine as engine_module

        monkeypatch.setattr(engine_module, "MAX_MODEL_MATRIX_ELEMENTS", 8)
        with pytest.raises(ShapleyError, match="memory budget"):
            BitmaskCoalitionEngine({"a": np.zeros(4), "b": np.zeros(4)}, scorer)

    def test_utility_vector_falls_back_to_scalar_path_over_budget(
        self, scorer, local_models, monkeypatch
    ):
        import repro.shapley.engine as engine_module

        monkeypatch.setattr(engine_module, "MAX_MODEL_MATRIX_ELEMENTS", 8)
        inner = CoalitionModelUtility(local_models, scorer)
        assert inner.coalition_utility_vector(sorted(local_models)) is None
        # native_shapley still works through the constant-memory scalar loop.
        values = native_shapley(sorted(local_models), CachedUtility(inner))
        assert set(values) == set(local_models)

    def test_coalition_utility_table_scalar_fallback_matches_engine(
        self, scorer, local_models, monkeypatch
    ):
        from repro.shapley.engine import coalition_utility_table
        import repro.shapley.engine as engine_module

        vectors = {owner: params.to_vector() for owner, params in local_models.items()}
        batched = coalition_utility_table(vectors, scorer)
        monkeypatch.setattr(engine_module, "MAX_MODEL_MATRIX_ELEMENTS", 8)
        scalar = coalition_utility_table(vectors, scorer)
        assert scalar == batched

    def test_group_shapley_survives_engine_budget(self, scorer, local_models, monkeypatch):
        # Games past the engine's memory budget must complete through the
        # scalar walk instead of raising (regression: the budget error told
        # callers to use a path they could not reach).
        import repro.shapley.engine as engine_module

        baseline = group_shapley_round(local_models, 2, 13, 0, scorer)
        monkeypatch.setattr(engine_module, "MAX_MODEL_MATRIX_ELEMENTS", 8)
        fallback = group_shapley_round(local_models, 2, 13, 0, scorer)
        assert fallback.group_values == baseline.group_values
        assert fallback.user_values == baseline.user_values

    def test_score_only_scorer_still_supported_by_group_shapley(self, local_models):
        class ScoreOnly:
            """The pre-engine scorer contract: just score(ModelParameters)."""

            def score(self, parameters):
                return float(np.tanh(parameters.to_vector().mean()))

        result = group_shapley_round(local_models, 2, 13, 0, ScoreOnly())
        assert len(result.group_values) == 2
        assert all(np.isfinite(value) for value in result.group_values)


# ----------------------------------------------------------------------
# compute_group_shapley regression: bit-for-bit vs the legacy implementation
# ----------------------------------------------------------------------


def legacy_compute_group_shapley(group_models, groups, scorer):
    """The pre-engine Algorithm 1 lines 4-7, kept verbatim as the regression oracle."""
    m = len(groups)
    labels = [f"group-{j}" for j in range(m)]
    label_models = dict(zip(labels, group_models))
    utility = CachedUtility(CoalitionModelUtility(label_models, scorer))
    table = {coalition: utility(coalition) for coalition in all_coalitions(labels)}
    group_value_map = exact_shapley_from_utilities(labels, table)
    group_values = tuple(group_value_map[label] for label in labels)
    user_values = {}
    for group, value in zip(groups, group_values):
        share = value / len(group)
        for user in group:
            user_values[user] = share
    return group_values, user_values, {k: v for k, v in table.items() if k}


class TestComputeGroupShapleyRegression:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_bit_for_bit_on_seeded_workload(self, scorer, local_models, m):
        groups = make_groups(sorted(local_models), m, seed=13, round_number=0)
        group_models = aggregate_group_models(groups, local_models)
        result = compute_group_shapley(group_models, groups, scorer, round_number=0)
        legacy_values, legacy_users, legacy_table = legacy_compute_group_shapley(
            group_models, groups, scorer
        )
        assert result.group_values == legacy_values
        assert result.user_values == legacy_users
        assert result.coalition_utilities == legacy_table

    def test_round_trip_through_group_shapley_round(self, scorer, local_models):
        result = group_shapley_round(local_models, 2, 13, 0, scorer)
        groups = make_groups(sorted(local_models), 2, 13, 0)
        group_models = aggregate_group_models(groups, local_models)
        legacy_values, legacy_users, _ = legacy_compute_group_shapley(group_models, groups, scorer)
        assert result.group_values == legacy_values
        assert result.user_values == legacy_users


# ----------------------------------------------------------------------
# Monte-Carlo estimators: batched lookups must not change the estimates
# ----------------------------------------------------------------------


def legacy_permutation_sampling(players, utility, n_permutations, seed):
    """The pre-engine scalar estimator, kept verbatim as the parity oracle."""
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    rng = spawn_rng("permutation-shapley", seed, len(players), n_permutations)
    totals = {player: 0.0 for player in players}
    empty_value = cached.empty_value
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        previous_utility = empty_value
        coalition = []
        for player in order:
            coalition.append(player)
            current_utility = cached(tuple(coalition))
            totals[player] += current_utility - previous_utility
            previous_utility = current_utility
    return {player: total / n_permutations for player, total in totals.items()}, cached


def legacy_tmc(players, utility, n_permutations, tolerance, seed):
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    grand_utility = cached(tuple(players))
    rng = spawn_rng("tmc-shapley", seed, len(players), n_permutations)
    totals = {player: 0.0 for player in players}
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        previous_utility = cached.empty_value
        coalition = []
        truncated = False
        for player in order:
            if truncated:
                continue
            coalition.append(player)
            current_utility = cached(tuple(coalition))
            totals[player] += current_utility - previous_utility
            previous_utility = current_utility
            if abs(grand_utility - current_utility) <= tolerance:
                truncated = True
    return {player: total / n_permutations for player, total in totals.items()}, cached


class TestMonteCarloParity:
    def test_permutation_sampling_bit_for_bit(self, scorer, local_models):
        players = sorted(local_models)
        fast_cache = CachedUtility(CoalitionModelUtility(local_models, scorer))
        fast = permutation_sampling_shapley(players, fast_cache, n_permutations=25, seed=11)
        slow, slow_cache = legacy_permutation_sampling(
            players, CoalitionModelUtility(local_models, scorer), 25, 11
        )
        assert fast == slow
        # Same distinct coalitions evaluated: the batch path must not inflate
        # the utility-evaluation accounting the benchmarks report.
        assert fast_cache.evaluations() == slow_cache.evaluations()
        assert fast_cache.cache_contents() == slow_cache.cache_contents()

    @pytest.mark.parametrize("tolerance", [0.0, 0.05])
    def test_tmc_bit_for_bit(self, scorer, local_models, tolerance):
        players = sorted(local_models)
        fast_cache = CachedUtility(CoalitionModelUtility(local_models, scorer))
        fast = truncated_monte_carlo_shapley(
            players, fast_cache, n_permutations=25, tolerance=tolerance, seed=11
        )
        slow, slow_cache = legacy_tmc(
            players, CoalitionModelUtility(local_models, scorer), 25, tolerance, 11
        )
        assert fast == slow
        assert fast_cache.evaluations() == slow_cache.evaluations()
        assert fast_cache.cache_contents() == slow_cache.cache_contents()

    def test_tmc_vectorized_on_warm_cache(self, scorer, local_models):
        # Precompute the full utility vector, then TMC consumes pure lookups.
        players = sorted(local_models)
        cache = CachedUtility(CoalitionModelUtility(local_models, scorer))
        assert cache.coalition_utility_vector(players) is not None
        warm = truncated_monte_carlo_shapley(players, cache, n_permutations=25, tolerance=0.05, seed=11)
        slow, _ = legacy_tmc(players, CoalitionModelUtility(local_models, scorer), 25, 0.05, 11)
        assert warm == slow

    def test_generic_callable_still_works(self):
        private = {"a": 1.0, "b": 2.0, "c": 3.0}
        estimate = permutation_sampling_shapley(
            list(private), lambda s: sum(private[p] for p in s), n_permutations=4, seed=0
        )
        for player, value in private.items():
            assert estimate[player] == pytest.approx(value)


# ----------------------------------------------------------------------
# CachedUtility batching plumbing
# ----------------------------------------------------------------------


class TestCachedUtilityBatching:
    def test_evaluate_batch_memoizes_and_reuses(self):
        calls = []

        def utility(coalition):
            calls.append(coalition)
            return float(len(coalition))

        cached = CachedUtility(utility)
        cached(("a",))
        values = cached.evaluate_batch([("a",), ("a", "b"), (), ("a",)])
        assert np.array_equal(values, [1.0, 2.0, 0.0, 1.0])
        # Only the genuinely new coalition was evaluated.
        assert calls == [("a",), ("a", "b")]

    def test_cached_values_requires_full_coverage(self):
        cached = CachedUtility(lambda s: float(len(s)))
        cached(("a",))
        assert cached.cached_values([("a",), ("b",)]) is None
        cached(("b",))
        assert np.array_equal(cached.cached_values([("a",), ("b",), ()]), [1.0, 1.0, 0.0])

    def test_preload_seeds_the_memo(self):
        calls = []

        def utility(coalition):
            calls.append(coalition)
            return -1.0

        cached = CachedUtility(utility)
        cached.preload({("a",): 0.5, (): 9.0})
        assert cached(("a",)) == 0.5
        assert calls == []
        assert cached.evaluations() == 1

    def test_coalition_utility_vector_populates_cache(self, scorer, local_models):
        cached = CachedUtility(CoalitionModelUtility(local_models, scorer))
        vector = cached.coalition_utility_vector(sorted(local_models))
        assert vector is not None
        assert vector.size == 2 ** len(local_models)
        assert cached.evaluations() == vector.size - 1
        reference = CoalitionModelUtility(local_models, scorer)
        for coalition, value in cached.cache_contents().items():
            assert value == reference(coalition)

    def test_coalition_utility_vector_none_for_plain_callables(self):
        cached = CachedUtility(lambda s: float(len(s)))
        assert cached.coalition_utility_vector(["a", "b"]) is None


class TestPlayerCapConsistency:
    def test_vector_game_cap_matches_the_engine_cap(self):
        # utility.VECTOR_MAX_PLAYERS is a literal copy of engine.MAX_PLAYERS
        # (a top-level import would be circular); this regression test is what
        # keeps the two from drifting apart again.
        from repro.shapley import engine
        from repro.shapley.utility import RetrainUtility

        assert RetrainUtility.VECTOR_MAX_PLAYERS == engine.MAX_PLAYERS
