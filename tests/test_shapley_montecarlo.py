"""Tests for Monte-Carlo Shapley approximations (repro.shapley.montecarlo)."""

from __future__ import annotations

import pytest

from repro.exceptions import ShapleyError
from repro.shapley.montecarlo import permutation_sampling_shapley, truncated_monte_carlo_shapley
from repro.shapley.native import native_shapley
from repro.shapley.utility import CachedUtility


def additive_utility(private):
    return lambda coalition: sum(private[p] for p in coalition)


class TestPermutationSampling:
    def test_exact_for_additive_games(self):
        # For additive games every permutation gives identical marginals, so the
        # estimator is exact after a single permutation.
        private = {"a": 1.0, "b": 2.0, "c": 3.0}
        estimate = permutation_sampling_shapley(list(private), additive_utility(private), n_permutations=1)
        for player, value in private.items():
            assert estimate[player] == pytest.approx(value)

    def test_converges_to_native_values(self):
        def utility(coalition):
            value = len(coalition) ** 1.5
            if {"a", "b"}.issubset(coalition):
                value += 2.0
            return value

        players = ["a", "b", "c", "d"]
        exact = native_shapley(players, utility)
        estimate = permutation_sampling_shapley(players, utility, n_permutations=2000, seed=3)
        for player in players:
            assert estimate[player] == pytest.approx(exact[player], abs=0.15)

    def test_efficiency_holds_per_estimate(self):
        def utility(coalition):
            return float(len(coalition)) ** 2

        players = ["a", "b", "c"]
        estimate = permutation_sampling_shapley(players, utility, n_permutations=50, seed=1)
        assert sum(estimate.values()) == pytest.approx(utility(tuple(players)))

    def test_deterministic_for_seed(self):
        def utility(coalition):
            return float(len(coalition))

        players = ["a", "b", "c"]
        a = permutation_sampling_shapley(players, utility, n_permutations=20, seed=5)
        b = permutation_sampling_shapley(players, utility, n_permutations=20, seed=5)
        assert a == b

    def test_rejects_bad_arguments(self):
        with pytest.raises(ShapleyError):
            permutation_sampling_shapley([], lambda s: 0.0)
        with pytest.raises(ShapleyError):
            permutation_sampling_shapley(["a"], lambda s: 0.0, n_permutations=0)


class TestTruncatedMonteCarlo:
    def test_matches_plain_sampling_when_tolerance_is_zero(self):
        def utility(coalition):
            return float(len(coalition))

        players = ["a", "b", "c", "d"]
        plain = permutation_sampling_shapley(players, utility, n_permutations=40, seed=7)
        truncated = truncated_monte_carlo_shapley(players, utility, n_permutations=40, tolerance=0.0, seed=7)
        for player in players:
            assert truncated[player] == pytest.approx(plain[player])

    def test_truncation_saves_utility_evaluations(self):
        # Utility saturates once 2 of 6 players are present, so TMC should stop
        # scanning permutations early and evaluate far fewer coalitions.
        players = [f"p{i}" for i in range(6)]

        def utility(coalition):
            return min(len(coalition), 2) / 2.0

        plain_cache = CachedUtility(utility)
        permutation_sampling_shapley(players, plain_cache, n_permutations=60, seed=2)
        tmc_cache = CachedUtility(utility)
        truncated_monte_carlo_shapley(players, tmc_cache, n_permutations=60, tolerance=0.0, seed=2)
        assert tmc_cache.evaluations() <= plain_cache.evaluations()

    def test_estimates_remain_close_to_exact_under_truncation(self):
        private = {"a": 1.0, "b": 2.0, "c": 0.5}
        exact = native_shapley(list(private), additive_utility(private))
        estimate = truncated_monte_carlo_shapley(
            list(private), additive_utility(private), n_permutations=500, tolerance=0.01, seed=4
        )
        for player in private:
            assert estimate[player] == pytest.approx(exact[player], abs=0.15)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ShapleyError):
            truncated_monte_carlo_shapley(["a"], lambda s: 0.0, tolerance=-1.0)

    def test_rejects_empty_players(self):
        with pytest.raises(ShapleyError):
            truncated_monte_carlo_shapley([], lambda s: 0.0)


class TestCrossPermutationBatching:
    """Batching rounds of permutations must not change the estimate at all."""

    @staticmethod
    def _lumpy_utility(coalition):
        value = len(coalition) ** 1.3
        if {"a", "c"}.issubset(coalition):
            value += 1.5
        if {"b", "d", "e"}.issubset(coalition):
            value -= 0.75
        return value

    def test_batched_equals_the_historical_per_permutation_pattern(self):
        players = ["a", "b", "c", "d", "e"]
        historical = permutation_sampling_shapley(
            players, self._lumpy_utility, n_permutations=120, seed=9, permutation_batch=1
        )
        for batch in (7, 64, None):
            batched = permutation_sampling_shapley(
                players, self._lumpy_utility, n_permutations=120, seed=9, permutation_batch=batch
            )
            assert batched == historical  # bit-for-bit, not approx

    def test_batched_run_uses_one_batched_evaluation_per_round(self):
        players = ["a", "b", "c", "d"]
        calls = []

        class RecordingCache(CachedUtility):
            def evaluate_batch(self, coalitions):
                calls.append(len(coalitions))
                return super().evaluate_batch(coalitions)

        cache = RecordingCache(self._lumpy_utility)
        permutation_sampling_shapley(players, cache, n_permutations=32, seed=1, permutation_batch=None)
        assert calls == [32 * len(players)]

    def test_batch_size_does_not_change_evaluation_coverage(self):
        players = ["a", "b", "c", "d"]
        unbatched = CachedUtility(self._lumpy_utility)
        permutation_sampling_shapley(players, unbatched, n_permutations=50, seed=3, permutation_batch=1)
        batched = CachedUtility(self._lumpy_utility)
        permutation_sampling_shapley(players, batched, n_permutations=50, seed=3, permutation_batch=None)
        assert batched.cache_contents() == unbatched.cache_contents()

    def test_rejects_non_positive_batch(self):
        with pytest.raises(ShapleyError):
            permutation_sampling_shapley(["a", "b"], lambda s: 0.0, permutation_batch=0)
