"""Shared test helpers: simple contracts and chain factories."""

from __future__ import annotations

from repro.blockchain.contracts.base import Contract, ContractContext, ContractRuntime, contract_method
from repro.blockchain.transaction import Transaction
from repro.exceptions import ContractError


class CounterContract(Contract):
    """A tiny contract used to exercise the runtime and chain machinery."""

    name = "counter"

    @contract_method
    def increment(self, ctx: ContractContext, amount: int = 1) -> int:
        """Increase the counter and return its new value."""
        if amount < 0:
            raise ContractError("amount must be non-negative")
        value = ctx.get("value", 0) + int(amount)
        ctx.set("value", value)
        ctx.emit("Incremented", by=ctx.sender, amount=int(amount), value=value)
        return value

    @contract_method
    def get(self, ctx: ContractContext) -> int:
        """Read the current counter value."""
        return ctx.get("value", 0)

    @contract_method
    def fail(self, ctx: ContractContext) -> None:
        """Write something and then fail, to exercise rollback."""
        ctx.set("value", 999_999)
        raise ContractError("intentional failure")

    def not_callable(self, ctx: ContractContext) -> None:
        """A method without the decorator; must not be invocable via transactions."""


def counter_runtime_factory() -> ContractRuntime:
    """Runtime with only the counter contract registered."""
    runtime = ContractRuntime()
    runtime.register(CounterContract())
    return runtime


def counter_tx(sender: str, nonce: int, amount: int = 1, method: str = "increment") -> Transaction:
    """Convenience builder for counter transactions."""
    args = {"amount": amount} if method == "increment" else {}
    return Transaction(sender=sender, contract="counter", method=method, args=args, nonce=nonce)
