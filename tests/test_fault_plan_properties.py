"""Property tests for FaultPlan serialization and seed-stable fault decisions.

Satellite contract: a ``FaultPlan`` survives a JSON round-trip bit-for-bit,
and the per-link fault decision sequence is a pure function of ``(plan seed,
link, per-link message index)`` — the same plan and seed yield identical
drop/duplicate/latency decisions no matter how the global delivery order
interleaves, which is exactly what lets the single-threaded simulation and
the concurrent asyncio transport agree on every fault.
"""

from __future__ import annotations

import json
import random
import tempfile
from collections import defaultdict

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.blockchain.network import NetworkStats  # noqa: E402
from repro.blockchain.transport import (  # noqa: E402
    AsyncTransport,
    FaultInjectingTransport,
    FaultPlan,
    LinkFault,
    LinkFaultDecider,
    PartitionSpec,
)

NODE_IDS = [f"n{i}" for i in range(6)]

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
node_ids = st.sampled_from(NODE_IDS)
topic_tuples = st.lists(
    st.sampled_from(["tx", "proposal", "commit", "sync"]), max_size=3, unique=True
).map(tuple)

link_faults = st.builds(
    LinkFault,
    drop_probability=probabilities,
    duplicate_probability=probabilities,
    latency_ticks=st.integers(0, 5),
    response_timeout=st.booleans(),
    topics=topic_tuples,
)

link_keys = st.builds(
    "{}->{}".format,
    st.one_of(node_ids, st.just("*")),
    st.one_of(node_ids, st.just("*")),
)


@st.composite
def partition_specs(draw):
    nodes = draw(st.lists(node_ids, min_size=2, max_size=6, unique=True))
    cut = draw(st.integers(1, len(nodes) - 1))
    start = draw(st.integers(0, 5))
    heal = draw(st.one_of(st.none(), st.integers(start + 1, start + 6)))
    return PartitionSpec(
        name=f"cut-{draw(st.integers(0, 99))}",
        cells=(tuple(nodes[:cut]), tuple(nodes[cut:])),
        direction=draw(st.sampled_from(["both", "inbound", "outbound"])),
        start_tick=start,
        heal_tick=heal,
    )


fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**63 - 1),
    drop_probability=probabilities,
    duplicate_probability=probabilities,
    latency_ticks=st.integers(0, 5),
    timeout_ticks=st.integers(0, 5),
    partitions=st.lists(partition_specs(), max_size=3).map(tuple),
    links=st.dictionaries(link_keys, link_faults, max_size=4),
)


class TestFaultPlanRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(plan=fault_plans)
    def test_json_round_trip_is_identity(self, plan):
        payload = json.loads(json.dumps(plan.to_dict()))
        restored = FaultPlan.from_dict(payload)
        assert restored == plan
        assert restored.to_dict() == plan.to_dict()

    @settings(max_examples=100, deadline=None)
    @given(fault=link_faults)
    def test_link_fault_round_trip_is_identity(self, fault):
        assert LinkFault.from_dict(json.loads(json.dumps(fault.to_dict()))) == fault


def _per_link(log):
    """Group a decider log into {link: [(index, decision), ...]} sequences."""
    grouped = defaultdict(list)
    for link, index, decision in log:
        grouped[link].append((index, decision))
    return {link: sorted(entries) for link, entries in grouped.items()}


class TestDeciderSeedStability:
    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 2**32),
        counts=st.dictionaries(
            st.tuples(node_ids, node_ids), st.integers(1, 5), min_size=1, max_size=6
        ),
        order_seed=st.integers(0, 10_000),
    )
    def test_decisions_are_independent_of_global_order(self, seed, counts, order_seed):
        """Any interleaving of per-link queries yields identical sequences."""
        fault = LinkFault(drop_probability=0.5, duplicate_probability=0.5, latency_ticks=3)
        queries = [pair for pair, n in sorted(counts.items()) for _ in range(n)]

        sequential = LinkFaultDecider(seed)
        for sender, recipient in queries:
            sequential.decide(sender, recipient, fault, timeout_ticks=2)

        shuffled = list(queries)
        random.Random(order_seed).shuffle(shuffled)
        interleaved = LinkFaultDecider(seed)
        for sender, recipient in shuffled:
            interleaved.decide(sender, recipient, fault, timeout_ticks=2)

        assert _per_link(sequential.log) == _per_link(interleaved.log)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32), fault=link_faults, timeout=st.integers(0, 5))
    def test_two_deciders_with_one_seed_agree_exactly(self, seed, fault, timeout):
        a, b = LinkFaultDecider(seed), LinkFaultDecider(seed)
        for _ in range(8):
            assert a.decide("s", "r", fault, timeout) == b.decide("s", "r", fault, timeout)
        assert a.log == b.log


class TestCrossTransportDecisions:
    """Same plan + seed ⇒ identical per-link decision sequences on the
    single-threaded simulation transport and the real-socket async transport."""

    PLAN = FaultPlan(
        seed=29,
        drop_probability=0.4,
        duplicate_probability=0.3,
        latency_ticks=2,
        timeout_ticks=5,
    )
    SENDS = 24

    def _sim_log(self):
        transport = FaultInjectingTransport(plan=self.PLAN, per_link_rng=True)
        stats = NetworkStats()
        for i in range(self.SENDS):
            transport.deliver_send("a", "b", "tx", i, lambda s, p: p, stats)
        return _per_link(transport.decider.log)

    def _async_log(self):
        with tempfile.TemporaryDirectory(prefix="fp-") as tmp:
            peers = {"a": f"{tmp}/a.sock", "b": f"{tmp}/b.sock"}
            sender = AsyncTransport(
                "a", peers, plan=self.PLAN, request_timeout=5.0, tick_seconds=0.0
            )
            receiver = AsyncTransport(
                "b", peers, plan=self.PLAN, request_timeout=5.0, tick_seconds=0.0
            )
            try:
                sender.serve(lambda s, t, p: p)
                receiver.serve(lambda s, t, p: p)
                stats = NetworkStats()
                for i in range(self.SENDS):
                    sender.deliver_send("a", "b", "tx", i, lambda s, p: p, stats)
            finally:
                sender.stop()
                receiver.stop()
            return _per_link(sender.decider.log)

    @pytest.mark.timeout(120)
    def test_sim_and_async_transports_draw_identical_decisions(self):
        assert self._sim_log() == self._async_log()
