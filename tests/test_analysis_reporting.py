"""Tests for plain-text reporting helpers (repro.analysis.reporting)."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_bar_chart, render_series, render_table
from repro.exceptions import ValidationError


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        assert "name" in text and "value" in text
        assert "alpha" in text and "22" in text

    def test_row_count(self):
        text = render_table(["a"], [["1"], ["2"], ["3"]])
        assert len(text.splitlines()) == 2 + 3  # header + separator + rows

    def test_columns_are_aligned(self):
        text = render_table(["col"], [["x"], ["longer-cell"]])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) == 1

    def test_empty_rows_allowed(self):
        text = render_table(["only-header"], [])
        assert "only-header" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["1"]])

    def test_no_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table([], [])


class TestRenderBarChart:
    def test_larger_values_get_longer_bars(self):
        text = render_bar_chart({"small": 1.0, "large": 4.0}, width=20)
        lines = {line.split(" ")[0]: line for line in text.splitlines()}
        assert lines["large"].count("█") > lines["small"].count("█")

    def test_negative_values_use_alternate_fill(self):
        text = render_bar_chart({"up": 1.0, "down": -1.0})
        assert "▒" in text and "█" in text

    def test_all_zero_values_render_empty_bars(self):
        text = render_bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_values_can_be_hidden(self):
        text = render_bar_chart({"a": 0.5}, show_values=False)
        assert "+0.5" not in text

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            render_bar_chart({})

    def test_bad_width_rejected(self):
        with pytest.raises(ValidationError):
            render_bar_chart({"a": 1.0}, width=0)


class TestRenderSeries:
    def test_one_line_per_series(self):
        text = render_series({"owner-0": [0.1, 0.2], "owner-1": [0.3]})
        assert len(text.splitlines()) == 2

    def test_values_are_signed_and_rounded(self):
        text = render_series({"x": [0.123456]}, precision=3)
        assert "+0.123" in text

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            render_series({})
