"""Concurrency-determinism harness for the asyncio miner swarm.

The acceptance criterion of the async transport is brutal and simple: a swarm
of N miner OS processes gossiping pickled frames over Unix sockets must end on
a head *byte-identical* to the single-process :class:`DeterministicTransport`
run of the same config — clean, repeatedly, at 8/16/64 peers, and under a
seeded partition-heal ``FaultPlan``.  Every test carries a hard timeout: a
hung swarm must fail loudly, not wedge the suite.
"""

from __future__ import annotations

import pytest

from repro.blockchain.swarm import (
    SwarmConfig,
    run_reference_workload,
    run_swarm_workload,
)
from repro.blockchain.transport import FaultPlan, LinkFault, PartitionSpec

# Pinned head hashes of the deterministic reference workload.  They depend
# only on (rounds, txs_per_round, seed, state_root_version) — never on the
# peer count or the transport — so every swarm size below pins to one of
# these two literals.
PIN_HEAD_ROUNDS2 = "201fce816903af9e34950fc7443f66aa8892f843f9f9daed6cf3ddad8537e16a"
PIN_HEAD_ROUNDS3 = "4f8ac2d6cbfa0732469f260a38fbf2b4e8b6939750c230268b2ce70ae7e50b8d"


def _assert_parity(config: SwarmConfig, pin: str, **run_kwargs) -> dict:
    reference = run_reference_workload(config)
    assert reference["head"] == pin, "reference workload drifted off its pin"
    result = run_swarm_workload(config, **run_kwargs)
    assert result["head"] == reference["head"]
    assert result["height"] == reference["height"] == config.rounds
    # Convergence is global: every surviving replica reports the same head.
    assert set(result["heads"].values()) == {reference["head"]}
    # And the swarm chain itself audits clean (replay + version roots).
    assert result["audit"]["height"] == config.rounds
    return result


@pytest.mark.timeout(120)
@pytest.mark.parametrize("rep", range(3))
def test_swarm_parity_8_peers(rep: int) -> None:
    """8 miner processes land byte-for-byte on the deterministic head, 3x."""
    config = SwarmConfig(peers=8, rounds=3, use_storage=False)
    _assert_parity(config, PIN_HEAD_ROUNDS3)


@pytest.mark.timeout(180)
@pytest.mark.parametrize("rep", range(3))
def test_swarm_parity_16_peers(rep: int) -> None:
    """16 miner processes land byte-for-byte on the deterministic head, 3x."""
    config = SwarmConfig(peers=16, rounds=2, use_storage=False)
    _assert_parity(config, PIN_HEAD_ROUNDS2)


@pytest.mark.timeout(420)
def test_swarm_parity_64_peers() -> None:
    """Acceptance: a 64-process swarm matches the single-process reference."""
    config = SwarmConfig(peers=64, rounds=2, use_storage=False)
    result = _assert_parity(config, PIN_HEAD_ROUNDS2)
    assert len(result["heads"]) == 64


@pytest.mark.timeout(420)
def test_swarm_parity_64_peers_under_fault_plan() -> None:
    """Acceptance: same head under a seeded FaultPlan with partition-heal.

    A minority cell of 8 miners is cut off mid-run and healed; one link gets
    deterministic latency and another deterministically drops tx gossip.
    Retries re-propose identical blocks and the healed minority resyncs, so
    the final head must still be byte-identical to the clean reference.
    """
    cell = tuple(f"miner-{i:03d}" for i in range(40, 48))
    plan = FaultPlan(
        seed=11,
        timeout_ticks=2,
        partitions=(
            PartitionSpec(name="minority-cut", cells=(cell,), start_tick=2, heal_tick=4),
        ),
        links=(
            ("miner-010->*", LinkFault(latency_ticks=1)),
            ("*->miner-020", LinkFault(drop_probability=0.3, topics=("tx",))),
        ),
    )
    config = SwarmConfig(peers=64, rounds=2, use_storage=False, fault_plan=plan)
    result = _assert_parity(config, PIN_HEAD_ROUNDS2)
    # The plan must have actually bitten: the transports saw fault activity.
    reports = [r for r in result["reports"].values() if not isinstance(r, Exception)]
    assert reports, "no per-peer delivery reports collected"
    faults_seen = sum(
        r["transport"].get("partitioned", 0) + r["transport"].get("fault_drops", 0)
        for r in reports
    )
    assert faults_seen > 0, "fault plan never fired — the test is vacuous"


@pytest.mark.timeout(180)
def test_swarm_kill_restart_resyncs_from_storage() -> None:
    """A killed miner restarted from its SQLite store rejoins and converges.

    The victims are taken from the top of the id range so neither is a
    scheduled leader — the committed blocks stay identical to the reference
    while the drill exercises the crash/restart/resync path for real.
    """
    config = SwarmConfig(peers=8, rounds=3)
    kill_schedule = {1: ("miner-006", "miner-007")}
    result = _assert_parity(config, PIN_HEAD_ROUNDS3, kill_schedule=kill_schedule)
    reports = result["reports"]
    for victim in ("miner-006", "miner-007"):
        report = reports[victim]
        assert not isinstance(report, Exception)
        assert report["resyncs"], f"{victim} restarted without resyncing"
        assert report["restored"], f"{victim} did not restore from its store"


@pytest.mark.timeout(120)
def test_swarm_delivery_reports_balance() -> None:
    """Per-peer delivery accounting must balance across real concurrency.

    Every peer's merged NetworkStats must satisfy, per topic::

        attempted == delivered + dropped + partitioned + timed_out + errors

    which is exactly the invariant the per-peer counter buckets exist to
    protect (a racy shared ``dict += 1`` loses counts under the thread pool).
    """
    config = SwarmConfig(peers=8, rounds=2, use_storage=False)
    result = run_swarm_workload(config)
    assert result["head"] == PIN_HEAD_ROUNDS2
    checked = 0
    for peer_id, report in sorted(result["reports"].items()):
        assert not isinstance(report, Exception), f"{peer_id}: {report}"
        for topic, counters in report["delivery"]["by_topic"].items():
            outcomes = (
                counters["delivered"]
                + counters["dropped"]
                + counters["partitioned"]
                + counters["timed_out"]
                + counters["errors"]
            )
            assert counters["attempted"] == outcomes, (
                f"{peer_id}/{topic}: attempted {counters['attempted']} != "
                f"sum of outcomes {outcomes}"
            )
            checked += 1
    assert checked > 0
