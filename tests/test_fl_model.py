"""Tests for the model parameter container (repro.fl.model)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelShapeError, ValidationError
from repro.fl.model import ModelParameters


def params(weights=None, bias=None):
    weights = np.arange(6, dtype=np.float64).reshape(2, 3) if weights is None else weights
    bias = np.array([1.0, -1.0, 0.5]) if bias is None else bias
    return ModelParameters.from_mapping({"weights": weights, "bias": bias})


class TestConstruction:
    def test_from_mapping_preserves_order(self):
        assert params().names == ["weights", "bias"]

    def test_arrays_are_copied(self):
        weights = np.zeros((2, 2))
        model = ModelParameters.from_mapping({"w": weights})
        weights[0, 0] = 99
        assert model.get("w")[0, 0] == 0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            ModelParameters(arrays=(("w", np.zeros(2)), ("w", np.zeros(2))))

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            ModelParameters(arrays=(("", np.zeros(2)),))

    def test_zeros_like(self):
        zero = ModelParameters.zeros_like(params())
        assert zero.shapes() == params().shapes()
        assert zero.norm() == 0.0

    def test_get_unknown_name_rejected(self):
        with pytest.raises(ModelShapeError):
            params().get("missing")

    def test_dimension(self):
        assert params().dimension == 9


class TestVectorRoundtrip:
    def test_to_from_vector_roundtrip(self):
        model = params()
        rebuilt = model.from_vector(model.to_vector())
        assert model.allclose(rebuilt)

    def test_from_vector_rejects_wrong_length(self):
        with pytest.raises(ModelShapeError):
            params().from_vector(np.zeros(5))

    def test_vector_order_is_declaration_order(self):
        model = params()
        vector = model.to_vector()
        assert np.array_equal(vector[:6], model.get("weights").ravel())
        assert np.array_equal(vector[6:], model.get("bias"))

    def test_empty_parameters_flatten_to_empty_vector(self):
        empty = ModelParameters(arrays=())
        assert empty.to_vector().size == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=9, max_size=9))
    def test_property_roundtrip_any_vector(self, values):
        model = params()
        vector = np.array(values)
        assert np.allclose(model.from_vector(vector).to_vector(), vector)


class TestArithmetic:
    def test_add_subtract(self):
        a, b = params(), params()
        assert a.add(b).allclose(a.scale(2.0))
        assert a.subtract(b).norm() == 0.0

    def test_scale(self):
        assert np.allclose(params().scale(3.0).to_vector(), 3.0 * params().to_vector())

    def test_incompatible_shapes_rejected(self):
        other = ModelParameters.from_mapping({"weights": np.zeros((3, 3)), "bias": np.zeros(3)})
        with pytest.raises(ModelShapeError):
            params().add(other)

    def test_mean(self):
        a = params()
        b = a.scale(3.0)
        assert ModelParameters.mean([a, b]).allclose(a.scale(2.0))

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ValidationError):
            ModelParameters.mean([])

    def test_allclose_tolerance(self):
        a = params()
        nudged = a.from_vector(a.to_vector() + 1e-12)
        assert a.allclose(nudged)
        far = a.from_vector(a.to_vector() + 1.0)
        assert not a.allclose(far)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-10, 10), min_size=9, max_size=9),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_mean_matches_numpy(self, vectors):
        template = params()
        models = [template.from_vector(np.array(vector)) for vector in vectors]
        expected = np.mean([np.array(v) for v in vectors], axis=0)
        assert np.allclose(ModelParameters.mean(models).to_vector(), expected)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-10, 10), min_size=9, max_size=9), st.floats(-5, 5))
    def test_property_scale_distributes_over_add(self, values, factor):
        template = params()
        model = template.from_vector(np.array(values))
        left = model.add(model).scale(factor)
        right = model.scale(factor).add(model.scale(factor))
        assert np.allclose(left.to_vector(), right.to_vector(), atol=1e-9)
