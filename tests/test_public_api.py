"""Tests for the top-level public API surface (repro.__init__)."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} is declared in __all__ but missing"

    def test_key_entry_points_are_the_real_objects(self):
        from repro.core.protocol import BlockchainFLProtocol
        from repro.shapley.native import native_shapley

        assert repro.BlockchainFLProtocol is BlockchainFLProtocol
        assert repro.native_shapley is native_shapley

    def test_subpackages_import_cleanly(self):
        import repro.analysis
        import repro.blockchain
        import repro.core
        import repro.crypto
        import repro.datasets
        import repro.fl
        import repro.shapley

        for module in (repro.analysis, repro.blockchain, repro.core, repro.crypto, repro.datasets, repro.fl, repro.shapley):
            assert module.__doc__, f"{module.__name__} is missing a module docstring"

    def test_subpackage_all_exports_resolve(self):
        import repro.blockchain
        import repro.crypto
        import repro.fl
        import repro.shapley

        for module in (repro.blockchain, repro.crypto, repro.fl, repro.shapley):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
