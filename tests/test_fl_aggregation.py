"""Tests for FedAvg and weighted aggregation (repro.fl.aggregation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.fl.aggregation import fedavg, weighted_average
from repro.fl.model import ModelParameters


def model(value):
    return ModelParameters.from_mapping({"w": np.full(3, float(value))})


class TestWeightedAverage:
    def test_equal_weights_is_mean(self):
        result = weighted_average([model(1), model(3)], [1, 1])
        assert result.allclose(model(2))

    def test_weights_are_normalized(self):
        a = weighted_average([model(1), model(3)], [2, 2])
        b = weighted_average([model(1), model(3)], [0.5, 0.5])
        assert a.allclose(b)

    def test_zero_weight_excludes_model(self):
        result = weighted_average([model(1), model(100)], [1, 0])
        assert result.allclose(model(1))

    def test_rejects_empty_model_list(self):
        with pytest.raises(ValidationError):
            weighted_average([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            weighted_average([model(1)], [1, 2])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            weighted_average([model(1), model(2)], [1, -1])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValidationError):
            weighted_average([model(1), model(2)], [0, 0])


class TestFedAvg:
    def test_unweighted_is_plain_mean(self):
        assert fedavg([model(0), model(4)]).allclose(model(2))

    def test_sample_count_weighting(self):
        result = fedavg([model(0), model(4)], sample_counts=[3, 1])
        assert result.allclose(model(1))

    def test_single_model_is_identity(self):
        assert fedavg([model(7)]).allclose(model(7))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=8))
    def test_property_unweighted_matches_numpy_mean(self, values):
        models = [model(v) for v in values]
        assert np.allclose(fedavg(models).to_vector(), np.full(3, np.mean(values)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-10, 10), st.integers(1, 20)),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_weighted_matches_numpy_average(self, pairs):
        values = [v for v, _ in pairs]
        counts = [c for _, c in pairs]
        expected = np.average(values, weights=counts)
        result = fedavg([model(v) for v in values], sample_counts=counts)
        assert np.allclose(result.to_vector(), np.full(3, expected))
