"""Tests for dropout-resilient secure aggregation (repro.crypto.dropout)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.dropout import DoubleMaskedUpdate, DropoutRecoveryAggregator, DropoutResilientMasker
from repro.crypto.fixed_point import FixedPointCodec
from repro.exceptions import MaskingError, ValidationError

N_OWNERS = 5
THRESHOLD = 3
DIMENSION = 40
ROUND = 2


@pytest.fixture(scope="module")
def cohort():
    """Key pairs, public keys, weights, and double-masked updates for 5 owners."""
    dh_params = DHParameters.for_testing(bits=64, seed="dropout-tests")
    owners = [f"owner-{i}" for i in range(N_OWNERS)]
    keypairs = {o: DHKeyPair.generate(dh_params, o) for o in owners}
    public_keys = {o: kp.public_key for o, kp in keypairs.items()}
    rng = np.random.default_rng(9)
    weights = {o: rng.normal(scale=2.0, size=DIMENSION) for o in owners}
    codec = FixedPointCodec()
    updates = {}
    for owner in owners:
        masker = DropoutResilientMasker(owner, keypairs[owner], public_keys, THRESHOLD, codec=codec)
        updates[owner] = masker.mask(weights[owner], ROUND)
    return dh_params, owners, public_keys, weights, codec, updates


def collect_shares(updates, owners_needed, share_kind, n_shares=THRESHOLD):
    """Gather ``n_shares`` shares of each needed owner from the peers' update objects."""
    collected = {}
    for owner in owners_needed:
        shares = list(getattr(updates[owner], share_kind).values())
        collected[owner] = shares[:n_shares]
    return collected


class TestDoubleMasking:
    def test_update_carries_shares_for_every_peer(self, cohort):
        _, owners, _, _, _, updates = cohort
        update = updates[owners[0]]
        assert set(update.self_mask_shares) == set(owners) - {owners[0]}
        assert set(update.key_shares) == set(owners) - {owners[0]}

    def test_payload_is_not_the_plain_encoding(self, cohort):
        _, owners, _, weights, codec, updates = cohort
        plain = codec.encode(weights[owners[0]])
        assert not np.array_equal(updates[owners[0]].payload, plain)

    def test_naive_sum_without_recovery_is_garbage(self, cohort):
        # Unlike plain pairwise masking, the self masks do NOT cancel in the sum,
        # so summing payloads alone must not reveal the aggregate.
        _, owners, _, weights, codec, updates = cohort
        total = np.zeros(DIMENSION, dtype=np.uint64)
        for owner in owners:
            total = codec.add(total, updates[owner].payload)
        decoded = codec.decode_sum(total, n_summands=len(owners))
        expected = np.sum([weights[o] for o in owners], axis=0)
        assert not np.allclose(decoded, expected, atol=1e-2)

    def test_threshold_validation(self, cohort):
        dh_params, owners, public_keys, _, codec, _ = cohort
        keypair = DHKeyPair.generate(dh_params, owners[0])
        with pytest.raises(ValidationError):
            DropoutResilientMasker(owners[0], keypair, public_keys, threshold=0, codec=codec)
        with pytest.raises(ValidationError):
            DropoutResilientMasker(owners[0], keypair, public_keys, threshold=N_OWNERS + 1, codec=codec)


class TestRecoveryAggregation:
    def test_no_dropout_recovers_full_sum(self, cohort):
        dh_params, owners, public_keys, weights, codec, updates = cohort
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        total = aggregator.aggregate_sum(
            surviving_updates=[updates[o] for o in owners],
            all_owner_public_keys=public_keys,
            dropped_owner_ids=[],
            collected_self_shares=collect_shares(updates, owners, "self_mask_shares"),
            collected_key_shares={},
            dh_params=dh_params,
            round_number=ROUND,
        )
        expected = np.sum([weights[o] for o in owners], axis=0)
        assert np.allclose(total, expected, atol=len(owners) * 2.0 / codec.scale)

    def test_single_dropout_recovers_survivor_sum(self, cohort):
        dh_params, owners, public_keys, weights, codec, updates = cohort
        dropped = owners[2]
        survivors = [o for o in owners if o != dropped]
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        total = aggregator.aggregate_sum(
            surviving_updates=[updates[o] for o in survivors],
            all_owner_public_keys=public_keys,
            dropped_owner_ids=[dropped],
            collected_self_shares=collect_shares(updates, survivors, "self_mask_shares"),
            collected_key_shares=collect_shares(updates, [dropped], "key_shares"),
            dh_params=dh_params,
            round_number=ROUND,
        )
        expected = np.sum([weights[o] for o in survivors], axis=0)
        assert np.allclose(total, expected, atol=len(survivors) * 2.0 / codec.scale)

    def test_two_dropouts_recover_survivor_mean(self, cohort):
        dh_params, owners, public_keys, weights, codec, updates = cohort
        dropped = [owners[0], owners[4]]
        survivors = [o for o in owners if o not in dropped]
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        mean = aggregator.aggregate_mean(
            [updates[o] for o in survivors],
            all_owner_public_keys=public_keys,
            dropped_owner_ids=dropped,
            collected_self_shares=collect_shares(updates, survivors, "self_mask_shares"),
            collected_key_shares=collect_shares(updates, dropped, "key_shares"),
            dh_params=dh_params,
            round_number=ROUND,
        )
        expected = np.mean([weights[o] for o in survivors], axis=0)
        assert np.allclose(mean, expected, atol=2.0 / codec.scale)

    def test_missing_survivor_self_shares_fail(self, cohort):
        dh_params, owners, public_keys, _, codec, updates = cohort
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        shares = collect_shares(updates, owners, "self_mask_shares")
        shares[owners[1]] = shares[owners[1]][:1]  # below threshold
        with pytest.raises(MaskingError):
            aggregator.aggregate_sum(
                surviving_updates=[updates[o] for o in owners],
                all_owner_public_keys=public_keys,
                dropped_owner_ids=[],
                collected_self_shares=shares,
                collected_key_shares={},
                dh_params=dh_params,
                round_number=ROUND,
            )

    def test_missing_dropped_key_shares_fail(self, cohort):
        dh_params, owners, public_keys, _, codec, updates = cohort
        dropped = owners[3]
        survivors = [o for o in owners if o != dropped]
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        with pytest.raises(MaskingError):
            aggregator.aggregate_sum(
                surviving_updates=[updates[o] for o in survivors],
                all_owner_public_keys=public_keys,
                dropped_owner_ids=[dropped],
                collected_self_shares=collect_shares(updates, survivors, "self_mask_shares"),
                collected_key_shares={dropped: []},
                dh_params=dh_params,
                round_number=ROUND,
            )

    def test_owner_cannot_both_survive_and_drop(self, cohort):
        dh_params, owners, public_keys, _, codec, updates = cohort
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        with pytest.raises(MaskingError):
            aggregator.aggregate_sum(
                surviving_updates=[updates[o] for o in owners],
                all_owner_public_keys=public_keys,
                dropped_owner_ids=[owners[0]],
                collected_self_shares=collect_shares(updates, owners, "self_mask_shares"),
                collected_key_shares=collect_shares(updates, [owners[0]], "key_shares"),
                dh_params=dh_params,
                round_number=ROUND,
            )

    def test_empty_survivor_set_rejected(self, cohort):
        dh_params, _, public_keys, _, codec, _ = cohort
        aggregator = DropoutRecoveryAggregator(THRESHOLD, codec)
        with pytest.raises(MaskingError):
            aggregator.aggregate_sum([], public_keys, [], {}, {}, dh_params, ROUND)

    def test_update_payload_coerced_to_uint64(self):
        update = DoubleMaskedUpdate(owner_id="x", round_number=0, payload=np.arange(3, dtype=np.int64))
        assert update.payload.dtype == np.uint64
