"""Tests for the protocol configuration and adversarial behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adversary import AdversaryBehavior, apply_adversary
from repro.core.config import ProtocolConfig
from repro.exceptions import ConfigurationError, ValidationError
from repro.fl.model import ModelParameters


class TestProtocolConfig:
    def test_defaults_are_valid(self):
        config = ProtocolConfig()
        assert config.n_owners == 9
        assert 1 <= config.n_groups <= config.n_owners

    def test_rejects_single_owner(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n_owners=1)

    def test_rejects_group_count_above_owner_count(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n_owners=4, n_groups=5)

    def test_rejects_non_positive_rounds_epochs_lr(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n_rounds=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(local_epochs=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(learning_rate=0.0)

    def test_rejects_negative_reward_pool(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(reward_pool=-1.0)

    def test_on_chain_params_contains_required_keys(self):
        params = ProtocolConfig(n_owners=5, n_groups=2).on_chain_params(model_dimension=100)
        for key in ("n_owners", "n_groups", "n_rounds", "permutation_seed", "precision_bits", "field_bits", "model_dimension"):
            assert key in params
        assert params["model_dimension"] == 100

    def test_on_chain_params_reflect_config(self):
        config = ProtocolConfig(n_owners=7, n_groups=3, n_rounds=4, permutation_seed=99)
        params = config.on_chain_params(10)
        assert params["n_owners"] == 7
        assert params["n_groups"] == 3
        assert params["n_rounds"] == 4
        assert params["permutation_seed"] == 99


class TestAdversaryBehavior:
    @pytest.fixture()
    def honest_model(self):
        return ModelParameters.from_mapping({"w": np.linspace(-1, 1, 10)})

    def test_honest_behaviour_is_identity(self, honest_model):
        behaviour = AdversaryBehavior(kind="honest")
        assert apply_adversary(honest_model, behaviour) is honest_model

    def test_scale_attack_multiplies_update(self, honest_model):
        tampered = apply_adversary(honest_model, AdversaryBehavior(kind="scale", magnitude=10.0))
        assert np.allclose(tampered.to_vector(), honest_model.to_vector() * 10.0)

    def test_zero_attack_produces_zero_update(self, honest_model):
        tampered = apply_adversary(honest_model, AdversaryBehavior(kind="zero"))
        assert tampered.norm() == 0.0

    def test_sign_flip_negates_update(self, honest_model):
        tampered = apply_adversary(honest_model, AdversaryBehavior(kind="sign_flip"))
        assert np.allclose(tampered.to_vector(), -honest_model.to_vector())

    def test_noise_attack_replaces_update(self, honest_model):
        tampered = apply_adversary(honest_model, AdversaryBehavior(kind="noise", magnitude=1.0, seed=3))
        assert not np.allclose(tampered.to_vector(), honest_model.to_vector())

    def test_noise_attack_is_deterministic(self, honest_model):
        behaviour = AdversaryBehavior(kind="noise", magnitude=1.0, seed=3)
        a = apply_adversary(honest_model, behaviour)
        b = apply_adversary(honest_model, behaviour)
        assert a.allclose(b)

    def test_structure_is_preserved(self, honest_model):
        tampered = apply_adversary(honest_model, AdversaryBehavior(kind="noise", magnitude=2.0))
        assert tampered.shapes() == honest_model.shapes()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            AdversaryBehavior(kind="explode")

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValidationError):
            AdversaryBehavior(kind="scale", magnitude=-1.0)
