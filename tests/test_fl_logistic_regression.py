"""Tests for multinomial logistic regression (repro.fl.logistic_regression)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_blobs
from repro.exceptions import ModelShapeError, TrainingError, ValidationError
from repro.fl.logistic_regression import LogisticRegressionModel, softmax


@pytest.fixture(scope="module")
def blob_data():
    return make_blobs(n_samples=300, n_features=5, n_classes=3, class_separation=5.0, noise=0.6, seed=2)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_monotone_in_logits(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probabilities[0, 2] > probabilities[0, 1] > probabilities[0, 0]

    def test_numerically_stable_for_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self):
        logits = np.array([[0.3, -1.2, 2.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))


class TestConstruction:
    def test_zero_initialization_by_default(self):
        model = LogisticRegressionModel(4, 3)
        assert model.parameters.norm() == 0.0

    def test_random_initialization_is_deterministic(self):
        a = LogisticRegressionModel(4, 3, init_scale=0.1, seed=1)
        b = LogisticRegressionModel(4, 3, init_scale=0.1, seed=1)
        assert a.parameters.allclose(b.parameters)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValidationError):
            LogisticRegressionModel(0, 3)
        with pytest.raises(ValidationError):
            LogisticRegressionModel(4, 1)

    def test_rejects_negative_l2(self):
        with pytest.raises(ValidationError):
            LogisticRegressionModel(4, 3, l2=-0.1)

    def test_set_parameters_checks_shapes(self):
        model = LogisticRegressionModel(4, 3)
        other = LogisticRegressionModel(5, 3)
        with pytest.raises(ModelShapeError):
            model.set_parameters(other.parameters)

    def test_set_vector_roundtrip(self):
        model = LogisticRegressionModel(4, 3)
        vector = np.arange(model.parameters.dimension, dtype=np.float64)
        model.set_vector(vector)
        assert np.allclose(model.parameters.to_vector(), vector)

    def test_clone_is_independent(self):
        model = LogisticRegressionModel(4, 3, init_scale=0.1)
        clone = model.clone()
        model.set_vector(np.zeros(model.parameters.dimension))
        assert clone.parameters.norm() > 0


class TestInference:
    def test_predict_proba_shape_and_normalization(self, blob_data):
        features, _ = blob_data
        model = LogisticRegressionModel(5, 3)
        probabilities = model.predict_proba(features[:10])
        assert probabilities.shape == (10, 3)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_zero_model_predicts_uniformly(self):
        model = LogisticRegressionModel(4, 3)
        probabilities = model.predict_proba(np.ones((1, 4)))
        assert np.allclose(probabilities, 1.0 / 3.0)

    def test_single_sample_vector_is_accepted(self):
        model = LogisticRegressionModel(4, 3)
        assert model.predict(np.ones(4)).shape == (1,)

    def test_wrong_feature_count_rejected(self):
        model = LogisticRegressionModel(4, 3)
        with pytest.raises(ModelShapeError):
            model.predict(np.ones((2, 5)))


class TestTraining:
    def test_training_beats_chance_on_separable_data(self, blob_data):
        features, labels = blob_data
        model = LogisticRegressionModel(5, 3)
        metrics = model.fit(features, labels, epochs=100, learning_rate=0.5)
        assert metrics["accuracy"] > 0.9

    def test_loss_decreases_during_training(self, blob_data):
        features, labels = blob_data
        model = LogisticRegressionModel(5, 3)
        initial = model.evaluate(features, labels)["loss"]
        model.fit(features, labels, epochs=20, learning_rate=0.5)
        assert model.evaluate(features, labels)["loss"] < initial

    def test_minibatch_training_also_learns(self, blob_data):
        features, labels = blob_data
        model = LogisticRegressionModel(5, 3)
        metrics = model.fit(features, labels, epochs=10, learning_rate=0.3, batch_size=32)
        assert metrics["accuracy"] > 0.8

    def test_training_is_deterministic_given_seed(self, blob_data):
        features, labels = blob_data
        a = LogisticRegressionModel(5, 3)
        b = LogisticRegressionModel(5, 3)
        a.fit(features, labels, epochs=5, learning_rate=0.3, batch_size=16, shuffle_seed=7)
        b.fit(features, labels, epochs=5, learning_rate=0.3, batch_size=16, shuffle_seed=7)
        assert a.parameters.allclose(b.parameters)

    def test_divergence_raises_training_error(self, blob_data):
        features, labels = blob_data
        model = LogisticRegressionModel(5, 3)
        with pytest.raises(TrainingError):
            model.fit(features * 1e3, labels, epochs=200, learning_rate=1e12)

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(20, 4))
        labels = rng.integers(0, 3, size=20)
        model = LogisticRegressionModel(4, 3, l2=0.01, init_scale=0.1, seed=5)
        analytic = model.gradients(features, labels).to_vector()

        def loss_at(vector):
            probe = LogisticRegressionModel(4, 3, l2=0.01)
            probe.set_vector(vector)
            from repro.fl.metrics import cross_entropy

            data_loss = cross_entropy(labels, probe.predict_proba(features))
            weights = probe.parameters.get("weights")
            return data_loss + 0.5 * 0.01 * float(np.sum(weights**2))

        base_vector = model.parameters.to_vector()
        epsilon = 1e-6
        for index in [0, 3, 7, 11, 14]:
            bumped = base_vector.copy()
            bumped[index] += epsilon
            numeric = (loss_at(bumped) - loss_at(base_vector)) / epsilon
            assert numeric == pytest.approx(analytic[index], abs=1e-3)

    def test_label_out_of_range_rejected(self):
        model = LogisticRegressionModel(4, 3)
        with pytest.raises(ValidationError):
            model.gradients(np.ones((2, 4)), np.array([0, 7]))

    def test_sample_count_mismatch_rejected(self):
        model = LogisticRegressionModel(4, 3)
        with pytest.raises(ValidationError):
            model.gradients(np.ones((2, 4)), np.array([0]))
