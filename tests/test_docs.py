"""Tests for the documentation surface.

The docs are part of the contract: the link check that CI runs must pass from
the tier-1 suite too, every scenario the README advertises must exist in the
CLI *and* be exercised by the CI scenario matrix, and the modules that carry
doctests must keep them runnable.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def readme_scenarios() -> set[str]:
    """Scenario names from the README's scenario table (rows like ``| `name` |``)."""
    text = (REPO / "README.md").read_text(encoding="utf-8")
    section = text.split("## Scenarios", 1)[1].split("\n## ", 1)[0]
    return set(re.findall(r"^\|\s*`([a-z-]+)`\s*\|", section, flags=re.MULTILINE))


def readme_cli_commands() -> set[str]:
    """Command names from the README's CLI reference table (rows like ``| `cmd` |``)."""
    text = (REPO / "README.md").read_text(encoding="utf-8")
    section = text.split("## CLI reference", 1)[1].split("\n## ", 1)[0]
    return set(re.findall(r"^\|\s*`([a-z-]+)`\s*\|", section, flags=re.MULTILINE))


def ci_matrix_scenarios() -> set[str]:
    """Scenario entries of the CI scenario-matrix job."""
    text = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    block = text.split("scenario:", 1)[1]
    names = []
    for line in block.splitlines()[1:]:
        match = re.match(r"\s+-\s+([a-z-]+)\s*$", line)
        if match is None:
            break
        names.append(match.group(1))
    return set(names)


class TestMarkdownLinks:
    def test_readme_and_docs_links_resolve(self):
        result = subprocess.run(
            [sys.executable, "scripts/check_markdown_links.py", "README.md", "docs"],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr or result.stdout

    def test_required_documents_exist(self):
        for name in ("README.md", "docs/paper-map.md", "docs/consensus.md",
                     "docs/architecture.md", "docs/performance.md"):
            assert (REPO / name).is_file(), f"{name} is missing"


class TestScenarioCoverage:
    def test_readme_table_names_every_cli_scenario(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_parser = parser._subparsers._group_actions[0].choices["run"]
        (choices,) = [
            action.choices for action in run_parser._actions
            if getattr(action, "dest", "") == "scenario"
        ]
        cli = set(choices) - {"none"}
        documented = readme_scenarios()
        assert documented == cli, (
            f"README scenario table ({sorted(documented)}) out of sync with the CLI "
            f"({sorted(cli)})"
        )
        assert len(documented) >= 9

    def test_ci_matrix_exercises_every_readme_scenario(self):
        documented = readme_scenarios()
        matrix = ci_matrix_scenarios()
        missing = documented - matrix
        assert not missing, f"scenarios documented but not in the CI matrix: {sorted(missing)}"


class TestCliReference:
    def test_readme_cli_table_names_every_command(self):
        from repro.cli import build_parser

        parser = build_parser()
        cli = set(parser._subparsers._group_actions[0].choices)
        documented = readme_cli_commands()
        assert documented == cli, (
            f"README CLI reference ({sorted(documented)}) out of sync with the "
            f"parser ({sorted(cli)})"
        )
        # The contribution-proof pair must stay a documented part of the surface.
        assert {"prove", "verify-proof"} <= documented


class TestDoctests:
    def test_consensus_module_doctests_pass(self):
        import doctest

        import repro.blockchain.consensus as consensus

        results = doctest.testmod(consensus)
        assert results.attempted > 0, "consensus.py lost its runnable doctest"
        assert results.failed == 0


class TestAsyncSwarmDocs:
    """The async-swarm surface must stay documented and exercised by CI."""

    def test_cli_exposes_the_async_transport(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_parser = parser._subparsers._group_actions[0].choices["run"]
        (transport_choices,) = [
            action.choices for action in run_parser._actions
            if getattr(action, "dest", "") == "transport"
        ]
        assert "async" in transport_choices
        dests = {getattr(action, "dest", "") for action in run_parser._actions}
        assert {"peers", "swarm_restart"} <= dests

    def test_readme_documents_the_async_swarm_flags(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        for needle in ("--transport async", "--peers", "--swarm-restart", "swarm-smoke"):
            assert needle in text, f"README no longer documents {needle!r}"

    def test_architecture_doc_covers_the_async_swarm(self):
        text = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
        assert "AsyncTransport" in text
        assert "SwarmSupervisor" in text
        for topic in ("back-pressure", "timeout-as-abstain", "LinkFaultDecider"):
            assert topic.lower() in text.lower(), (
                f"architecture.md async-swarm section lost its {topic!r} coverage"
            )

    def test_ci_runs_the_swarm_smoke_job(self):
        text = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
        assert "swarm-smoke:" in text, "CI lost the swarm-smoke job"
        assert "--transport async --peers 16" in text
        assert "--swarm-restart" in text, "CI swarm-smoke lost the resync drill"

    def test_ci_installs_the_test_timeout_and_property_deps(self):
        requirements = (REPO / "requirements-ci.txt").read_text(encoding="utf-8")
        assert "pytest-timeout" in requirements
        assert "hypothesis" in requirements
