"""Tests for canonical serialization (repro.utils.serialization)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.utils.serialization import canonical_dumps, canonical_loads, decode_array, encode_array


class TestCanonicalDumps:
    def test_dict_key_order_does_not_matter(self):
        assert canonical_dumps({"a": 1, "b": 2}) == canonical_dumps({"b": 2, "a": 1})

    def test_output_is_compact(self):
        text = canonical_dumps({"a": [1, 2, 3]})
        assert " " not in text

    def test_none_roundtrip(self):
        assert canonical_loads(canonical_dumps(None)) is None

    def test_bool_roundtrip(self):
        assert canonical_loads(canonical_dumps({"flag": True})) == {"flag": True}

    def test_nested_structures_roundtrip(self):
        obj = {"a": [1, 2, {"b": [3.5, "x"]}], "c": None}
        assert canonical_loads(canonical_dumps(obj)) == obj

    def test_bytes_roundtrip(self):
        obj = {"blob": b"\x00\x01\xffhello"}
        assert canonical_loads(canonical_dumps(obj)) == obj

    def test_big_int_roundtrip(self):
        value = 2**521 - 1
        assert canonical_loads(canonical_dumps({"k": value})) == {"k": value}

    def test_small_int_stays_plain_json_number(self):
        assert canonical_dumps(42) == "42"

    def test_tuple_becomes_list(self):
        assert canonical_loads(canonical_dumps((1, 2))) == [1, 2]

    def test_numpy_scalar_is_serialized_as_python_number(self):
        assert canonical_loads(canonical_dumps({"x": np.int64(7)})) == {"x": 7}

    def test_non_string_keys_rejected(self):
        with pytest.raises(ValidationError):
            canonical_dumps({1: "a"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValidationError):
            canonical_dumps({"x": object()})

    def test_determinism_across_calls(self):
        obj = {"z": [1, 2], "a": {"nested": True}}
        assert canonical_dumps(obj) == canonical_dumps(obj)


class TestArrayEncoding:
    def test_roundtrip_float_array(self):
        arr = np.array([[1.5, -2.25], [0.0, 1e-30]])
        assert np.array_equal(decode_array(encode_array(arr)), arr)

    def test_roundtrip_preserves_dtype(self):
        arr = np.arange(10, dtype=np.uint64)
        decoded = decode_array(encode_array(arr))
        assert decoded.dtype == np.uint64
        assert np.array_equal(decoded, arr)

    def test_roundtrip_preserves_shape(self):
        arr = np.zeros((3, 4, 5))
        assert decode_array(encode_array(arr)).shape == (3, 4, 5)

    def test_roundtrip_through_canonical_json(self):
        arr = np.linspace(-1, 1, 17)
        restored = canonical_loads(canonical_dumps({"w": arr}))["w"]
        assert np.array_equal(restored, arr)

    def test_decode_rejects_non_array_payload(self):
        with pytest.raises(ValidationError):
            decode_array({"dtype": "float64", "shape": [1]})

    def test_nan_and_inf_roundtrip_bit_exact(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.0])
        decoded = decode_array(encode_array(arr))
        assert np.array_equal(decoded, arr, equal_nan=True)

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            dtype=st.sampled_from([np.float64, np.int64, np.uint64]),
            shape=hnp.array_shapes(max_dims=3, max_side=6),
            elements=st.integers(min_value=0, max_value=1000),
        )
    )
    def test_property_roundtrip_any_array(self, arr):
        decoded = canonical_loads(canonical_dumps({"a": arr}))["a"]
        assert decoded.dtype == arr.dtype
        assert np.array_equal(decoded, arr)

    @settings(max_examples=50, deadline=None)
    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**60), max_value=2**60),
                st.floats(allow_nan=False, allow_infinity=False, width=32).map(float),
                st.text(max_size=12),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=6), children, max_size=4),
            ),
            max_leaves=12,
        )
    )
    def test_property_roundtrip_json_like_objects(self, obj):
        assert canonical_loads(canonical_dumps(obj)) == obj

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(st.text(min_size=1, max_size=8), st.integers(-5, 5), min_size=1, max_size=6)
    )
    def test_property_hash_stability_under_key_insertion_order(self, mapping):
        reversed_mapping = dict(reversed(list(mapping.items())))
        assert canonical_dumps(mapping) == canonical_dumps(reversed_mapping)
