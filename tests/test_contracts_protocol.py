"""Tests for the protocol contracts: registry, FL training, contribution, reward.

These tests drive the contracts directly through a ContractRuntime and a shared
WorldState (no consensus machinery), which keeps them fast and lets each state
transition be asserted in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.contracts.contribution import ContributionContract
from repro.blockchain.contracts.fl_training import FLTrainingContract
from repro.blockchain.contracts.registry import ParticipantRegistryContract
from repro.blockchain.contracts.reward import RewardContract
from repro.blockchain.state import WorldState
from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import PairwiseMasker
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ContractError
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.shapley.group import group_members, make_groups

N_OWNERS = 4
N_GROUPS = 2
N_CLASSES = 3
N_FEATURES = 6
SEED = 13
OWNERS = [f"owner-{i}" for i in range(N_OWNERS)]


@pytest.fixture(scope="module")
def validation_set():
    return make_blobs(n_samples=120, n_features=N_FEATURES, n_classes=N_CLASSES, seed=5)


@pytest.fixture(scope="module")
def dh_setup():
    params = DHParameters.for_testing(bits=64, seed="contract-tests")
    keypairs = {owner: DHKeyPair.generate(params, owner) for owner in OWNERS}
    public_keys = {owner: kp.public_key for owner, kp in keypairs.items()}
    return keypairs, public_keys


def build_runtime(validation_set) -> ContractRuntime:
    features, labels = validation_set
    runtime = ContractRuntime()
    runtime.register(ParticipantRegistryContract())
    runtime.register(FLTrainingContract())
    runtime.register(ContributionContract(features, labels, N_CLASSES))
    runtime.register(RewardContract())
    return runtime


def protocol_params(model_dimension):
    return {
        "n_owners": N_OWNERS,
        "n_groups": N_GROUPS,
        "n_rounds": 2,
        "permutation_seed": SEED,
        "precision_bits": 24,
        "field_bits": 64,
        "max_summands": 64,
        "model_dimension": model_dimension,
    }


def model_dimension():
    return LogisticRegressionModel(N_FEATURES, N_CLASSES).parameters.dimension


def call(runtime, state, sender, contract, method, **args):
    return runtime.execute(state, sender, contract, method, args)[0]


def setup_registry(runtime, state, public_keys, dim):
    call(runtime, state, OWNERS[0], "registry", "set_protocol_params", params=protocol_params(dim))
    for owner in OWNERS:
        call(runtime, state, owner, "registry", "register_participant", public_key=public_keys[owner])


def local_models_for_round(round_number=0, scale=1.0):
    """Deterministic fake local models, one flat vector per owner."""
    dim = model_dimension()
    rng = np.random.default_rng(round_number)
    return {owner: rng.normal(scale=scale, size=dim) for owner in OWNERS}


def submit_round(runtime, state, keypairs, public_keys, round_number=0, models=None):
    """Mask and submit every owner's update for a round, then finalize it."""
    codec = FixedPointCodec(max_summands=64)
    models = models or local_models_for_round(round_number)
    groups = make_groups(OWNERS, N_GROUPS, SEED, round_number)
    membership = group_members(groups)
    for owner in OWNERS:
        group = groups[membership[owner]]
        cohort = {peer: public_keys[peer] for peer in group if peer != owner}
        masker = PairwiseMasker(owner, keypairs[owner], cohort, codec=codec)
        masked = masker.mask(models[owner], round_number)
        call(
            runtime,
            state,
            owner,
            "fl_training",
            "submit_masked_update",
            round_number=round_number,
            group_id=membership[owner],
            payload=np.asarray(masked.payload, dtype=np.uint64),
            n_samples=10,
        )
    call(runtime, state, OWNERS[0], "fl_training", "finalize_round", round_number=round_number)
    return models, groups


class TestRegistryContract:
    def test_params_can_only_be_pinned_once(self, validation_set):
        runtime, state = build_runtime(validation_set), WorldState()
        dim = model_dimension()
        call(runtime, state, OWNERS[0], "registry", "set_protocol_params", params=protocol_params(dim))
        # Identical confirmation is idempotent.
        result = call(runtime, state, OWNERS[1], "registry", "set_protocol_params", params=protocol_params(dim))
        assert result["status"] == "already-set"
        conflicting = dict(protocol_params(dim), n_groups=3)
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[1], "registry", "set_protocol_params", params=conflicting)

    def test_params_require_mandatory_keys(self, validation_set):
        runtime, state = build_runtime(validation_set), WorldState()
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "registry", "set_protocol_params", params={"n_owners": 4})

    def test_registration_records_public_keys(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        participants = call(runtime, state, OWNERS[0], "registry", "get_participants")
        assert set(participants) == set(OWNERS)
        assert participants[OWNERS[1]]["public_key"] == public_keys[OWNERS[1]]

    def test_reregistration_with_same_key_is_idempotent(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        result = call(runtime, state, OWNERS[0], "registry", "register_participant", public_key=public_keys[OWNERS[0]])
        assert result["status"] == "already-registered"

    def test_key_change_rejected(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "registry", "register_participant", public_key=public_keys[OWNERS[0]] + 1)

    def test_registry_full_rejects_extra_owner(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        with pytest.raises(ContractError):
            call(runtime, state, "owner-extra", "registry", "register_participant", public_key=12345)

    def test_setup_completeness_flag(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        dim = model_dimension()
        call(runtime, state, OWNERS[0], "registry", "set_protocol_params", params=protocol_params(dim))
        assert call(runtime, state, OWNERS[0], "registry", "is_setup_complete") is False
        for owner in OWNERS:
            call(runtime, state, owner, "registry", "register_participant", public_key=public_keys[owner])
        assert call(runtime, state, OWNERS[0], "registry", "is_setup_complete") is True

    def test_invalid_public_key_rejected(self, validation_set):
        runtime, state = build_runtime(validation_set), WorldState()
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "registry", "register_participant", public_key=1)


class TestFLTrainingContract:
    def test_unregistered_sender_cannot_submit(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        with pytest.raises(ContractError):
            call(
                runtime, state, "stranger", "fl_training", "submit_masked_update",
                round_number=0, group_id=0, payload=np.zeros(model_dimension(), dtype=np.uint64),
            )

    def test_wrong_group_claim_rejected(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        groups = make_groups(OWNERS, N_GROUPS, SEED, 0)
        membership = group_members(groups)
        owner = OWNERS[0]
        wrong_group = (membership[owner] + 1) % N_GROUPS
        with pytest.raises(ContractError):
            call(
                runtime, state, owner, "fl_training", "submit_masked_update",
                round_number=0, group_id=wrong_group,
                payload=np.zeros(model_dimension(), dtype=np.uint64),
            )

    def test_double_submission_rejected(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        groups = make_groups(OWNERS, N_GROUPS, SEED, 0)
        membership = group_members(groups)
        owner = OWNERS[0]
        payload = np.zeros(model_dimension(), dtype=np.uint64)
        call(runtime, state, owner, "fl_training", "submit_masked_update",
             round_number=0, group_id=membership[owner], payload=payload)
        with pytest.raises(ContractError):
            call(runtime, state, owner, "fl_training", "submit_masked_update",
                 round_number=0, group_id=membership[owner], payload=payload)

    def test_wrong_dimension_rejected(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        groups = make_groups(OWNERS, N_GROUPS, SEED, 0)
        membership = group_members(groups)
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "fl_training", "submit_masked_update",
                 round_number=0, group_id=membership[OWNERS[0]], payload=np.zeros(3, dtype=np.uint64))

    def test_round_outside_schedule_rejected(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "fl_training", "submit_masked_update",
                 round_number=99, group_id=0, payload=np.zeros(model_dimension(), dtype=np.uint64))

    def test_finalize_requires_all_submissions(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        groups = make_groups(OWNERS, N_GROUPS, SEED, 0)
        membership = group_members(groups)
        owner = OWNERS[0]
        call(runtime, state, owner, "fl_training", "submit_masked_update",
             round_number=0, group_id=membership[owner],
             payload=np.zeros(model_dimension(), dtype=np.uint64))
        with pytest.raises(ContractError):
            call(runtime, state, owner, "fl_training", "finalize_round", round_number=0)

    def test_secure_aggregation_recovers_group_means(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        models, groups = submit_round(runtime, state, keypairs, public_keys, round_number=0)
        record = call(runtime, state, OWNERS[0], "fl_training", "get_round", round_number=0)
        for group, published in zip(groups, record["group_models"]):
            expected = np.mean([models[owner] for owner in group], axis=0)
            assert np.allclose(np.asarray(published), expected, atol=1e-5)
        expected_global = np.mean(
            [np.mean([models[o] for o in group], axis=0) for group in groups], axis=0
        )
        assert np.allclose(np.asarray(record["global_model"]), expected_global, atol=1e-5)

    def test_finalize_twice_rejected(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        submit_round(runtime, state, keypairs, public_keys, round_number=0)
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "fl_training", "finalize_round", round_number=0)

    def test_submissions_view_tracks_progress(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        assert call(runtime, state, OWNERS[0], "fl_training", "get_submissions", round_number=0) == []
        groups = make_groups(OWNERS, N_GROUPS, SEED, 0)
        membership = group_members(groups)
        owner = OWNERS[2]
        call(runtime, state, owner, "fl_training", "submit_masked_update",
             round_number=0, group_id=membership[owner],
             payload=np.zeros(model_dimension(), dtype=np.uint64))
        assert call(runtime, state, OWNERS[0], "fl_training", "get_submissions", round_number=0) == [owner]

    def test_global_model_view(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        assert call(runtime, state, OWNERS[0], "fl_training", "get_global_model", round_number=0) is None
        submit_round(runtime, state, keypairs, public_keys, round_number=0)
        model = call(runtime, state, OWNERS[0], "fl_training", "get_global_model", round_number=0)
        assert np.asarray(model).shape == (model_dimension(),)


class TestContributionContract:
    def test_evaluation_requires_finalized_round(self, validation_set, dh_setup):
        _, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=0)

    def test_evaluation_produces_values_for_every_owner(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        submit_round(runtime, state, keypairs, public_keys, round_number=0)
        result = call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=0)
        assert set(result["user_values"]) == set(OWNERS)

    def test_group_members_share_their_group_value(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        _, groups = submit_round(runtime, state, keypairs, public_keys, round_number=0)
        call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=0)
        evaluation = call(runtime, state, OWNERS[0], "contribution", "get_round_evaluation", round_number=0)
        for group, value in zip(evaluation["groups"], evaluation["group_values"]):
            for owner in group:
                assert evaluation["user_values"][owner] == pytest.approx(value / len(group))

    def test_efficiency_axiom_holds_on_chain(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        submit_round(runtime, state, keypairs, public_keys, round_number=0)
        call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=0)
        evaluation = call(runtime, state, OWNERS[0], "contribution", "get_round_evaluation", round_number=0)
        assert sum(evaluation["group_values"]) == pytest.approx(evaluation["global_utility"], abs=1e-9)

    def test_double_evaluation_rejected(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        submit_round(runtime, state, keypairs, public_keys, round_number=0)
        call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=0)
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[1], "contribution", "evaluate_round", round_number=0)

    def test_totals_accumulate_across_rounds(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        per_round = []
        for round_number in range(2):
            submit_round(runtime, state, keypairs, public_keys, round_number=round_number)
            result = call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=round_number)
            per_round.append(result["user_values"])
        totals = call(runtime, state, OWNERS[0], "contribution", "get_total_contributions")
        for owner in OWNERS:
            assert totals[owner] == pytest.approx(per_round[0][owner] + per_round[1][owner])

    def test_contract_requires_valid_validation_set(self):
        with pytest.raises(Exception):
            ContributionContract(np.zeros((0, 3)), np.zeros(0), 3)


class TestRewardContract:
    def _evaluated_state(self, validation_set, dh_setup):
        keypairs, public_keys = dh_setup
        runtime, state = build_runtime(validation_set), WorldState()
        setup_registry(runtime, state, public_keys, model_dimension())
        submit_round(runtime, state, keypairs, public_keys, round_number=0)
        call(runtime, state, OWNERS[0], "contribution", "evaluate_round", round_number=0)
        return runtime, state

    def test_distribution_is_proportional_to_positive_contributions(self, validation_set, dh_setup):
        runtime, state = self._evaluated_state(validation_set, dh_setup)
        totals = call(runtime, state, OWNERS[0], "contribution", "get_total_contributions")
        result = call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=100.0)
        payouts = result["payouts"]
        assert sum(payouts.values()) == pytest.approx(100.0)
        positive = {k: max(v, 0.0) for k, v in totals.items()}
        weight = sum(positive.values())
        for owner in OWNERS:
            assert payouts[owner] == pytest.approx(100.0 * positive[owner] / weight)

    def test_distribution_without_contributions_rejected(self, validation_set):
        runtime, state = build_runtime(validation_set), WorldState()
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=10.0)

    def test_double_distribution_with_same_label_rejected(self, validation_set, dh_setup):
        runtime, state = self._evaluated_state(validation_set, dh_setup)
        call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=10.0)
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=10.0)

    def test_balances_accumulate_across_labels(self, validation_set, dh_setup):
        runtime, state = self._evaluated_state(validation_set, dh_setup)
        call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=10.0, label="a")
        call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=10.0, label="b")
        balances = call(runtime, state, OWNERS[0], "reward", "get_balances")
        assert sum(balances.values()) == pytest.approx(20.0)

    def test_negative_pool_rejected(self, validation_set, dh_setup):
        runtime, state = self._evaluated_state(validation_set, dh_setup)
        with pytest.raises(ContractError):
            call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=-1.0)

    def test_distribution_record_is_stored(self, validation_set, dh_setup):
        runtime, state = self._evaluated_state(validation_set, dh_setup)
        call(runtime, state, OWNERS[0], "reward", "distribute", reward_pool=50.0)
        record = call(runtime, state, OWNERS[0], "reward", "get_distribution")
        assert record["reward_pool"] == 50.0
        assert set(record["payouts"]) == set(OWNERS)
