"""Tests for contribution-vector similarity metrics (repro.shapley.metrics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.shapley.metrics import cosine_similarity, l2_distance, max_abs_error, spearman_correlation


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_scaled_vectors_are_still_parallel(self):
        assert cosine_similarity([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_opposite_vectors(self):
        assert cosine_similarity([1, 1], [-1, -1]) == pytest.approx(-1.0)

    def test_dict_inputs_align_by_key(self):
        a = {"x": 1.0, "y": 2.0}
        b = {"y": 2.0, "x": 1.0}
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_dict_inputs_with_different_keys_rejected(self):
        with pytest.raises(ValidationError):
            cosine_similarity({"x": 1.0}, {"y": 1.0})

    def test_both_zero_vectors_are_similar(self):
        assert cosine_similarity([0, 0], [0, 0]) == 1.0

    def test_one_zero_vector_is_dissimilar(self):
        assert cosine_similarity([0, 0], [1, 0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            cosine_similarity([1, 2], [1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            cosine_similarity([], [])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=10))
    def test_property_bounded_and_reflexive(self, values):
        other = [v + 1e-3 for v in values]
        sim = cosine_similarity(values, other)
        assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9
        assert cosine_similarity(values, values) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=10),
        st.lists(st.floats(-100, 100), min_size=2, max_size=10),
    )
    def test_property_symmetry(self, a, b):
        length = min(len(a), len(b))
        a, b = a[:length], b[:length]
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))


class TestDistances:
    def test_l2_distance_of_identical_is_zero(self):
        assert l2_distance([1, 2], [1, 2]) == 0.0

    def test_l2_distance_known_value(self):
        assert l2_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_max_abs_error(self):
        assert max_abs_error([1, 2, 3], [1, 5, 3]) == pytest.approx(3.0)

    def test_dict_alignment(self):
        assert l2_distance({"a": 1.0, "b": 0.0}, {"b": 0.0, "a": 1.0}) == 0.0


class TestSpearman:
    def test_identical_ranking_is_one(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_ranking_is_minus_one(self):
        assert spearman_correlation([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_vectors_are_fully_correlated(self):
        assert spearman_correlation([1, 1, 1], [2, 2, 2]) == 1.0

    def test_one_constant_vector_is_uncorrelated(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_single_element(self):
        assert spearman_correlation([1], [5]) == 1.0

    def test_monotone_transformation_preserves_correlation(self):
        values = [0.1, 0.5, 0.2, 0.9]
        transformed = [v**3 for v in values]
        assert spearman_correlation(values, transformed) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=12))
    def test_property_bounded(self, values):
        rng = np.random.default_rng(0)
        other = rng.permutation(values).tolist()
        correlation = spearman_correlation(values, other)
        assert -1.0 - 1e-9 <= correlation <= 1.0 + 1e-9
