"""Tests for GroupSV, Algorithm 1 (repro.shapley.group)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GroupingError, ShapleyError
from repro.fl.model import ModelParameters
from repro.shapley.group import (
    accumulate_user_values,
    aggregate_group_models,
    compute_group_shapley,
    group_members,
    group_shapley_round,
    make_groups,
    permute_users,
)
from repro.shapley.metrics import cosine_similarity
from repro.shapley.native import native_shapley
from repro.shapley.utility import CoalitionModelUtility


USERS = [f"u{i}" for i in range(9)]


class TestPermutation:
    def test_deterministic_in_seed_and_round(self):
        assert permute_users(USERS, 13, 2) == permute_users(USERS, 13, 2)

    def test_round_changes_permutation(self):
        assert permute_users(USERS, 13, 0) != permute_users(USERS, 13, 1)

    def test_seed_changes_permutation(self):
        assert permute_users(USERS, 13, 0) != permute_users(USERS, 14, 0)

    def test_independent_of_input_order(self):
        assert permute_users(USERS, 13, 0) == permute_users(list(reversed(USERS)), 13, 0)

    def test_is_a_permutation(self):
        assert sorted(permute_users(USERS, 1, 1)) == sorted(USERS)

    def test_empty_rejected(self):
        with pytest.raises(GroupingError):
            permute_users([], 1, 1)


class TestGrouping:
    def test_paper_example_shape(self):
        # 9 users, m = 3 -> three groups of three.
        groups = make_groups(USERS, 3, seed=7, round_number=0)
        assert len(groups) == 3
        assert all(len(group) == 3 for group in groups)

    def test_groups_partition_the_users(self):
        groups = make_groups(USERS, 4, seed=7, round_number=1)
        flattened = [user for group in groups for user in group]
        assert sorted(flattened) == sorted(USERS)

    def test_m_equals_n_gives_singletons(self):
        groups = make_groups(USERS, len(USERS), seed=7, round_number=0)
        assert all(len(group) == 1 for group in groups)

    def test_m_equals_one_gives_single_group(self):
        groups = make_groups(USERS, 1, seed=7, round_number=0)
        assert len(groups) == 1 and len(groups[0]) == len(USERS)

    def test_uneven_division_never_leaves_empty_groups(self):
        groups = make_groups(USERS, 4, seed=3, round_number=2)
        assert all(group for group in groups)
        sizes = sorted(len(group) for group in groups)
        assert sizes == [2, 2, 2, 3]

    def test_rejects_bad_m(self):
        with pytest.raises(GroupingError):
            make_groups(USERS, 0, seed=1, round_number=0)
        with pytest.raises(GroupingError):
            make_groups(USERS, len(USERS) + 1, seed=1, round_number=0)

    def test_rejects_duplicate_users(self):
        with pytest.raises(GroupingError):
            make_groups(["a", "a", "b"], 2, seed=1, round_number=0)

    def test_group_members_inverts_grouping(self):
        groups = make_groups(USERS, 3, seed=5, round_number=0)
        membership = group_members(groups)
        for index, group in enumerate(groups):
            for user in group:
                assert membership[user] == index

    def test_group_members_rejects_duplicates(self):
        with pytest.raises(GroupingError):
            group_members([["a"], ["a"]])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 12), st.integers(1, 12), st.integers(0, 50), st.integers(0, 5))
    def test_property_grouping_is_a_partition(self, n_users, m, seed, round_number):
        users = [f"user-{i}" for i in range(n_users)]
        m = min(m, n_users)
        groups = make_groups(users, m, seed, round_number)
        flattened = [u for g in groups for u in g]
        assert sorted(flattened) == sorted(users)
        assert len(groups) == m
        assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1


def make_local_models(users, dimension=12, seed=0, quality_gradient=False):
    """Deterministic synthetic local models; optionally degrade later users."""
    rng = np.random.default_rng(seed)
    template = ModelParameters.from_mapping({"w": np.zeros(dimension)})
    models = {}
    shared_direction = rng.normal(size=dimension)
    for rank, user in enumerate(sorted(users)):
        noise = rng.normal(size=dimension)
        scale = rank if quality_gradient else 1.0
        models[user] = template.from_vector(shared_direction + scale * 0.5 * noise)
    return models


class FakeScorer:
    """A deterministic stand-in for AccuracyUtility: higher mean weight = better."""

    n_classes = 2

    def score(self, parameters):
        return float(np.tanh(parameters.to_vector().mean()))

    def score_vector(self, vector):
        return float(np.tanh(np.asarray(vector).mean()))


class TestAggregateGroupModels:
    def test_group_model_is_member_mean(self):
        users = USERS[:4]
        models = make_local_models(users)
        groups = [["u0", "u1"], ["u2", "u3"]]
        group_models = aggregate_group_models(groups, models)
        expected = ModelParameters.mean([models["u0"], models["u1"]])
        assert group_models[0].allclose(expected)

    def test_missing_model_rejected(self):
        models = make_local_models(USERS[:2])
        with pytest.raises(ShapleyError):
            aggregate_group_models([["u0", "u9"]], models)


class TestComputeGroupShapley:
    def test_user_values_split_group_value_equally(self):
        users = USERS[:6]
        models = make_local_models(users)
        result = group_shapley_round(models, m=2, seed=3, round_number=0, scorer=FakeScorer())
        for group, value in zip(result.groups, result.group_values):
            for user in group:
                assert result.user_values[user] == pytest.approx(value / len(group))

    def test_efficiency_over_groups(self):
        users = USERS[:6]
        models = make_local_models(users)
        result = group_shapley_round(models, m=3, seed=3, round_number=0, scorer=FakeScorer())
        grand_label = tuple(sorted(f"group-{j}" for j in range(3)))
        grand_utility = result.coalition_utilities[grand_label]
        assert sum(result.group_values) == pytest.approx(grand_utility, abs=1e-9)

    def test_m_equals_n_matches_native_shapley_over_users(self):
        users = USERS[:5]
        models = make_local_models(users, quality_gradient=True)
        scorer = FakeScorer()
        result = group_shapley_round(models, m=len(users), seed=9, round_number=0, scorer=scorer)

        utility = CoalitionModelUtility(models, scorer)  # type: ignore[arg-type]
        native = native_shapley(users, utility)
        # With singleton groups the group game *is* the user game; values match
        # up to the group labelling.
        for group, value in zip(result.groups, result.group_values):
            assert value == pytest.approx(native[group[0]], abs=1e-9)

    def test_global_model_is_mean_of_group_models(self):
        users = USERS[:4]
        models = make_local_models(users)
        groups = make_groups(users, 2, 5, 0)
        group_models = aggregate_group_models(groups, models)
        result = compute_group_shapley(group_models, groups, FakeScorer())
        assert result.global_model.allclose(ModelParameters.mean(group_models))

    def test_coalition_utilities_cover_the_power_set(self):
        users = USERS[:6]
        models = make_local_models(users)
        result = group_shapley_round(models, m=3, seed=3, round_number=0, scorer=FakeScorer())
        assert len(result.coalition_utilities) == 2**3 - 1

    def test_mismatched_groups_and_models_rejected(self):
        users = USERS[:4]
        models = make_local_models(users)
        groups = make_groups(users, 2, 5, 0)
        group_models = aggregate_group_models(groups, models)
        with pytest.raises(ShapleyError):
            compute_group_shapley(group_models[:1], groups, FakeScorer())

    def test_accumulate_user_values_sums_rounds(self):
        users = USERS[:4]
        models = make_local_models(users)
        results = [
            group_shapley_round(models, m=2, seed=3, round_number=r, scorer=FakeScorer()) for r in range(3)
        ]
        totals = accumulate_user_values(results)
        for user in users:
            assert totals[user] == pytest.approx(sum(r.user_values[user] for r in results))

    def test_group_values_respond_to_model_quality(self, scorer, local_models):
        # With a real scorer and real local models, the grand coalition utility
        # must be positive and every group value finite.
        result = group_shapley_round(local_models, m=2, seed=13, round_number=0, scorer=scorer)
        assert all(np.isfinite(v) for v in result.group_values)
        grand = result.coalition_utilities[tuple(sorted(f"group-{j}" for j in range(2)))]
        assert grand > 0.3

    def test_resolution_increases_with_m(self, scorer, local_models):
        # More groups -> more distinct user values (higher resolution).
        few = group_shapley_round(local_models, m=1, seed=13, round_number=0, scorer=scorer)
        many = group_shapley_round(local_models, m=len(local_models), seed=13, round_number=0, scorer=scorer)
        assert len(set(np.round(list(few.user_values.values()), 12))) <= len(
            set(np.round(list(many.user_values.values()), 12))
        )

    def test_group_sv_approaches_native_sv_in_cosine(self, scorer, local_models):
        users = sorted(local_models)
        utility = CoalitionModelUtility(local_models, scorer)
        native = native_shapley(users, utility)
        sims = []
        for m in (1, len(users)):
            result = group_shapley_round(local_models, m=m, seed=13, round_number=0, scorer=scorer)
            sims.append(cosine_similarity(result.user_values, native))
        # Full-resolution grouping reproduces the native values exactly (cosine 1).
        assert sims[-1] == pytest.approx(1.0, abs=1e-9)
