"""Tests for the persistence layer under the chain (the storage engine).

Four properties are pinned here:

* **Restore == never stopped** — a chain committed to SQLite, closed, and
  reopened restores blocks, state, retained deltas, and nonces exactly, and
  blocks committed after the restore are byte-identical to an uninterrupted
  run's.
* **Crash-atomicity at every boundary** — killing the backend (via the
  fault-injection hook) at *each* named write boundary of ``commit_block``
  leaves the store at exactly the last sealed block; reopening always works.
* **Memory/SQLite parity** — under randomized contract-driven op sequences
  the persisted replica's state, roots, and proofs match the in-memory one.
* **Registry-safe pruning** — dropping reverse deltas below a horizon changes
  no audit verdict: reads below the horizon fall back to snapshot+replay and
  the fallback is visible in the ``AuditReport``.
"""

from __future__ import annotations

import os
import sqlite3

import numpy as np
import pytest

from helpers import CounterContract, counter_tx
from repro.blockchain.chain import Blockchain
from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.state import WorldState
from repro.blockchain.storage import (
    WRITE_BOUNDARIES,
    InMemoryBackend,
    SQLiteBackend,
    StorageBackend,
    block_from_record,
    block_to_record,
    open_backend,
)
from repro.blockchain.transaction import Transaction
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import ChainValidationError, ProtocolError, StorageError, ValidationError
from test_state_store import RandomWriterContract


def _writer_runtime() -> ContractRuntime:
    runtime = ContractRuntime()
    runtime.register(RandomWriterContract())
    runtime.register(CounterContract())
    return runtime


def _writer_txs(chain: Blockchain, height: int) -> list[Transaction]:
    return [
        Transaction(
            sender="alice", contract="writer", method="scribble",
            args={"seed": height * 10 + 1}, nonce=chain.next_nonce("alice"),
        ),
        Transaction(
            sender="bob", contract="writer", method="scribble",
            args={"seed": height * 10 + 2}, nonce=chain.next_nonce("bob"),
        ),
    ]


def _grow(chain: Blockchain, start: int, end: int) -> None:
    """Commit writer blocks for heights start..end (inclusive)."""
    for height in range(start, end + 1):
        chain.propose_block(f"owner-{height % 2}", _writer_txs(chain, height))


def _writer_chain(root_version: int, n_blocks: int, storage=None) -> Blockchain:
    chain = Blockchain(_writer_runtime, state_root_version=root_version, storage=storage)
    _grow(chain, 1, n_blocks)
    return chain


def _fingerprint(chain: Blockchain) -> list[tuple[int, str, str]]:
    return [(b.height, b.block_hash, b.header.state_root) for b in chain.blocks]


class TestBlockRecords:
    def test_round_trip_preserves_identity(self):
        chain = _writer_chain(2, n_blocks=3)
        for block in chain.blocks:
            rebuilt = block_from_record(block_to_record(block))
            assert rebuilt.block_hash == block.block_hash
            assert block_to_record(rebuilt) == block_to_record(block)

    def test_tampered_record_is_rejected(self):
        chain = _writer_chain(2, n_blocks=1)
        record = block_to_record(chain.head)
        record["header"]["proposer"] = "mallory"
        with pytest.raises(StorageError, match="does not hash"):
            block_from_record(record)

    def test_malformed_record_is_rejected(self):
        with pytest.raises(StorageError, match="malformed"):
            block_from_record({"header": {"height": 1}})


class TestOpenBackend:
    def test_spec_parsing(self, tmp_path):
        assert isinstance(open_backend("memory"), InMemoryBackend)
        backend = open_backend(f"sqlite:{tmp_path / 'a.db'}")
        assert isinstance(backend, SQLiteBackend)
        assert backend.persistent
        backend.close()
        passthrough = InMemoryBackend()
        assert open_backend(passthrough) is passthrough

    def test_bad_specs(self):
        with pytest.raises(StorageError):
            open_backend("sqlite:")
        with pytest.raises(StorageError):
            open_backend("postgres:nope")

    def test_memory_backend_is_inert(self):
        chain = _writer_chain(2, n_blocks=2, storage=InMemoryBackend())
        assert _fingerprint(chain) == _fingerprint(_writer_chain(2, n_blocks=2))

    def test_double_attach_is_refused(self, tmp_path):
        chain = _writer_chain(2, n_blocks=1, storage=open_backend(f"sqlite:{tmp_path/'a.db'}"))
        with pytest.raises(ChainValidationError, match="already attached"):
            chain.attach_storage(open_backend(f"sqlite:{tmp_path/'b.db'}"))


@pytest.mark.parametrize("root_version", [1, 2, 3])
class TestRestoreRoundTrip:
    def test_reopen_restores_the_exact_replica(self, tmp_path, root_version):
        path = str(tmp_path / "chain.db")
        chain = _writer_chain(root_version, n_blocks=5, storage=SQLiteBackend(path))
        expected = _fingerprint(chain)
        expected_raw = chain.state.raw()
        expected_nonces = dict(chain._nonces)
        chain.storage.close()

        reopened = Blockchain(_writer_runtime, state_root_version=root_version)
        assert reopened.attach_storage(SQLiteBackend(path)) is True
        assert _fingerprint(reopened) == expected
        assert reopened.state.raw() == expected_raw
        assert reopened._nonces == expected_nonces
        # Retained deltas restore too: every historical view still answers.
        for block in reopened.blocks:
            assert reopened.state_at(block.height).state_root() == block.header.state_root
        reopened.storage.close()

    def test_blocks_after_restore_are_byte_identical(self, tmp_path, root_version):
        uninterrupted = _writer_chain(root_version, n_blocks=9)
        path = str(tmp_path / "chain.db")
        first = _writer_chain(root_version, n_blocks=4, storage=SQLiteBackend(path))
        first.storage.close()

        second = Blockchain(_writer_runtime, state_root_version=root_version)
        second.attach_storage(SQLiteBackend(path))
        _grow(second, 5, 9)
        assert _fingerprint(second) == _fingerprint(uninterrupted)
        second.storage.close()

    def test_fresh_store_initializes_and_mid_run_attach_rewrites(self, tmp_path, root_version):
        path = str(tmp_path / "late.db")
        chain = _writer_chain(root_version, n_blocks=3)
        # Attaching to an already-grown chain snapshots it wholesale.
        assert chain.attach_storage(SQLiteBackend(path)) is False
        _grow(chain, 4, 5)
        chain.storage.close()
        reopened = Blockchain(_writer_runtime, state_root_version=root_version)
        reopened.attach_storage(SQLiteBackend(path))
        assert _fingerprint(reopened) == _fingerprint(chain)
        reopened.storage.close()


class TestRestoreRejectsBadStores:
    def test_state_root_version_mismatch(self, tmp_path):
        path = str(tmp_path / "v2.db")
        _writer_chain(2, n_blocks=1, storage=SQLiteBackend(path)).storage.close()
        chain = Blockchain(_writer_runtime, state_root_version=3)
        with pytest.raises(StorageError, match="state_root_version"):
            chain.attach_storage(SQLiteBackend(path))

    def test_corrupted_state_row_fails_restore(self, tmp_path):
        path = str(tmp_path / "corrupt.db")
        _writer_chain(2, n_blocks=2, storage=SQLiteBackend(path)).storage.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE kv SET encoded = '\"tampered\"' WHERE rowid = 1")
        conn.commit()
        conn.close()
        chain = Blockchain(_writer_runtime, state_root_version=2)
        with pytest.raises(StorageError, match="state root"):
            chain.attach_storage(SQLiteBackend(path))

    def test_schema_version_mismatch(self, tmp_path):
        path = str(tmp_path / "future.db")
        _writer_chain(2, n_blocks=1, storage=SQLiteBackend(path)).storage.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StorageError, match="schema"):
            SQLiteBackend(path)

    def test_missing_block_row_fails_restore(self, tmp_path):
        path = str(tmp_path / "gap.db")
        _writer_chain(2, n_blocks=3, storage=SQLiteBackend(path)).storage.close()
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM blocks WHERE height = 2")
        conn.commit()
        conn.close()
        chain = Blockchain(_writer_runtime, state_root_version=2)
        with pytest.raises(StorageError):
            chain.attach_storage(SQLiteBackend(path))


class TestCrashSafety:
    @pytest.mark.parametrize("boundary", WRITE_BOUNDARIES)
    def test_crash_at_every_write_boundary(self, tmp_path, boundary):
        path = str(tmp_path / f"crash-{boundary}.db")
        base = _writer_chain(2, n_blocks=2, storage=SQLiteBackend(path))
        sealed = _fingerprint(base)

        def crash(name: str) -> None:
            if name == boundary:
                raise OSError(f"simulated power loss at {name}")

        base.storage.crash_hook = crash
        with pytest.raises((OSError, StorageError)):
            base.propose_block("owner-1", _writer_txs(base, 3))
        base.storage.close()

        # The process died mid-commit: a fresh replica reopens the file and
        # must land exactly on the last durably sealed block.
        reopened = Blockchain(_writer_runtime, state_root_version=2)
        assert reopened.attach_storage(SQLiteBackend(path)) is True
        assert _fingerprint(reopened) == sealed
        assert reopened.storage.committed_height() == 2
        # The store is fully usable: growth continues byte-identically.
        _grow(reopened, 3, 4)
        assert _fingerprint(reopened) == _fingerprint(_writer_chain(2, n_blocks=4))
        reopened.storage.close()

    def test_torn_block_log_tail_is_ignored(self, tmp_path):
        path = str(tmp_path / "torn.db")
        chain = _writer_chain(2, n_blocks=2, storage=SQLiteBackend(path))
        sealed = _fingerprint(chain)
        log_path = chain.storage.log_path
        chain.storage.close()
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"block_hash": "torn half-written li')
        reopened = Blockchain(_writer_runtime, state_root_version=2)
        reopened.attach_storage(SQLiteBackend(path))
        assert _fingerprint(reopened) == sealed
        reopened.storage.close()

    def test_block_log_mirrors_every_sealed_block(self, tmp_path):
        import json

        path = str(tmp_path / "log.db")
        chain = _writer_chain(2, n_blocks=3, storage=SQLiteBackend(path))
        with open(chain.storage.log_path, "r", encoding="utf-8") as handle:
            logged = [json.loads(line)["block_hash"] for line in handle]
        assert logged == [block.block_hash for block in chain.blocks]
        chain.storage.close()


@pytest.mark.parametrize("root_version", [2, 3])
class TestMemorySqliteParity:
    def test_random_op_sequences_persist_identically(self, tmp_path, root_version):
        rng = np.random.default_rng(int(root_version) * 101)
        path = str(tmp_path / "parity.db")
        persisted = Blockchain(
            _writer_runtime, state_root_version=root_version, storage=SQLiteBackend(path)
        )
        in_memory = Blockchain(_writer_runtime, state_root_version=root_version)
        for height in range(1, 7):
            seeds = [int(s) for s in rng.integers(10_000, size=int(rng.integers(1, 4)))]
            for chain in (persisted, in_memory):
                base = chain.next_nonce("alice")
                txs = [
                    Transaction(
                        sender="alice", contract="writer", method="scribble",
                        args={"seed": seed}, nonce=base + offset,
                    )
                    for offset, seed in enumerate(seeds)
                ]
                chain.propose_block(f"owner-{height % 2}", txs)
        assert _fingerprint(persisted) == _fingerprint(in_memory)
        persisted.storage.close()

        restored = Blockchain(_writer_runtime, state_root_version=root_version)
        restored.attach_storage(SQLiteBackend(path))
        assert restored.state.raw() == in_memory.state.raw()
        assert restored.state.state_root() == in_memory.state.state_root()
        if root_version >= 2:
            key = sorted(restored.state.keys("writer"))[0]
            proof = restored.state.prove("writer", key)
            assert proof.to_dict() == in_memory.state.prove("writer", key).to_dict()
        restored.storage.close()


class TestPruning:
    def test_prune_keeps_audit_verdicts(self, tmp_path):
        path = str(tmp_path / "prune.db")
        chain = _writer_chain(3, n_blocks=8, storage=SQLiteBackend(path))
        reference = _writer_chain(3, n_blocks=8)

        pruned = chain.prune(keep_last=3)
        assert pruned == [0, 1, 2, 3, 4, 5]
        assert chain.oldest_retained_version() == 6
        # Below-horizon historical reads fall back to snapshot+replay.
        for height in (0, 2, 5):
            assert chain.state_at(height).raw() == reference.state_at(height).raw()
        # The O(Δ) walk certifies head..horizon-1; nothing below.
        assert chain.verify_version_roots() == [8, 7, 6, 5]
        chain.storage.close()

        # Pruning is durable: the reopened replica has the same horizon.
        reopened = Blockchain(_writer_runtime, state_root_version=3)
        reopened.attach_storage(SQLiteBackend(path))
        assert reopened.oldest_retained_version() == 6
        assert _fingerprint(reopened) == _fingerprint(reference)
        _grow(reopened, 9, 10)
        assert _fingerprint(reopened) == _fingerprint(_writer_chain(3, n_blocks=10))
        reopened.storage.close()

    def test_prune_to_standalone(self, tmp_path):
        path = str(tmp_path / "offline.db")
        _writer_chain(2, n_blocks=6, storage=SQLiteBackend(path)).storage.close()
        backend = SQLiteBackend(path)
        assert backend.prune_to(keep_last=2) == [0, 1, 2, 3, 4]
        assert backend.oldest_retained_delta() == 5
        assert backend.prune_to(keep_last=2) == []
        with pytest.raises(StorageError, match="at least"):
            backend.prune_to(keep_last=0)
        backend.close()

    def test_prune_floor_is_enforced(self):
        chain = _writer_chain(2, n_blocks=3)
        with pytest.raises(ValidationError):
            chain.state.prune_versions(keep_last=0)

    def test_view_below_horizon_raises_without_fallback(self):
        chain = _writer_chain(2, n_blocks=5)
        chain.state.prune_versions(keep_last=2)
        with pytest.raises(ValidationError, match="not retained"):
            chain.state.view_at(1)
        # ...but the chain-level read path silently replays instead.
        assert chain.state_at(1).state_root() == chain.blocks[1].header.state_root


class TestProtocolLifecycle:
    @pytest.fixture(scope="class")
    def small_setup(self):
        dataset, owners = make_owner_datasets(n_owners=3, sigma=0.1, n_samples=240, seed=11)
        config = ProtocolConfig(
            n_owners=3, n_groups=2, n_rounds=2, local_epochs=1,
            learning_rate=2.0, permutation_seed=11, state_root_version=3,
        )
        return dataset, owners, config

    def _protocol(self, small_setup, **kwargs):
        dataset, owners, config = small_setup
        return BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
            config, **kwargs,
        )

    def test_interrupt_and_resume_is_byte_identical(self, tmp_path, small_setup):
        dataset, owners, config = small_setup
        baseline = self._protocol(small_setup)
        baseline_result = baseline.run()
        expected = _fingerprint(baseline.participants[baseline.owner_ids[0]].node.chain)

        store = f"sqlite:{tmp_path / 'run.db'}"
        interrupted = self._protocol(small_setup, store=store)
        interrupted.setup()
        first = interrupted.run_round(0, interrupted._template_parameters)
        interrupted.close()

        resumed = BlockchainFLProtocol.resume_from(
            store, owners, dataset.test_features, dataset.test_labels,
            dataset.n_classes, config,
        )
        assert resumed.completed_rounds() == [0]
        result = resumed.resume_run()
        chain = resumed.participants[resumed.owner_ids[0]].node.chain
        assert _fingerprint(chain) == expected
        assert result.reward_balances == baseline_result.reward_balances
        assert result.rounds[0].user_values == first.user_values
        resumed.close()

        # Resuming a finished run is idempotent: results re-read from chain.
        again = BlockchainFLProtocol.resume_from(
            store, owners, dataset.test_features, dataset.test_labels,
            dataset.n_classes, config,
        )
        replayed = again.resume_run()
        assert _fingerprint(again.participants[again.owner_ids[0]].node.chain) == expected
        assert replayed.reward_balances == baseline_result.reward_balances
        assert replayed.total_transactions == baseline_result.total_transactions
        again.close()

    def test_used_store_refuses_plain_open(self, tmp_path, small_setup):
        store = f"sqlite:{tmp_path / 'used.db'}"
        protocol = self._protocol(small_setup, store=store)
        protocol.setup()
        protocol.close()
        with pytest.raises(ProtocolError, match="resume_from"):
            self._protocol(small_setup, store=store)

    def test_resume_config_drift_is_refused(self, tmp_path, small_setup):
        dataset, owners, config = small_setup
        store = f"sqlite:{tmp_path / 'drift.db'}"
        protocol = self._protocol(small_setup, store=store)
        protocol.setup()
        protocol.close()
        drifted = ProtocolConfig(
            n_owners=3, n_groups=2, n_rounds=4, local_epochs=1,
            learning_rate=2.0, permutation_seed=11, state_root_version=3,
        )
        with pytest.raises(ProtocolError, match="n_rounds"):
            BlockchainFLProtocol.resume_from(
                store, owners, dataset.test_features, dataset.test_labels,
                dataset.n_classes, drifted,
            )

    def test_empty_store_has_nothing_to_resume(self, tmp_path, small_setup):
        dataset, owners, config = small_setup
        with pytest.raises(ProtocolError, match="no committed chain"):
            BlockchainFLProtocol.resume_from(
                f"sqlite:{tmp_path / 'empty.db'}", owners, dataset.test_features,
                dataset.test_labels, dataset.n_classes, config,
            )

    def test_prune_then_audit_verdicts_match(self, tmp_path, small_setup):
        dataset, owners, config = small_setup
        store = f"sqlite:{tmp_path / 'audit.db'}"
        protocol = self._protocol(small_setup, store=store)
        protocol.run()
        chain = protocol.participants[protocol.owner_ids[0]].node.chain

        def incremental():
            return audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode="incremental",
            )

        before = incremental()
        assert before.passed and before.prune_horizon is None
        chain.prune(keep_last=2)
        after = incremental()
        assert after.passed
        assert after.rounds_checked == before.rounds_checked
        assert after.recomputed_totals == before.recomputed_totals
        assert after.prune_horizon == chain.oldest_retained_version()
        assert after.replayed_below_horizon == list(range(after.state_versions_checked[-1]))
        protocol.close()
