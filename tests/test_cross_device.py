"""Tests for the cross-device simulation harness.

The acceptance criteria this file pins: a 1 000-device sharded round completes
where flat aggregation is infeasible, every device derives O(shard_size)
pairwise masks, and the exact estimator refuses once committees outnumber the
exact engine's player cap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.crossdevice import (
    DISTRIBUTIONS,
    CrossDeviceConfig,
    CrossDeviceResult,
    quality_weights,
    simulate_cross_device,
)
from repro.exceptions import ShapleyError, ValidationError
from repro.shapley.engine import MAX_PLAYERS


class TestQualityWeights:
    def test_uniform_is_all_ones(self):
        assert np.array_equal(quality_weights(5, "uniform"), np.ones(5))

    def test_linear_decays_from_one_to_zero(self):
        weights = quality_weights(5, "linear")
        assert weights[0] == 1.0
        assert weights[-1] == 0.0
        assert np.all(np.diff(weights) < 0)

    def test_quadratic_is_below_linear_in_the_interior(self):
        linear = quality_weights(10, "linear")
        quadratic = quality_weights(10, "quadratic")
        assert np.all(quadratic[1:-1] < linear[1:-1])
        assert quadratic[0] == 1.0 and quadratic[-1] == 0.0

    def test_single_device_edge(self):
        for distribution in DISTRIBUTIONS:
            assert np.array_equal(quality_weights(1, distribution), np.ones(1))

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValidationError):
            quality_weights(5, "bimodal")
        with pytest.raises(ValidationError):
            quality_weights(0, "uniform")


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValidationError):
            CrossDeviceConfig(n_devices=1)
        with pytest.raises(ValidationError):
            CrossDeviceConfig(shard_size=1)
        with pytest.raises(ValidationError):
            CrossDeviceConfig(distribution="bimodal")
        with pytest.raises(ValidationError):
            CrossDeviceConfig(sv_estimator="bayesian")
        with pytest.raises(ValidationError):
            CrossDeviceConfig(sv_samples=1)
        with pytest.raises(ValidationError):
            CrossDeviceConfig(n_rounds=0)


@pytest.fixture(scope="module")
def thousand_device_run() -> CrossDeviceResult:
    """The headline scale point: 1k devices, committees of 32, sampled SV."""
    return simulate_cross_device(
        CrossDeviceConfig(
            n_devices=1000, shard_size=32, distribution="linear",
            sv_estimator="sampled", sv_samples=32,
        )
    )


class TestCrossDeviceScale:
    def test_thousand_device_round_completes(self, thousand_device_run):
        result = thousand_device_run
        record = result.rounds[0]
        assert len(record.shards) == 32  # ceil(1000 / 32)
        assert sum(len(shard) for shard in record.shards) == 1000
        assert len(record.user_values) == 1000
        assert record.estimator is not None
        assert record.estimator["name"] == "sampled"

    def test_per_device_mask_count_is_o_shard_size(self, thousand_device_run):
        result = thousand_device_run
        record = result.rounds[0]
        sizes = {device: len(shard) for shard in record.shards for device in shard}
        for device, count in record.mask_counts.items():
            assert count == sizes[device] - 1
        # O(shard_size), never O(cohort): flat masking would need 999.
        assert result.max_mask_count <= 31
        assert min(record.mask_counts.values()) >= 2

    def test_committee_values_carry_confidence_bounds(self, thousand_device_run):
        record = thousand_device_run.rounds[0]
        assert set(record.user_half_widths) == set(record.user_values)
        assert all(width >= 0.0 for width in record.user_half_widths.values())

    def test_exact_estimator_refuses_past_the_engine_cap(self):
        config = CrossDeviceConfig(n_devices=100, shard_size=2, sv_estimator="exact")
        with pytest.raises(ShapleyError, match="exact GroupSV"):
            simulate_cross_device(config)

    def test_exact_estimator_works_under_the_cap(self):
        config = CrossDeviceConfig(
            n_devices=12, shard_size=3, sv_estimator="exact", n_train=128, n_test=64
        )
        result = simulate_cross_device(config)
        record = result.rounds[0]
        assert len(record.shards) <= MAX_PLAYERS
        # Exact SV is efficient: committee values sum to the grand utility.
        assert sum(record.shard_values) == pytest.approx(record.global_utility)

    def test_deterministic_in_the_config(self):
        config = CrossDeviceConfig(n_devices=64, shard_size=8, sv_samples=16, n_train=128, n_test=64)
        first = simulate_cross_device(config)
        second = simulate_cross_device(config)
        assert first.rounds[0].user_values == second.rounds[0].user_values
        assert first.rounds[0].user_half_widths == second.rounds[0].user_half_widths

    def test_uniform_quality_gives_symmetric_committees(self):
        # Under uniform quality every device model equals the base model, so
        # every committee model is identical and the stratified estimator
        # resolves every committee to the same value.
        result = simulate_cross_device(
            CrossDeviceConfig(
                n_devices=64, shard_size=8, distribution="uniform",
                sv_samples=16, n_train=128, n_test=64,
            )
        )
        values = result.rounds[0].shard_values
        assert max(values) - min(values) == pytest.approx(0.0, abs=1e-12)


class TestCrossDeviceCli:
    def test_cross_device_scenario_runs(self, capsys):
        code = main([
            "run", "--scenario", "cross-device-uniform", "--owners", "64",
            "--shard-size", "8", "--sv-samples", "16", "--rounds", "1", "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cross-device simulation" in out
        assert "per-device pairwise masks: 7 max" in out

    def test_cross_device_exact_refusal_is_a_clean_error(self, capsys):
        code = main([
            "run", "--scenario", "cross-device-linear", "--owners", "100",
            "--shard-size", "2", "--sv-estimator", "exact", "--rounds", "1",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "error:" in out
