"""Parity pins for the batched sampled-Shapley pipeline.

The batched estimator (incremental prefix rows + bitmask score cache + one
backend-routed GEMM per block) is a pure performance restructuring of the
scalar oracle walk: every output — values, half-widths, evaluation counts,
exceptions, and therefore every on-chain receipt — must be bit-identical at
any method, backend, or worker count.  These tests pin that contract:

* a Hypothesis sweep comparing the batched path against the scalar oracle
  across random player counts, sample counts, and seeds;
* process-pool parity at several worker counts, with the scorer's chunk size
  shrunk so the pool genuinely splits the block batches;
* audit cross-parity — a chain written by the scalar path must verify under a
  batched auditor and vice versa;
* the telemetry receipt: deterministic counters on chain for batched rounds,
  absent for scalar rounds, and wall-clock time kept off-chain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.shapley.estimator as estimator_module
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import ShapleyError
from repro.shapley.backend import ProcessPoolEvaluationBackend
from repro.shapley.estimator import (
    VectorModelUtility,
    sampled_group_shapley,
    stratified_permutation_shapley,
)
from repro.shapley.utility import AccuracyUtility, CachedUtility

N_CLASSES = 3
N_FEATURES = 4
#: Flat logistic-regression dimension AccuracyUtility scores against.
DIMENSION = N_FEATURES * N_CLASSES + N_CLASSES


def _group_game(m: int, n_samples: int, seed: int):
    """A deterministic group game: random member vectors + accuracy scorer."""
    rng = np.random.default_rng(seed)
    labels = [f"group-{j}" for j in range(m)]
    vectors = {label: rng.normal(size=DIMENSION) for label in labels}
    scorer = AccuracyUtility(
        rng.normal(size=(n_samples, N_FEATURES)),
        rng.integers(0, N_CLASSES, size=n_samples),
        N_CLASSES,
    )
    return labels, vectors, scorer


def _ordered(estimate, labels):
    return np.array([estimate.values[label] for label in labels]), np.array(
        [estimate.half_widths[label] for label in labels]
    )


class TestBatchedMatchesScalarOracle:
    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=9),
        n_permutations=st.integers(min_value=2, max_value=24),
        n_samples=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_bit_identical_across_games(self, m, n_permutations, n_samples, seed):
        labels, vectors, scorer = _group_game(m, n_samples, seed)
        scalar = sampled_group_shapley(
            labels, vectors, scorer, n_permutations=n_permutations, seed=seed,
            method="scalar",
        )
        batched = sampled_group_shapley(
            labels, vectors, scorer, n_permutations=n_permutations, seed=seed,
            method="batched",
        )
        # Dataclass equality covers values, half_widths, n_permutations, seed,
        # confidence, tolerance, and grand_utility; np.array_equal re-checks
        # the numeric fields with no tolerance at all.
        assert batched == scalar
        scalar_values, scalar_widths = _ordered(scalar, labels)
        batched_values, batched_widths = _ordered(batched, labels)
        assert np.array_equal(batched_values, scalar_values)
        assert np.array_equal(batched_widths, scalar_widths)
        # The bitmask cache must dedupe exactly as deeply as the scalar
        # CachedUtility: same count of distinct coalitions scored.
        assert batched.evaluations == scalar.evaluations

    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_process_pool_parity_at_several_worker_counts(self, n_workers, monkeypatch):
        labels, vectors, scorer = _group_game(m=8, n_samples=16, seed=42)
        # Shrink the scorer's chunk so the pool genuinely splits the block
        # batches (the default unit dwarfs an m=8 block's <=64 rows).
        monkeypatch.setattr(
            type(scorer), "_CHUNK_LOGITS_ELEMENTS", 4 * 16 * N_CLASSES
        )
        serial = sampled_group_shapley(
            labels, vectors, scorer, n_permutations=16, seed=5, method="batched",
        )
        backend = ProcessPoolEvaluationBackend(n_workers, min_parallel_rows=1)
        try:
            pooled = sampled_group_shapley(
                labels, vectors, scorer, n_permutations=16, seed=5,
                backend=backend, method="batched",
            )
        finally:
            backend.close()
        assert pooled == serial
        pooled_values, pooled_widths = _ordered(pooled, labels)
        serial_values, serial_widths = _ordered(serial, labels)
        assert np.array_equal(pooled_values, serial_values)
        assert np.array_equal(pooled_widths, serial_widths)
        assert pooled.telemetry["backend"] == "process-pool"
        assert pooled.telemetry["n_workers"] == n_workers
        # Same dedupe, same batch structure — only the wall clock may differ.
        for counter in ("coalitions", "cache_hits", "batches"):
            assert pooled.telemetry[counter] == serial.telemetry[counter]

    def test_auto_routes_batched_only_for_bare_vector_games(self):
        labels, vectors, scorer = _group_game(m=4, n_samples=8, seed=3)
        auto = sampled_group_shapley(labels, vectors, scorer, n_permutations=8, seed=1)
        assert auto.telemetry is not None  # took the batched path
        wrapped = CachedUtility(VectorModelUtility(vectors, scorer))
        scalar = stratified_permutation_shapley(
            labels, wrapped, n_permutations=8, seed=1
        )
        assert scalar.telemetry is None  # cached games stay on the oracle walk
        assert scalar == auto

    def test_explicit_batched_requires_a_vector_game(self):
        with pytest.raises(ShapleyError, match="VectorModelUtility"):
            stratified_permutation_shapley(
                ["a", "b"], lambda s: float(len(s)), n_permutations=4, method="batched"
            )
        with pytest.raises(ShapleyError, match="method"):
            labels, vectors, scorer = _group_game(m=2, n_samples=4, seed=0)
            sampled_group_shapley(
                labels, vectors, scorer, n_permutations=4, method="turbo"
            )


@pytest.fixture(scope="module")
def sampled_setup():
    return make_owner_datasets(n_owners=6, sigma=0.1, n_samples=400, seed=7)


def _run_sampled_protocol(sampled_setup):
    dataset, owners = sampled_setup
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
        ProtocolConfig(
            n_owners=6, n_groups=3, n_rounds=2, local_epochs=2,
            learning_rate=2.0, permutation_seed=13,
            sv_estimator="sampled", sv_samples=12,
        ),
    )
    protocol.run()
    return protocol


class TestAuditCrossParity:
    """A chain written by one method must verify under the other.

    ``_DEFAULT_METHOD`` is the module-level routing default the contract and
    the audit both resolve ``method=None`` against, so monkeypatching it flips
    writer and auditor independently — exactly the situation of two nodes
    running different build configurations of the same code version.
    """

    @pytest.fixture(scope="class")
    def scalar_written(self, sampled_setup, request):
        monkey = pytest.MonkeyPatch()
        request.addfinalizer(monkey.undo)
        monkey.setattr(estimator_module, "_DEFAULT_METHOD", "scalar")
        protocol = _run_sampled_protocol(sampled_setup)
        monkey.undo()
        return protocol

    @pytest.fixture(scope="class")
    def batched_written(self, sampled_setup):
        return _run_sampled_protocol(sampled_setup)

    def test_receipt_numbers_are_identical_across_methods(self, scalar_written, batched_written):
        """Every number in the receipts is bit-identical across methods.

        The only difference the batched path may introduce is the *additive*
        telemetry key — values, half-widths, user splits, and totals are the
        same floats to the last bit.
        """
        scalar_chain = scalar_written.participants[scalar_written.owner_ids[0]].node.chain
        batched_chain = batched_written.participants[batched_written.owner_ids[0]].node.chain
        for round_number in (0, 1):
            scalar_record = dict(scalar_chain.state.get("contribution", f"evaluation/{round_number}"))
            batched_record = dict(batched_chain.state.get("contribution", f"evaluation/{round_number}"))
            batched_estimator = dict(batched_record["estimator"])
            assert batched_estimator.pop("telemetry", None) is not None
            batched_record["estimator"] = batched_estimator
            assert scalar_record == batched_record
        assert scalar_chain.state.get("contribution", "totals") == \
            batched_chain.state.get("contribution", "totals")

    def test_scalar_chain_verifies_under_a_batched_auditor(self, sampled_setup, scalar_written):
        # Incremental mode: the estimator re-run is checked within its
        # verified bounds, so the auditor's method is free.  (Replay mode
        # re-executes the contract byte-for-byte and is therefore pinned to
        # the writer's method default, exercised below.)
        dataset, _ = sampled_setup
        chain = scalar_written.participants[scalar_written.owner_ids[0]].node.chain
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode="incremental",
        )
        assert report.passed, report.mismatches
        assert report.estimators_checked == [0, 1]

    def test_batched_chain_verifies_under_a_scalar_auditor(
        self, sampled_setup, batched_written, monkeypatch
    ):
        dataset, _ = sampled_setup
        chain = batched_written.participants[batched_written.owner_ids[0]].node.chain
        monkeypatch.setattr(estimator_module, "_DEFAULT_METHOD", "scalar")
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode="incremental",
        )
        assert report.passed, report.mismatches
        assert report.estimators_checked == [0, 1]

    def test_replay_audit_passes_when_auditor_matches_the_writer(
        self, sampled_setup, scalar_written, batched_written, monkeypatch
    ):
        dataset, _ = sampled_setup
        batched_chain = batched_written.participants[batched_written.owner_ids[0]].node.chain
        report = audit_chain(
            batched_chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
        )
        assert report.passed, report.mismatches
        monkeypatch.setattr(estimator_module, "_DEFAULT_METHOD", "scalar")
        scalar_chain = scalar_written.participants[scalar_written.owner_ids[0]].node.chain
        report = audit_chain(
            scalar_chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
        )
        assert report.passed, report.mismatches

    def test_batched_receipts_carry_deterministic_telemetry_only(self, batched_written):
        chain = batched_written.participants[batched_written.owner_ids[0]].node.chain
        for round_number in (0, 1):
            record = chain.state.get("contribution", f"evaluation/{round_number}")
            telemetry = record["estimator"]["telemetry"]
            # Pure functions of (labels, n_samples, seed) — consensus-safe.
            assert set(telemetry) == {"coalitions", "cache_hits", "batches"}
            assert telemetry["coalitions"] > 0
            assert telemetry["cache_hits"] >= 0
            assert telemetry["batches"] >= 1
            # Wall-clock time and backend identity must never reach the chain.
            assert "backend_seconds" not in telemetry
            assert "backend" not in telemetry

    def test_scalar_receipts_omit_the_telemetry_key(self, scalar_written):
        chain = scalar_written.participants[scalar_written.owner_ids[0]].node.chain
        record = chain.state.get("contribution", "evaluation/0")
        assert "telemetry" not in record["estimator"]

    def test_audit_flags_tampered_telemetry_counters(self, sampled_setup, batched_written):
        from repro.core.audit import AuditReport, _audit_sampled_round

        dataset, _ = sampled_setup
        chain = batched_written.participants[batched_written.owner_ids[0]].node.chain
        scorer = AccuracyUtility(
            dataset.test_features, dataset.test_labels, dataset.n_classes
        )
        round_record = chain.state.get("fl_training", "round/0")
        stored = dict(chain.state.get("contribution", "evaluation/0"))
        tampered = dict(stored)
        tampered["estimator"] = dict(stored["estimator"])
        tampered["estimator"]["telemetry"] = dict(stored["estimator"]["telemetry"])
        tampered["estimator"]["telemetry"]["coalitions"] += 1
        report = AuditReport(chain_valid=True)
        assert not _audit_sampled_round(
            scorer, round_record, tampered,
            batched_written.config.permutation_seed,
            batched_written.config.sv_samples,
            report, tolerance=1e-9,
        )
        assert any("telemetry" in mismatch for mismatch in report.mismatches)
