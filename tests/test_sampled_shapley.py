"""Tests for the stratified + truncated sampled Shapley estimator.

The properties the on-chain receipts rely on: determinism in the seed,
unbiasedness (exact recovery on additive games, CI coverage of exact values on
real model games), honest confidence intervals, rounded-up block counts, and
the canonical per-round seed derivation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_blobs
from repro.exceptions import ShapleyError
from repro.shapley.engine import (
    coalition_utility_table,
    exact_shapley_from_utility_vector,
    utility_table_to_vector,
)
from repro.shapley.estimator import (
    DEFAULT_CONFIDENCE,
    TRUNCATION_TOLERANCE,
    ShapleyEstimate,
    VectorModelUtility,
    estimator_seed_for_round,
    sampled_group_shapley,
    stratified_permutation_shapley,
)
from repro.shapley.native import native_shapley
from repro.shapley.utility import AccuracyUtility, CachedUtility, CoalitionModelUtility
from repro.utils.rng import spawn_rng


def _weights(players):
    return {player: 0.1 * (index + 1) for index, player in enumerate(players)}


class TestStratifiedPermutationShapley:
    def test_deterministic_in_the_seed(self):
        # An asymmetric game: a symmetric one would estimate identically under
        # every seed thanks to the position stratification.
        players = ["a", "b", "c"]
        weights = _weights(players)
        utility = lambda s: sum(weights[p] for p in s) ** 2
        first = stratified_permutation_shapley(players, utility, n_permutations=12, seed=3)
        second = stratified_permutation_shapley(players, utility, n_permutations=12, seed=3)
        assert first == second
        different = stratified_permutation_shapley(players, utility, n_permutations=12, seed=4)
        assert different.values != first.values or different.half_widths != first.half_widths

    def test_additive_game_is_recovered_exactly_with_zero_width(self):
        # In an additive game every marginal equals the player's weight, so
        # the estimator is exact and the sample variance is identically zero.
        players = ["a", "b", "c", "d"]
        weights = _weights(players)
        utility = lambda s: sum(weights[p] for p in s)
        estimate = stratified_permutation_shapley(
            players, utility, n_permutations=8, seed=1, tolerance=0.0
        )
        for player in players:
            assert estimate.values[player] == pytest.approx(weights[player], abs=1e-12)
            # Up to float cancellation in the running sum of squares.
            assert estimate.half_widths[player] == pytest.approx(0.0, abs=1e-6)

    def test_estimates_cover_the_exact_values_on_a_nonadditive_game(self):
        players = [f"p{i}" for i in range(6)]
        weights = _weights(players)
        utility = lambda s: sum(weights[p] for p in s) ** 2
        exact = native_shapley(players, utility)
        estimate = stratified_permutation_shapley(
            players, utility, n_permutations=300, seed=2, tolerance=0.0
        )
        assert estimate.within_bounds(exact)

    def test_block_stratification_rounds_the_sample_count_up(self):
        players = ["a", "b", "c"]
        estimate = stratified_permutation_shapley(players, lambda s: float(len(s)), n_permutations=4, seed=0)
        # 4 requested, m = 3 → 2 blocks of 3 rotations = 6 actual.
        assert estimate.n_permutations == 6

    def test_single_player_game(self):
        estimate = stratified_permutation_shapley(["solo"], lambda s: 2.5 if s else 0.0, n_permutations=4, seed=0)
        assert estimate.values == {"solo": 2.5}
        assert estimate.half_widths["solo"] == 0.0
        assert estimate.grand_utility == 2.5

    def test_efficiency_holds_without_truncation(self):
        # Permutation sampling is exactly efficient per permutation: the
        # marginals along one order telescope to u(grand) − u(∅).
        players = [f"p{i}" for i in range(5)]
        weights = _weights(players)
        utility = lambda s: sum(weights[p] for p in s) ** 2
        estimate = stratified_permutation_shapley(
            players, utility, n_permutations=20, seed=5, tolerance=0.0
        )
        assert sum(estimate.values.values()) == pytest.approx(estimate.grand_utility)

    def test_truncation_zeroes_the_tail(self):
        # With a huge tolerance every prefix is "within tolerance" of the
        # grand utility, so only first-position marginals survive.
        players = ["a", "b", "c"]
        utility = lambda s: float(len(s))
        truncated = stratified_permutation_shapley(
            players, utility, n_permutations=6, seed=0, tolerance=100.0
        )
        full = stratified_permutation_shapley(
            players, utility, n_permutations=6, seed=0, tolerance=0.0
        )
        # Stratification puts each player first exactly once per block, so the
        # truncated estimate is 1/m of the first-position marginal.
        for player in players:
            assert truncated.values[player] == pytest.approx(1.0 / 3.0)
            assert full.values[player] == pytest.approx(1.0)

    def test_input_validation(self):
        utility = lambda s: float(len(s))
        with pytest.raises(ShapleyError):
            stratified_permutation_shapley([], utility)
        with pytest.raises(ShapleyError):
            stratified_permutation_shapley(["a"], utility, n_permutations=1)
        with pytest.raises(ShapleyError):
            stratified_permutation_shapley(["a", "a"], utility)
        with pytest.raises(ShapleyError):
            stratified_permutation_shapley(["a"], utility, confidence=0.5)
        with pytest.raises(ShapleyError):
            stratified_permutation_shapley(["a"], utility, tolerance=-1.0)

    def test_result_is_order_independent(self):
        players = ["c", "a", "b"]
        utility = lambda s: float(len(s)) ** 2
        forward = stratified_permutation_shapley(sorted(players), utility, n_permutations=9, seed=7)
        shuffled = stratified_permutation_shapley(players, utility, n_permutations=9, seed=7)
        assert forward == shuffled


class TestEstimatorSeed:
    def test_pure_function_of_seed_and_round(self):
        assert estimator_seed_for_round(13, 0) == estimator_seed_for_round(13, 0)
        assert estimator_seed_for_round(13, 0) != estimator_seed_for_round(13, 1)
        assert estimator_seed_for_round(13, 0) != estimator_seed_for_round(14, 0)

    def test_stays_in_the_signed_32_bit_range(self):
        for seed in (0, 13, 2**31, 2**40):
            for round_number in (0, 5, 1000):
                derived = estimator_seed_for_round(seed, round_number)
                assert 0 <= derived <= 0x7FFFFFFF


class TestShapleyEstimate:
    def test_within_bounds(self):
        estimate = ShapleyEstimate(
            values={"a": 1.0, "b": 2.0},
            half_widths={"a": 0.1, "b": 0.2},
            n_permutations=10, seed=0,
            confidence=DEFAULT_CONFIDENCE, tolerance=TRUNCATION_TOLERANCE,
            grand_utility=3.0,
        )
        assert estimate.within_bounds({"a": 1.05, "b": 1.85})
        assert not estimate.within_bounds({"a": 1.2, "b": 2.0})
        assert not estimate.within_bounds({"a": 1.0})  # missing player


@pytest.fixture(scope="module")
def model_game():
    """A 10-player game over real model vectors scored on a validation set."""
    features, labels = make_blobs(400, 8, 3, seed=21)
    scorer = AccuracyUtility(features[200:], labels[200:], 3)
    rng = spawn_rng("sampled-shapley-models", 21)
    base = rng.normal(size=(8 + 1) * 3)
    vectors = {f"g{i:02d}": base + 0.4 * rng.normal(size=base.size) for i in range(10)}
    return vectors, scorer


class TestModelGameCoverage:
    def test_sampled_estimate_covers_the_exact_values(self, model_game):
        # The acceptance criterion: at n ≤ 14 groups the sampled estimate must
        # fall within its reported confidence interval of the exact values.
        vectors, scorer = model_game
        labels = sorted(vectors)
        table = coalition_utility_table(vectors, scorer)
        exact_values = exact_shapley_from_utility_vector(
            utility_table_to_vector(labels, table)
        )
        exact = {label: float(value) for label, value in zip(labels, exact_values)}
        estimate = sampled_group_shapley(
            labels, vectors, scorer, n_permutations=400, seed=11
        )
        assert estimate.within_bounds(exact), {
            label: (exact[label], estimate.values[label], estimate.half_widths[label])
            for label in labels
        }

    def test_vector_utility_matches_the_model_parameters_utility(self, model_game, scorer, local_models):
        # VectorModelUtility over flat vectors must agree bit for bit with
        # CoalitionModelUtility over the equivalent ModelParameters.
        reference = CoalitionModelUtility(local_models, scorer)
        vectors = {owner: model.to_vector() for owner, model in local_models.items()}
        vector_utility = VectorModelUtility(vectors, scorer)
        owners = sorted(local_models)
        coalitions = [(owners[0],), tuple(owners[:2]), tuple(owners), ()]
        for coalition in coalitions:
            assert vector_utility(coalition) == reference(coalition)
        batched = vector_utility.evaluate_coalitions(coalitions)
        assert batched == [reference(c) for c in coalitions]

    def test_sampled_group_shapley_rejects_label_mismatch(self, model_game):
        vectors, scorer = model_game
        with pytest.raises(ShapleyError):
            sampled_group_shapley(["x"], vectors, scorer)

    def test_cached_utility_is_reused_across_blocks(self, model_game):
        vectors, scorer = model_game
        labels = sorted(vectors)[:5]
        subset = {label: vectors[label] for label in labels}
        utility = CachedUtility(VectorModelUtility(subset, scorer))
        estimate = stratified_permutation_shapley(labels, utility, n_permutations=50, seed=3)
        # The cache bounds distinct evaluations by the number of distinct
        # prefixes, well under blocks × m².
        assert estimate.evaluations == utility.evaluations()
        assert estimate.evaluations < estimate.n_permutations * len(labels)
