"""Tests for noise injection, dataset loading, and synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loader import make_owner_datasets, train_test_split
from repro.datasets.noise import apply_quality_gradient, gaussian_noise
from repro.datasets.synthetic import make_blobs, make_classification
from repro.exceptions import ValidationError


class TestGaussianNoise:
    def test_zero_sigma_returns_identical_copy(self):
        features = np.ones((10, 4))
        noisy = gaussian_noise(features, 0.0)
        assert np.array_equal(noisy, features)
        assert noisy is not features

    def test_noise_scale_grows_with_sigma(self):
        features = np.zeros((200, 10))
        small = gaussian_noise(features, 0.1, seed=1)
        large = gaussian_noise(features, 2.0, seed=1)
        assert np.std(large) > np.std(small)

    def test_deterministic_for_seed(self):
        features = np.zeros((20, 3))
        assert np.array_equal(gaussian_noise(features, 1.0, seed=5), gaussian_noise(features, 1.0, seed=5))

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            gaussian_noise(np.zeros((2, 2)), -1.0)


class TestQualityGradient:
    def test_first_owner_keeps_clean_data(self):
        owner_features = {"owner-0": np.ones((5, 3)), "owner-1": np.ones((5, 3))}
        degraded = apply_quality_gradient(owner_features, sigma=1.0, seed=0)
        assert np.array_equal(degraded["owner-0"], owner_features["owner-0"])
        assert not np.array_equal(degraded["owner-1"], owner_features["owner-1"])

    def test_noise_grows_with_owner_rank(self):
        owner_features = {f"owner-{i}": np.zeros((500, 8)) for i in range(4)}
        degraded = apply_quality_gradient(owner_features, sigma=0.5, seed=1)
        stds = [np.std(degraded[f"owner-{i}"]) for i in range(4)]
        assert stds[0] == 0.0
        assert stds[1] < stds[2] < stds[3]

    def test_clipping_is_applied_when_requested(self):
        owner_features = {"owner-0": np.full((10, 2), 8.0), "owner-1": np.full((10, 2), 8.0)}
        degraded = apply_quality_gradient(owner_features, sigma=100.0, seed=2, clip_range=(0.0, 16.0))
        assert degraded["owner-1"].min() >= 0.0
        assert degraded["owner-1"].max() <= 16.0

    def test_sigma_zero_keeps_everyone_clean(self):
        owner_features = {f"owner-{i}": np.ones((4, 2)) for i in range(3)}
        degraded = apply_quality_gradient(owner_features, sigma=0.0)
        assert all(np.array_equal(degraded[k], owner_features[k]) for k in owner_features)


class TestTrainTestSplit:
    def test_split_sizes(self):
        features, labels = make_blobs(100, 4, 3, seed=0)
        train_x, train_y, test_x, test_y = train_test_split(features, labels, test_fraction=0.2, seed=0)
        assert train_x.shape[0] == 80 and test_x.shape[0] == 20
        assert train_y.size == 80 and test_y.size == 20

    def test_split_is_disjoint_and_complete(self):
        features, labels = make_blobs(60, 3, 2, seed=1)
        train_x, _, test_x, _ = train_test_split(features, labels, test_fraction=0.25, seed=1)
        combined = np.vstack([train_x, test_x])
        assert combined.shape[0] == features.shape[0]
        assert sorted(map(tuple, combined.tolist())) == sorted(map(tuple, features.tolist()))

    def test_deterministic_for_seed(self):
        features, labels = make_blobs(60, 3, 2, seed=1)
        a = train_test_split(features, labels, seed=7)
        b = train_test_split(features, labels, seed=7)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_rejects_bad_fraction(self):
        features, labels = make_blobs(30, 3, 2, seed=1)
        with pytest.raises(ValidationError):
            train_test_split(features, labels, test_fraction=0.0)
        with pytest.raises(ValidationError):
            train_test_split(features, labels, test_fraction=1.0)


class TestMakeOwnerDatasets:
    def test_paper_setup_shape(self):
        dataset, owners = make_owner_datasets(n_owners=9, sigma=0.0, n_samples=900, seed=0)
        assert len(owners) == 9
        assert dataset.n_train + dataset.n_test == 900
        assert abs(dataset.n_test - 0.2 * 900) <= 1
        assert dataset.n_features == 64

    def test_owner_sizes_are_balanced(self):
        _, owners = make_owner_datasets(n_owners=5, sigma=0.0, n_samples=500, seed=0)
        sizes = [o.n_samples for o in owners]
        assert max(sizes) - min(sizes) <= 1

    def test_noise_sigma_recorded_per_owner(self):
        _, owners = make_owner_datasets(n_owners=4, sigma=0.3, n_samples=400, seed=0)
        assert [o.noise_sigma for o in owners] == pytest.approx([0.0, 0.3, 0.6, 0.9])

    def test_sigma_zero_keeps_owner_features_in_pixel_range(self):
        _, owners = make_owner_datasets(n_owners=3, sigma=0.0, n_samples=300, seed=0, normalized=True)
        for owner in owners:
            assert owner.features.min() >= 0.0 and owner.features.max() <= 1.0

    def test_higher_rank_owners_are_noisier(self):
        dataset, owners = make_owner_datasets(n_owners=4, sigma=0.5, n_samples=400, seed=0)
        clean_std = np.std(owners[0].features)
        noisy_std = np.std(owners[-1].features)
        assert noisy_std > clean_std

    def test_deterministic_for_seed(self):
        a_dataset, a_owners = make_owner_datasets(n_owners=3, sigma=0.1, n_samples=300, seed=4)
        b_dataset, b_owners = make_owner_datasets(n_owners=3, sigma=0.1, n_samples=300, seed=4)
        assert np.array_equal(a_dataset.train_features, b_dataset.train_features)
        assert all(np.array_equal(x.features, y.features) for x, y in zip(a_owners, b_owners))

    def test_rejects_zero_owners(self):
        with pytest.raises(ValidationError):
            make_owner_datasets(n_owners=0)


class TestSyntheticGenerators:
    def test_blobs_shapes_and_classes(self):
        features, labels = make_blobs(90, 5, 3, seed=0)
        assert features.shape == (90, 5)
        assert set(labels.tolist()) == {0, 1, 2}

    def test_blobs_are_linearly_separable_when_far_apart(self):
        from repro.fl.logistic_regression import LogisticRegressionModel

        features, labels = make_blobs(300, 4, 3, class_separation=6.0, noise=0.5, seed=1)
        model = LogisticRegressionModel(4, 3)
        metrics = model.fit(features, labels, epochs=50, learning_rate=0.5)
        assert metrics["accuracy"] > 0.95

    def test_blobs_deterministic(self):
        a = make_blobs(50, 3, 2, seed=5)
        b = make_blobs(50, 3, 2, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_blobs_reject_bad_arguments(self):
        with pytest.raises(ValidationError):
            make_blobs(2, 3, 5)
        with pytest.raises(ValidationError):
            make_blobs(50, 0, 2)

    def test_classification_teacher_is_learnable(self):
        from repro.fl.logistic_regression import LogisticRegressionModel

        features, labels = make_classification(400, 6, 3, noise=0.1, seed=2)
        model = LogisticRegressionModel(6, 3)
        metrics = model.fit(features, labels, epochs=80, learning_rate=0.5)
        assert metrics["accuracy"] > 0.85

    def test_classification_uninformative_features_do_not_dominate(self):
        features, labels = make_classification(300, 10, 3, n_informative=2, noise=0.1, seed=3)
        assert features.shape == (300, 10)
        assert set(np.unique(labels)).issubset({0, 1, 2})

    def test_classification_rejects_bad_informative_count(self):
        with pytest.raises(ValidationError):
            make_classification(100, 5, 3, n_informative=9)
