"""Tests for the synthetic digits dataset (repro.datasets.digits)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.digits import DIGITS_N_CLASSES, DIGITS_N_FEATURES, DIGITS_N_SAMPLES, load_digits
from repro.exceptions import ValidationError
from repro.fl.logistic_regression import LogisticRegressionModel


class TestShapeAndRange:
    def test_default_shape_matches_optdigits(self):
        features, labels = load_digits()
        assert features.shape == (DIGITS_N_SAMPLES, DIGITS_N_FEATURES)
        assert labels.shape == (DIGITS_N_SAMPLES,)

    def test_ten_classes_present_and_balanced(self):
        _, labels = load_digits(n_samples=1000)
        counts = np.bincount(labels, minlength=DIGITS_N_CLASSES)
        assert len(counts) == DIGITS_N_CLASSES
        assert counts.min() >= 90

    def test_pixel_range(self):
        features, _ = load_digits(n_samples=500)
        assert features.min() >= 0.0
        assert features.max() <= 16.0

    def test_normalized_variant(self):
        features, _ = load_digits(n_samples=200, normalized=True)
        assert features.max() <= 1.0

    def test_custom_sample_count(self):
        features, labels = load_digits(n_samples=777)
        assert features.shape[0] == 777 and labels.size == 777

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValidationError):
            load_digits(n_samples=5)


class TestDeterminismAndVariation:
    def test_same_seed_same_data(self):
        a_features, a_labels = load_digits(n_samples=300, seed=1)
        b_features, b_labels = load_digits(n_samples=300, seed=1)
        assert np.array_equal(a_features, b_features)
        assert np.array_equal(a_labels, b_labels)

    def test_different_seed_different_data(self):
        a_features, _ = load_digits(n_samples=300, seed=1)
        b_features, _ = load_digits(n_samples=300, seed=2)
        assert not np.array_equal(a_features, b_features)

    def test_samples_within_a_class_vary(self):
        features, labels = load_digits(n_samples=500, seed=0)
        class_zero = features[labels == 0]
        assert not np.allclose(class_zero[0], class_zero[1])

    def test_classes_are_distinguishable(self):
        # Class means must be pairwise distinct enough for a linear model.
        features, labels = load_digits(n_samples=1000, seed=0)
        means = np.stack([features[labels == c].mean(axis=0) for c in range(DIGITS_N_CLASSES)])
        for i in range(DIGITS_N_CLASSES):
            for j in range(i + 1, DIGITS_N_CLASSES):
                assert np.linalg.norm(means[i] - means[j]) > 1.0


class TestLearnability:
    def test_logistic_regression_learns_the_task(self):
        features, labels = load_digits(n_samples=1200, seed=3, normalized=True)
        split = 1000
        model = LogisticRegressionModel(DIGITS_N_FEATURES, DIGITS_N_CLASSES)
        model.fit(features[:split], labels[:split], epochs=120, learning_rate=2.0)
        metrics = model.evaluate(features[split:], labels[split:])
        assert metrics["accuracy"] > 0.85
