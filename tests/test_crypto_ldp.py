"""Tests for the LDP baseline mechanisms (repro.crypto.ldp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.ldp import LdpConfig, LdpMechanism, clip_by_norm, gaussian_sigma
from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters


class TestClipping:
    def test_short_vectors_are_unchanged(self):
        vector = np.array([0.3, -0.4])
        assert np.array_equal(clip_by_norm(vector, 1.0), vector)

    def test_long_vectors_are_scaled_to_the_bound(self):
        vector = np.array([3.0, 4.0])
        clipped = clip_by_norm(vector, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction is preserved.
        assert np.allclose(clipped / np.linalg.norm(clipped), vector / np.linalg.norm(vector))

    def test_zero_vector_is_unchanged(self):
        assert np.array_equal(clip_by_norm(np.zeros(3), 1.0), np.zeros(3))

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValidationError):
            clip_by_norm(np.ones(2), 0.0)


class TestCalibration:
    def test_gaussian_sigma_decreases_with_epsilon(self):
        assert gaussian_sigma(2.0, 1e-5, 1.0) < gaussian_sigma(0.5, 1e-5, 1.0)

    def test_gaussian_sigma_scales_with_sensitivity(self):
        assert gaussian_sigma(1.0, 1e-5, 2.0) == pytest.approx(2 * gaussian_sigma(1.0, 1e-5, 1.0))

    def test_gaussian_sigma_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            gaussian_sigma(0.0, 1e-5, 1.0)
        with pytest.raises(ValidationError):
            gaussian_sigma(1.0, 2.0, 1.0)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            LdpConfig(epsilon=0.0)
        with pytest.raises(ValidationError):
            LdpConfig(delta=1.5)
        with pytest.raises(ValidationError):
            LdpConfig(clip_norm=0.0)
        with pytest.raises(ValidationError):
            LdpConfig(mechanism="staircase")

    def test_noise_scale_shrinks_with_larger_epsilon(self):
        loose = LdpConfig(epsilon=8.0).noise_scale(100)
        tight = LdpConfig(epsilon=0.5).noise_scale(100)
        assert loose < tight

    def test_laplace_scale_grows_with_dimension(self):
        config = LdpConfig(mechanism="laplace", epsilon=1.0)
        assert config.noise_scale(400) > config.noise_scale(100)


class TestMechanism:
    @pytest.fixture()
    def update(self):
        return ModelParameters.from_mapping({"w": np.linspace(-0.5, 0.5, 20)})

    def test_privatized_update_differs_from_original(self, update):
        mechanism = LdpMechanism(LdpConfig(epsilon=1.0, clip_norm=1.0))
        noisy = mechanism.privatize(update, "owner-0", 0)
        assert not noisy.allclose(update)

    def test_privatization_is_deterministic_per_owner_and_round(self, update):
        mechanism = LdpMechanism(LdpConfig(epsilon=1.0))
        a = mechanism.privatize(update, "owner-0", 3)
        b = mechanism.privatize(update, "owner-0", 3)
        assert a.allclose(b)

    def test_noise_differs_across_owners_and_rounds(self, update):
        mechanism = LdpMechanism(LdpConfig(epsilon=1.0))
        assert not mechanism.privatize(update, "owner-0", 0).allclose(mechanism.privatize(update, "owner-1", 0))
        assert not mechanism.privatize(update, "owner-0", 0).allclose(mechanism.privatize(update, "owner-0", 1))

    def test_structure_is_preserved(self, update):
        mechanism = LdpMechanism(LdpConfig(epsilon=1.0))
        assert mechanism.privatize(update, "o", 0).shapes() == update.shapes()

    def test_smaller_epsilon_means_more_noise(self, update):
        rng_free = update.to_vector()
        tight = LdpMechanism(LdpConfig(epsilon=0.1)).privatize_vector(rng_free, "o", 0)
        loose = LdpMechanism(LdpConfig(epsilon=10.0)).privatize_vector(rng_free, "o", 0)
        clipped = clip_by_norm(rng_free, 1.0)
        assert np.linalg.norm(tight - clipped) > np.linalg.norm(loose - clipped)

    def test_laplace_mechanism_runs(self, update):
        mechanism = LdpMechanism(LdpConfig(epsilon=1.0, mechanism="laplace"))
        noisy = mechanism.privatize(update, "o", 0)
        assert np.all(np.isfinite(noisy.to_vector()))

    def test_total_epsilon_composes_linearly(self):
        mechanism = LdpMechanism(LdpConfig(epsilon=0.5))
        assert mechanism.total_epsilon(10) == pytest.approx(5.0)
        with pytest.raises(ValidationError):
            mechanism.total_epsilon(0)

    def test_aggregate_of_ldp_updates_is_noisier_than_secure_aggregation(self, update):
        # The core point of Section II.B: averaging LDP updates leaves residual
        # noise of order sigma/sqrt(n), while secure aggregation is exact.
        n_owners = 10
        mechanism = LdpMechanism(LdpConfig(epsilon=1.0, clip_norm=1.0))
        clipped = clip_by_norm(update.to_vector(), 1.0)
        noisy_mean = np.mean(
            [mechanism.privatize_vector(update.to_vector(), f"o{i}", 0) for i in range(n_owners)], axis=0
        )
        residual = np.linalg.norm(noisy_mean - clipped)
        assert residual > 1e-3
