"""Tests for the simulated P2P network (repro.blockchain.network)."""

from __future__ import annotations

import pytest

from repro.blockchain.network import Network, NetworkStats
from repro.exceptions import BlockchainError


class TestMembership:
    def test_join_and_peers(self):
        net = Network()
        net.join("b")
        net.join("a")
        assert net.peers() == ["a", "b"]

    def test_double_join_rejected(self):
        net = Network()
        net.join("a")
        with pytest.raises(BlockchainError):
            net.join("a")

    def test_subscribe_requires_join(self):
        net = Network()
        with pytest.raises(BlockchainError):
            net.subscribe("ghost", "topic", lambda s, p: None)


class TestBroadcast:
    def test_broadcast_reaches_all_other_subscribers(self):
        net = Network()
        received = {}
        for node in ("a", "b", "c"):
            net.join(node)
            net.subscribe(node, "tx", lambda sender, payload, node=node: received.setdefault(node, payload))
        net.broadcast("a", "tx", {"v": 1})
        assert set(received) == {"b", "c"}

    def test_broadcast_returns_handler_results(self):
        net = Network()
        for node in ("a", "b", "c"):
            net.join(node)
            net.subscribe(node, "vote", lambda sender, payload, node=node: f"ack-{node}")
        results = net.broadcast("a", "vote", "ping")
        assert results == {"b": "ack-b", "c": "ack-c"}

    def test_broadcast_order_is_deterministic(self):
        net = Network()
        order = []
        for node in ("c", "a", "b"):
            net.join(node)
            net.subscribe(node, "t", lambda sender, payload, node=node: order.append(node))
        net.broadcast("c", "t", None)
        assert order == ["a", "b"]

    def test_unknown_sender_rejected(self):
        net = Network()
        net.join("a")
        with pytest.raises(BlockchainError):
            net.broadcast("ghost", "t", None)

    def test_broadcast_without_subscribers_is_fine(self):
        net = Network()
        net.join("a")
        assert net.broadcast("a", "unknown-topic", 1) == {}


class TestSend:
    def test_point_to_point_delivery(self):
        net = Network()
        net.join("a")
        net.join("b")
        net.subscribe("b", "dm", lambda sender, payload: (sender, payload))
        assert net.send("a", "b", "dm", 42) == ("a", 42)

    def test_send_to_unsubscribed_recipient_rejected(self):
        net = Network()
        net.join("a")
        net.join("b")
        with pytest.raises(BlockchainError):
            net.send("a", "b", "dm", 42)


class TestStats:
    def test_stats_accumulate(self):
        net = Network()
        for node in ("a", "b", "c"):
            net.join(node)
            net.subscribe(node, "tx", lambda sender, payload: None)
        net.broadcast("a", "tx", {"k": "v"})
        assert net.stats.messages_sent == 2
        assert net.stats.bytes_sent > 0
        assert net.stats.messages_by_topic["tx"] == 2

    def test_stats_as_dict(self):
        stats = NetworkStats()
        stats.record("tx", payload_bytes=10, recipients=3)
        payload = stats.as_dict()
        assert payload["messages_sent"] == 3
        assert payload["bytes_sent"] == 30
        assert payload["bytes_by_topic"] == {"tx": 30}


class TestStatsConcurrency:
    """Regression: delivery accounting must balance under real concurrency.

    The async transport records outcomes from a thread pool; the historical
    single-dict counters lost increments under that load, breaking the
    ``attempted == delivered + dropped + partitioned + timed_out + errors``
    invariant every delivery report is trusted for.  Per-peer buckets merged
    at report time (plus the recording lock) are the fix — this hammers the
    recording surface from many threads and asserts the books balance.
    """

    @pytest.mark.timeout(60)
    def test_accounting_balances_across_threads(self):
        import threading

        from repro.blockchain.transport import (
            DELIVERED,
            DROPPED,
            PARTITIONED,
            TIMEOUT,
            Delivery,
        )

        stats = NetworkStats()
        statuses = (DELIVERED, DROPPED, PARTITIONED, TIMEOUT)
        topics = ("tx", "proposal", "commit")
        per_thread = 200
        threads = 8
        start = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            peer = f"peer-{worker}"
            start.wait()
            for i in range(per_thread):
                topic = topics[i % len(topics)]
                stats.record(topic, payload_bytes=7, recipients=1, peer=peer)
                outcome = Delivery("r", statuses[i % len(statuses)], duplicates=i % 2)
                stats.record_outcome(topic, outcome, peer=peer)
                if i % 5 == 0:
                    # A retry is itself re-attempted through record(); the
                    # retry counter is bookkeeping on the side.
                    stats.record_retries(topic, 1, peer=peer)

        workers = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()

        report = stats.delivery_report()
        assert report["totals"]["attempted"] == threads * per_thread
        for topic, counters in report["by_topic"].items():
            outcomes = (
                counters["delivered"]
                + counters["dropped"]
                + counters["partitioned"]
                + counters["timed_out"]
                + counters["errors"]
            )
            assert counters["attempted"] == outcomes, f"{topic} books do not balance"

        # The per-peer view must partition the totals exactly.
        per_peer = stats.per_peer_report()
        assert len(per_peer) == threads
        assert (
            sum(p["messages_sent"] for p in per_peer.values())
            == stats.messages_sent
            == threads * per_thread
        )
