"""Tests for leader selection and vote tallying (repro.blockchain.consensus)."""

from __future__ import annotations

import pytest

from repro.blockchain.block import GENESIS_PARENT_HASH, Block
from repro.blockchain.consensus import (
    ConsensusEngine,
    RoundRobinLeaderSelector,
    SeededRandomLeaderSelector,
)
from repro.exceptions import ConsensusError, ValidationError


def empty_block(height=1):
    return Block.build(
        height=height,
        parent_hash=GENESIS_PARENT_HASH,
        proposer="x",
        transactions=[],
        receipts=[],
        state_root="ab" * 32,
    )


class TestRoundRobinLeaderSelector:
    def test_rotates_through_sorted_authorities(self):
        selector = RoundRobinLeaderSelector()
        authorities = ["carol", "alice", "bob"]
        picks = [selector.select(i, authorities) for i in range(6)]
        assert picks == ["alice", "bob", "carol", "alice", "bob", "carol"]

    def test_every_authority_gets_a_turn(self):
        selector = RoundRobinLeaderSelector()
        authorities = [f"owner-{i}" for i in range(5)]
        picks = {selector.select(i, authorities) for i in range(5)}
        assert picks == set(authorities)

    def test_empty_authority_set_rejected(self):
        with pytest.raises(ConsensusError):
            RoundRobinLeaderSelector().select(0, [])


class TestSeededRandomLeaderSelector:
    def test_deterministic_per_round(self):
        a = SeededRandomLeaderSelector(seed=3)
        b = SeededRandomLeaderSelector(seed=3)
        authorities = [f"owner-{i}" for i in range(7)]
        assert [a.select(i, authorities) for i in range(10)] == [b.select(i, authorities) for i in range(10)]

    def test_selection_is_from_authority_set(self):
        selector = SeededRandomLeaderSelector(seed=1)
        authorities = ["a", "b", "c"]
        assert all(selector.select(i, authorities) in authorities for i in range(20))

    def test_empty_authority_set_rejected(self):
        with pytest.raises(ConsensusError):
            SeededRandomLeaderSelector().select(0, [])


class TestConsensusEngine:
    def test_select_leader_advances_round(self):
        engine = ConsensusEngine()
        authorities = ["a", "b"]
        assert engine.select_leader(authorities) == "a"
        assert engine.select_leader(authorities) == "b"
        assert engine.select_leader(authorities) == "a"

    def test_select_leader_rejects_empty_set(self):
        with pytest.raises(ValidationError):
            ConsensusEngine().select_leader([])

    def test_majority_accepts(self):
        votes = {"a": True, "b": True, "c": False}
        result = ConsensusEngine.tally(empty_block(), votes)
        assert result.accepted
        assert result.accept_count == 2
        assert result.reject_count == 1

    def test_tie_is_rejected(self):
        votes = {"a": True, "b": False}
        assert not ConsensusEngine.tally(empty_block(), votes).accepted

    def test_minority_acceptance_is_rejected(self):
        votes = {"a": True, "b": False, "c": False}
        assert not ConsensusEngine.tally(empty_block(), votes).accepted

    def test_unanimous_acceptance(self):
        votes = {f"owner-{i}": True for i in range(5)}
        assert ConsensusEngine.tally(empty_block(), votes).accepted

    def test_rejections_are_recorded(self):
        votes = {"a": True, "b": False}
        rejections = {"b": "state root mismatch"}
        result = ConsensusEngine.tally(empty_block(), votes, rejections)
        assert result.rejections == rejections

    def test_no_votes_rejected(self):
        with pytest.raises(ConsensusError):
            ConsensusEngine.tally(empty_block(), {})
