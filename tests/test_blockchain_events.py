"""Tests for event-log helpers (repro.blockchain.events)."""

from __future__ import annotations

from repro.blockchain.events import ChainEvent, collect_events, filter_events, latest_event


def raw_events():
    return [
        {"block": 1, "tx": "aa", "name": "RoundFinalized", "data": {"round": 0}},
        {"block": 2, "tx": "bb", "name": "RoundEvaluated", "data": {"round": 0}},
        {"block": 3, "tx": "cc", "name": "RoundFinalized", "data": {"round": 1}},
    ]


class TestEventHelpers:
    def test_collect_events_builds_chain_events(self):
        events = collect_events(raw_events())
        assert all(isinstance(event, ChainEvent) for event in events)
        assert events[0].block_height == 1
        assert events[0].name == "RoundFinalized"

    def test_collect_handles_missing_fields(self):
        events = collect_events([{}])
        assert events[0].block_height == -1
        assert events[0].name == ""

    def test_filter_by_name(self):
        events = collect_events(raw_events())
        finalized = filter_events(events, "RoundFinalized")
        assert len(finalized) == 2
        assert [e.data["round"] for e in finalized] == [0, 1]

    def test_latest_event(self):
        events = collect_events(raw_events())
        latest = latest_event(events, "RoundFinalized")
        assert latest is not None and latest.data["round"] == 1

    def test_latest_event_missing_name(self):
        events = collect_events(raw_events())
        assert latest_event(events, "Nothing") is None

    def test_protocol_chain_emits_expected_events(self, protocol_run):
        protocol, _ = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        events = collect_events(chain.events())
        names = {event.name for event in events}
        assert {"ProtocolParamsSet", "ParticipantRegistered", "MaskedUpdateSubmitted",
                "RoundFinalized", "RoundEvaluated", "RewardsDistributed"} <= names

    def test_protocol_emits_one_finalize_event_per_round(self, protocol_run):
        protocol, _ = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        events = collect_events(chain.events())
        finalized = filter_events(events, "RoundFinalized")
        assert len(finalized) == protocol.config.n_rounds
