"""Tests for Merkle trees and proofs (repro.blockchain.merkle)."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.merkle import MerkleProof, MerkleTree
from repro.exceptions import ValidationError
from repro.utils.hashing import sha256_hex


def leaves_of(n):
    return [sha256_hex(f"leaf-{i}") for i in range(n)]


class TestMerkleTree:
    def test_empty_tree_has_sentinel_root(self):
        assert MerkleTree([]).root == MerkleTree([]).root
        assert len(MerkleTree([]).root) == 64

    def test_single_leaf_root_is_the_leaf(self):
        leaf = sha256_hex("only")
        assert MerkleTree([leaf]).root == leaf

    def test_root_changes_with_any_leaf(self):
        base = MerkleTree(leaves_of(4)).root
        modified = leaves_of(4)
        modified[2] = sha256_hex("tampered")
        assert MerkleTree(modified).root != base

    def test_root_depends_on_leaf_order(self):
        leaves = leaves_of(4)
        assert MerkleTree(leaves).root != MerkleTree(list(reversed(leaves))).root

    def test_odd_leaf_count_supported(self):
        assert len(MerkleTree(leaves_of(5)).root) == 64

    def test_root_of_convenience_matches_tree(self):
        leaves = leaves_of(6)
        assert MerkleTree.root_of(leaves) == MerkleTree(leaves).root

    def test_rejects_empty_string_leaf(self):
        with pytest.raises(ValidationError):
            MerkleTree([""])

    def test_leaves_accessor_returns_a_copy(self):
        tree = MerkleTree(leaves_of(3))
        copy = tree.leaves
        copy.append("extra")
        assert len(tree.leaves) == 3


class TestMerkleProof:
    @pytest.mark.parametrize("n_leaves", [1, 2, 3, 4, 5, 8, 13])
    def test_every_leaf_proves_inclusion(self, n_leaves):
        leaves = leaves_of(n_leaves)
        tree = MerkleTree(leaves)
        for index in range(n_leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify_proof(proof)
            assert proof.root == tree.root

    def test_tampered_leaf_fails_proof(self):
        tree = MerkleTree(leaves_of(4))
        proof = tree.proof(1)
        bad = MerkleProof(leaf=sha256_hex("evil"), index=1, siblings=proof.siblings, root=proof.root)
        assert not MerkleTree.verify_proof(bad)

    def test_wrong_index_fails_proof(self):
        tree = MerkleTree(leaves_of(4))
        proof = tree.proof(1)
        bad = dataclasses.replace(proof, index=2)
        assert not MerkleTree.verify_proof(bad)

    def test_proof_for_out_of_range_index_rejected(self):
        tree = MerkleTree(leaves_of(3))
        with pytest.raises(ValidationError):
            tree.proof(3)

    def test_proof_on_empty_tree_rejected(self):
        with pytest.raises(ValidationError):
            MerkleTree([]).proof(0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.data())
    def test_property_random_leaf_always_verifies(self, n_leaves, data):
        leaves = leaves_of(n_leaves)
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=n_leaves - 1))
        assert MerkleTree.verify_proof(tree.proof(index))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=30))
    def test_property_root_is_order_sensitive(self, n_leaves):
        leaves = leaves_of(n_leaves)
        swapped = list(leaves)
        swapped[0], swapped[-1] = swapped[-1], swapped[0]
        assert MerkleTree(leaves).root != MerkleTree(swapped).root
