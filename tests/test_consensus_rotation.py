"""Tests for epoch-aware consensus authority rotation and view-change failover.

Four layers are covered:

* schedule level — the pure rotation arithmetic, ``EpochAuthoritySchedule``,
  and ``verify_block_authority`` rejecting proposer/view tampering;
* parity — with ``authority_rotation`` off, headers carry no view and block
  hashes are byte-identical to the pre-rotation hashing scheme;
* runtime level — rotation-enabled runs committing view-stamped blocks, the
  ``LeaderDropoutScenario`` forcing view changes (including at a churn epoch
  boundary), and the all-proposers-offline abort touching nothing;
* audit level — ``audit_chain`` recomputing and verifying the proposer and
  view number of every committed round, and a syncing miner replaying a
  rotation-enabled chain byte for byte.
"""

from __future__ import annotations

import pytest

from repro.blockchain.block import Block
from repro.blockchain.consensus import (
    EpochAuthoritySchedule,
    committed_round_of_block,
    rotation_index,
    scheduled_proposer,
    verify_block_authority,
)
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import (
    ChurnScenario,
    ComposedScenario,
    DropoutScenario,
    LeaderDropoutScenario,
    RoundScheduler,
)
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import ConsensusError, InvalidBlockError, ProtocolError, RoundError
from repro.utils.hashing import hash_payload


def build_protocol(dataset, owners, **config_overrides):
    settings = dict(
        n_owners=len(owners),
        n_groups=2,
        n_rounds=2,
        local_epochs=2,
        learning_rate=2.0,
        permutation_seed=13,
    )
    settings.update(config_overrides)
    config = ProtocolConfig(**settings)
    return BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )


def chain_of(protocol):
    return protocol.participants[protocol.owner_ids[0]].node.chain


def chain_fingerprint(protocol):
    return [(b.height, b.block_hash, b.header.state_root) for b in chain_of(protocol).blocks]


def round_blocks(chain):
    """(fl_round, block) pairs for every committed training round."""
    pairs = []
    for block in chain.blocks[1:]:
        fl_round = committed_round_of_block(block)
        if fl_round is not None:
            pairs.append((fl_round, block))
    return pairs


# ----------------------------------------------------------------------
# Schedule level
# ----------------------------------------------------------------------

class TestRotationArithmetic:
    def test_rotation_restarts_at_the_epoch_start(self):
        assert rotation_index(3, 3, 0, 4) == 0
        assert rotation_index(4, 3, 0, 4) == 1
        assert rotation_index(4, 3, 3, 4) == 0  # view changes wrap

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ConsensusError):
            rotation_index(0, 0, 0, 0)
        with pytest.raises(ConsensusError):
            rotation_index(1, 2, 0, 3)

    def test_doctests_run(self):
        import doctest

        import repro.blockchain.consensus as consensus

        results = doctest.testmod(consensus)
        assert results.attempted > 0
        assert results.failed == 0


class TestScheduleFromChainState:
    def test_schedule_rotates_through_the_cohort(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True, n_rounds=2)
        protocol.setup()
        state = chain_of(protocol).state
        cohort = sorted(protocol.owner_ids)
        n = len(cohort)
        for round_number in range(2):
            for view in range(n):
                expected = cohort[(round_number + view) % n]
                assert scheduled_proposer(state, round_number, view) == expected

    def test_schedule_object_matches_the_pure_function(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        protocol.setup()
        schedule = EpochAuthoritySchedule(lambda: chain_of(protocol).state)
        proposers = schedule.proposers_for_round(1)
        assert proposers[0] == schedule.select_view(1, 0)
        assert proposers[2] == schedule.select_view(1, 2)
        assert protocol.consensus.select_round_leader(1, 1) == proposers[1]
        # The generic LeaderSelector entry point counts blocks, not FL rounds,
        # and is refused rather than silently mis-mapped.
        with pytest.raises(ConsensusError, match="cannot serve as a generic"):
            schedule.select(1, ["ignored"])

    def test_wrapped_view_numbers_are_rejected(self, dataset, owners):
        # A cohort member must not be able to re-schedule itself by stamping
        # view + k*|cohort| (or any out-of-range view) into the header.
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        protocol.run()
        chain = chain_of(protocol)
        state = chain.state
        n = len(protocol.owner_ids)
        with pytest.raises(ConsensusError, match="outside"):
            scheduled_proposer(state, 0, n)  # wraps back to the view-0 proposer
        with pytest.raises(ConsensusError, match="outside"):
            scheduled_proposer(state, 0, -1)
        fl_round, block = round_blocks(chain)[0]
        replica = build_protocol(dataset, owners, authority_rotation=True)
        replica_chain = chain_of(replica)
        for earlier in chain.blocks[1:block.height]:
            replica_chain.verify_and_append(earlier)
        wrapped = Block.build(
            height=block.height,
            parent_hash=block.header.parent_hash,
            proposer=block.header.proposer,  # entitled at view 0 — but claims view n
            transactions=list(block.transactions),
            receipts=list(block.receipts),
            state_root=block.header.state_root,
            timestamp=block.header.timestamp,
            view=block.header.view + n,
        )
        with pytest.raises(InvalidBlockError, match="outside"):
            replica_chain.verify_and_append(wrapped)

    def test_round_proposers_requires_rotation(self, dataset, owners):
        protocol = build_protocol(dataset, owners)
        with pytest.raises(ProtocolError, match="rotation"):
            protocol.round_proposers(0)


class TestVerifyBlockAuthority:
    def test_wrong_proposer_is_rejected_by_every_miner(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        protocol.run()
        chain = chain_of(protocol)
        fl_round, block = round_blocks(chain)[0]
        wrong = [o for o in protocol.owner_ids if o != block.header.proposer][0]
        # Rebuild the same block under a different proposer at the same view:
        # replaying it must fail at the authority check, before re-execution.
        replica = build_protocol(dataset, owners, authority_rotation=True)
        replica_chain = chain_of(replica)
        for earlier in chain.blocks[1:block.height]:
            replica_chain.verify_and_append(earlier)
        forged = Block.build(
            height=block.height,
            parent_hash=block.header.parent_hash,
            proposer=wrong,
            transactions=list(block.transactions),
            receipts=list(block.receipts),
            state_root=block.header.state_root,
            timestamp=block.header.timestamp,
            view=block.header.view,
        )
        with pytest.raises(InvalidBlockError, match="epoch-authority schedule"):
            replica_chain.verify_and_append(forged)

    def test_view_on_a_static_chain_is_rejected(self, dataset, owners):
        protocol = build_protocol(dataset, owners)  # rotation off
        protocol.run()
        chain = chain_of(protocol)
        fl_round, block = round_blocks(chain)[0]
        replica = build_protocol(dataset, owners)
        replica_chain = chain_of(replica)
        for earlier in chain.blocks[1:block.height]:
            replica_chain.verify_and_append(earlier)
        stamped = Block.build(
            height=block.height,
            parent_hash=block.header.parent_hash,
            proposer=block.header.proposer,
            transactions=list(block.transactions),
            receipts=list(block.receipts),
            state_root=block.header.state_root,
            timestamp=block.header.timestamp,
            view=0,
        )
        with pytest.raises(InvalidBlockError, match="no epoch-authority schedule applies"):
            replica_chain.verify_and_append(stamped)

    def test_missing_view_on_a_rotation_chain_is_rejected(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        protocol.run()
        chain = chain_of(protocol)
        fl_round, block = round_blocks(chain)[0]
        state_before = build_protocol(dataset, owners, authority_rotation=True)
        replica_chain = chain_of(state_before)
        for earlier in chain.blocks[1:block.height]:
            replica_chain.verify_and_append(earlier)
        stripped = Block.build(
            height=block.height,
            parent_hash=block.header.parent_hash,
            proposer=block.header.proposer,
            transactions=list(block.transactions),
            receipts=list(block.receipts),
            state_root=block.header.state_root,
            timestamp=block.header.timestamp,
            view=None,
        )
        with pytest.raises(InvalidBlockError, match="without a view number"):
            replica_chain.verify_and_append(stripped)


# ----------------------------------------------------------------------
# Parity: rotation off == the pre-rotation chain format
# ----------------------------------------------------------------------

class TestRotationOffParity:
    def test_headers_carry_no_view_and_hash_with_the_legacy_payload(self, protocol_run):
        protocol, _ = protocol_run
        for block in chain_of(protocol).blocks:
            header = block.header
            assert header.view is None
            legacy_hash = hash_payload(
                {
                    "height": header.height,
                    "parent_hash": header.parent_hash,
                    "proposer": header.proposer,
                    "tx_root": header.tx_root,
                    "receipt_root": header.receipt_root,
                    "state_root": header.state_root,
                    "timestamp": header.timestamp,
                }
            )
            assert header.block_hash == legacy_hash

    def test_rotation_flag_default_off_produces_identical_chains(self, dataset, owners):
        explicit = build_protocol(dataset, owners, authority_rotation=False)
        explicit.run()
        default = build_protocol(dataset, owners)
        default.run()
        assert chain_fingerprint(explicit) == chain_fingerprint(default)

    def test_audit_checks_static_chains_for_smuggled_views(self, protocol_run, dataset):
        protocol, _ = protocol_run
        report = audit_chain(
            chain_of(protocol), dataset.test_features, dataset.test_labels, dataset.n_classes
        )
        assert report.passed
        assert report.proposers_checked == []  # nothing scheduled, nothing to verify


# ----------------------------------------------------------------------
# Runtime level
# ----------------------------------------------------------------------

class TestRotationRuntime:
    def test_plain_rotation_run_commits_view_zero_blocks(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        scheduler = RoundScheduler(protocol)
        result = scheduler.run()
        assert len(result.rounds) == protocol.config.n_rounds
        cohort = sorted(protocol.owner_ids)
        for fl_round, block in round_blocks(chain_of(protocol)):
            assert block.header.view == 0
            assert block.header.proposer == cohort[fl_round % len(cohort)]
        for ctx in scheduler.contexts:
            assert ctx.metadata["view"] == 0
            assert ctx.metadata["view_changes"] == []
        # Every replica agrees on the rotation-enabled chain.
        roots = {p.node.chain.state.state_root() for p in protocol.participants.values()}
        assert len(roots) == 1

    def test_silent_leader_forces_a_recorded_view_change(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        cohort = sorted(protocol.owner_ids)
        silent = cohort[1]  # scheduled at view 0 of round 1
        scheduler = RoundScheduler(protocol, LeaderDropoutScenario(silent))
        result = scheduler.run()
        blocks = dict(round_blocks(chain_of(protocol)))
        assert blocks[0].header.view == 0
        assert blocks[0].header.proposer == cohort[0]
        assert blocks[1].header.view == 1
        assert blocks[1].header.proposer == cohort[2]
        assert scheduler.contexts[1].metadata["view_changes"] == [
            {"view": 0, "leader": silent, "reason": "silent"}
        ]
        # A proposer outage is a consensus fault, not a data fault: the silent
        # owner still trained, submitted, and earned.
        assert silent in result.total_contributions

    def test_rejected_proposal_falls_through_to_the_next_view(self, dataset, owners, monkeypatch):
        protocol = build_protocol(dataset, owners, authority_rotation=True, n_rounds=1)
        protocol.setup()  # the round-0 leader also proposes the setup block
        cohort = sorted(protocol.owner_ids)
        leader = protocol.participants[cohort[0]]
        calls = {"n": 0}

        def flaky(engine, authorities=None, view=None):
            calls["n"] += 1
            raise ConsensusError("proposal rejected by the miner vote")

        monkeypatch.setattr(leader.node, "run_consensus_round", flaky)
        scheduler = RoundScheduler(protocol)
        scheduler.run()
        assert calls["n"] == 1
        block = dict(round_blocks(chain_of(protocol)))[0]
        assert block.header.view == 1
        assert block.header.proposer == cohort[1]
        changes = scheduler.contexts[0].metadata["view_changes"]
        assert len(changes) == 1 and "rejected" in changes[0]["reason"]

    def test_all_scheduled_proposers_offline_aborts_touching_nothing(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        scenario = LeaderDropoutScenario(sorted(protocol.owner_ids))
        with pytest.raises(RoundError, match="every scheduled proposer"):
            RoundScheduler(protocol, scenario).run()
        chain = chain_of(protocol)
        assert chain.height == 1  # genesis + setup only
        assert all(len(p.node.mempool) == 0 for p in protocol.participants.values())

        # The abort rewound the off-chain nonces, so the same protocol object
        # retries cleanly and commits the chain a plain rotation run would.
        retry = RoundScheduler(protocol).run()
        plain = build_protocol(dataset, owners, authority_rotation=True)
        plain_result = plain.run()
        assert chain_fingerprint(protocol) == chain_fingerprint(plain)
        assert retry.total_contributions == plain_result.total_contributions

    def test_leader_dropout_without_rotation_is_refused(self, dataset, owners):
        # Without the guard the scenario would silently degenerate to a plain
        # run (BlockProposalStage only consults leader_offline on rotation
        # chains) — the scheduler must refuse instead.
        protocol = build_protocol(dataset, owners)  # rotation off
        with pytest.raises(ProtocolError, match="requires authority rotation"):
            RoundScheduler(protocol, LeaderDropoutScenario("owner-1"))
        with pytest.raises(ProtocolError, match="requires authority rotation"):
            RoundScheduler(
                protocol,
                ComposedScenario([DropoutScenario("owner-1"), LeaderDropoutScenario("owner-1")]),
            )

    def test_leader_dropout_composes_with_data_dropout(self, dataset, owners):
        protocol = build_protocol(dataset, owners, authority_rotation=True)
        target = sorted(protocol.owner_ids)[1]
        scenario = ComposedScenario([
            LeaderDropoutScenario(target, rounds=[1]),
            DropoutScenario(target, round_number=0, offline_ticks=2),
        ])
        scheduler = RoundScheduler(protocol, scenario)
        scheduler.run()
        assert scheduler.contexts[0].ticks_waited == 2
        assert scheduler.contexts[1].metadata["view"] == 1


# ----------------------------------------------------------------------
# Rotation + churn (epoch boundaries) and the audit
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def rotation_churn_setup():
    return make_owner_datasets(n_owners=5, sigma=0.2, n_samples=400, seed=17)


@pytest.fixture(scope="module")
def rotation_churn_run(rotation_churn_setup):
    """Rotation + churn + a leader silent exactly at the round-2 epoch boundary.

    Join at round 2, leave at round 4, over 5 rounds; the epoch-1 cohort's
    view-0 proposer of round 2 (the boundary round, where the rotation
    restarts) is silent, so the very first block of the new epoch commits
    through a view change.
    """
    dataset, owners = rotation_churn_setup
    genesis, joiner = owners[:4], owners[4]
    config = ProtocolConfig(
        n_owners=len(genesis), n_groups=2, n_rounds=5,
        local_epochs=2, learning_rate=2.0, permutation_seed=13,
        authority_rotation=True,
    )
    protocol = BlockchainFLProtocol(
        genesis, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    leaver = sorted(o.owner_id for o in genesis)[1]
    boundary_cohort = sorted([o.owner_id for o in genesis] + [joiner.owner_id])
    silent = boundary_cohort[0]  # view-0 proposer of boundary round 2
    scenario = ComposedScenario([
        ChurnScenario(joins=[(joiner, 2)], leaves=[(leaver, 4)]),
        LeaderDropoutScenario(silent, rounds=[2]),
    ])
    scheduler = RoundScheduler(protocol, scenario)
    result = scheduler.run()
    return protocol, scheduler, result, joiner.owner_id, leaver, silent


class TestRotationAcrossEpochs:
    def test_rotation_restarts_and_fails_over_at_the_epoch_boundary(self, rotation_churn_run):
        protocol, scheduler, _, joiner, leaver, silent = rotation_churn_run
        blocks = dict(round_blocks(chain_of(protocol)))
        epoch1_cohort = sorted(set(protocol.owner_ids))  # genesis + joiner
        assert joiner in epoch1_cohort
        # Round 2 opens epoch 1: view 0 goes to the new cohort's first owner,
        # which is silent, so the block commits at view 1 under the next one.
        assert blocks[2].header.view == 1
        assert blocks[2].header.proposer == epoch1_cohort[1]
        assert scheduler.contexts[2].metadata["view_changes"] == [
            {"view": 0, "leader": silent, "reason": "silent"}
        ]
        # Round 4 opens epoch 2 (the leaver is out): rotation restarts again,
        # and the departed owner is no longer an eligible proposer.
        epoch2_cohort = [o for o in epoch1_cohort if o != leaver]
        assert blocks[4].header.view == 0
        assert blocks[4].header.proposer == epoch2_cohort[0]
        assert leaver not in protocol.round_proposers(4)

    def test_joined_owner_becomes_a_proposer_only_from_its_epoch(self, rotation_churn_run):
        protocol, _, _, joiner, _, _ = rotation_churn_run
        assert joiner not in protocol.round_proposers(1)
        assert joiner in protocol.round_proposers(2)

    def test_audit_recomputes_proposer_and_view_for_every_round(
        self, rotation_churn_run, rotation_churn_setup
    ):
        protocol, _, _, _, _, _ = rotation_churn_run
        dataset, _ = rotation_churn_setup
        report = audit_chain(
            chain_of(protocol), dataset.test_features, dataset.test_labels, dataset.n_classes
        )
        assert report.passed, report.mismatches
        assert report.proposers_checked == [0, 1, 2, 3, 4]
        assert report.rounds_checked == [0, 1, 2, 3, 4]
        assert report.epochs_checked == [0, 1, 2]

    def test_audit_flags_a_proposer_that_skips_the_schedule(
        self, rotation_churn_run, rotation_churn_setup
    ):
        protocol, _, _, _, _, _ = rotation_churn_run
        dataset, _ = rotation_churn_setup
        chain = chain_of(protocol).clone()
        fl_round, block = round_blocks(chain)[0]
        wrong = [o for o in sorted(protocol.owner_ids) if o != block.header.proposer][-1]
        forged_header_block = Block(
            header=type(block.header)(
                height=block.header.height,
                parent_hash=block.header.parent_hash,
                proposer=wrong,
                tx_root=block.header.tx_root,
                receipt_root=block.header.receipt_root,
                state_root=block.header.state_root,
                timestamp=block.header.timestamp,
                view=block.header.view,
            ),
            transactions=block.transactions,
            receipts=block.receipts,
        )
        chain.blocks[block.height] = forged_header_block
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes
        )
        assert not report.passed
        # The forgery breaks the replay (parent links/authority) — and if it
        # got that far, the schedule recomputation names the mismatch.
        assert report.mismatches

    def test_aborted_join_round_rewinds_for_a_clean_retry(self, rotation_churn_setup):
        # Regression: the round-abort nonce rewind used to drop a mid-round
        # joiner's counter; add_participant's idempotent path now restores it,
        # so the documented clean retry actually works.
        from repro.core.pipeline import JoinScenario

        dataset, owners = rotation_churn_setup
        genesis, joiner = owners[:4], owners[4]
        config = ProtocolConfig(
            n_owners=len(genesis), n_groups=2, n_rounds=2,
            local_epochs=2, learning_rate=2.0, permutation_seed=13,
            authority_rotation=True,
        )
        protocol = BlockchainFLProtocol(
            genesis, dataset.test_features, dataset.test_labels, dataset.n_classes, config
        )
        doomed = ComposedScenario([
            JoinScenario(joiner, 1),
            LeaderDropoutScenario([o.owner_id for o in genesis], rounds=[0]),
        ])
        with pytest.raises(RoundError, match="every scheduled proposer"):
            RoundScheduler(protocol, doomed).run()
        assert chain_of(protocol).height == 1  # setup only; the join never landed

        result = RoundScheduler(protocol, JoinScenario(joiner, 1)).run()
        assert joiner.owner_id in result.total_contributions

    def test_syncing_miner_replays_the_rotation_chain_byte_for_byte(self, rotation_churn_run):
        protocol, _, _, _, _, _ = rotation_churn_run
        chain = chain_of(protocol)
        replayed = chain.replay()
        assert replayed.state.state_root() == chain.state.state_root()
        assert [b.block_hash for b in replayed.blocks] == [b.block_hash for b in chain.blocks]
        assert [b.header.view for b in replayed.blocks] == [b.header.view for b in chain.blocks]
        # Every live replica — including the mid-run joiner's node — agrees.
        roots = {p.node.chain.state.state_root() for p in protocol.participants.values()}
        assert len(roots) == 1
