"""End-to-end fault scenarios: the swarm must heal back onto the pinned chain.

These tests run the full protocol over the fault-injecting transport and pin
the acceptance criteria: partition-heal and eclipse converge to the exact head
hash of an undisturbed run, audits pass in both replay and incremental modes,
a resynced victim is byte-identical to the replicas that never left, and every
faulty run is deterministic under a fixed FaultPlan seed.
"""

from __future__ import annotations

import pytest

from repro.blockchain.transport import FaultPlan, LinkFault
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.pipeline import (
    DuplicateStormScenario,
    EclipseScenario,
    FaultScenario,
    LossyGossipScenario,
    PartitionAndHealScenario,
    RoundScheduler,
)
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import ProtocolError

# Head hashes of the undisturbed 4-owner/2-round reference runs (same pins as
# tests/test_transport_faults.py) — healed fault runs must land exactly here.
PIN_HEAD_PLAIN = "c4a289407edceba983a45a138102b3dca855ac649c56f1d379595202c90c4b5e"
PIN_HEAD_ROTATION = "168f615e804824d08668dbea5456d6377dcc5a1fa3fb46adfba81a02b8892401"


@pytest.fixture(scope="module")
def cohort():
    return make_owner_datasets(n_owners=4, sigma=0.1, n_samples=400, seed=7)


def build_protocol(cohort, authority_rotation: bool) -> BlockchainFLProtocol:
    dataset, owners = cohort
    config = ProtocolConfig(
        n_owners=4, n_groups=2, n_rounds=2, local_epochs=2, permutation_seed=7,
        learning_rate=2.0, authority_rotation=authority_rotation,
    )
    return BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )


def all_heads(protocol) -> dict[str, str]:
    return {
        owner: protocol.participants[owner].node.chain.head.block_hash
        for owner in protocol.owner_ids
    }


class TestPartitionAndHeal:
    def test_partitioned_round_heals_onto_the_pinned_chain(self, cohort):
        protocol = build_protocol(cohort, authority_rotation=True)
        scenario = PartitionAndHealScenario(round_number=1, heal_after_attempts=1)
        scheduler = RoundScheduler(protocol, scenario)
        result = scheduler.run()

        heads = all_heads(protocol)
        assert set(heads.values()) == {PIN_HEAD_ROTATION}

        # Round 1's first attempt ran split and aborted; the retry committed.
        attempts = [
            (ctx.round_number, ctx.metadata.get("attempt"), ctx.consensus is not None)
            for ctx in scheduler.contexts
        ]
        assert attempts == [(0, 0, True), (1, 0, False), (1, 1, True)]

        # The aborted attempt's delivery delta records the partitioned traffic.
        aborted = scheduler.contexts[1].metadata["delivery"]
        assert aborted["totals"]["partitioned"] > 0

        chain = protocol.participants["owner-0"].node.chain
        for mode in ("replay", "incremental"):
            dataset, _ = cohort
            report = audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode=mode,
            )
            assert report.passed, f"{mode} audit failed: {report.mismatches}"

        totals = result.delivery_report["totals"]
        assert totals["partitioned"] > 0
        assert totals["delivered"] > 0

    def test_requires_authority_rotation(self, cohort):
        protocol = build_protocol(cohort, authority_rotation=False)
        with pytest.raises(ProtocolError, match="authority rotation"):
            RoundScheduler(protocol, PartitionAndHealScenario())


class TestEclipse:
    def test_eclipsed_victim_resyncs_byte_identical(self, cohort):
        protocol = build_protocol(cohort, authority_rotation=True)
        scenario = EclipseScenario(victim="owner-2", rounds=(1,))
        protocol.run(scenario)

        heads = all_heads(protocol)
        assert set(heads.values()) == {PIN_HEAD_ROTATION}

        # The victim fell behind during the eclipse and recovered via the
        # chain's fast-sync path from an honest peer.
        victim = protocol.participants["owner-2"].node
        assert victim.resyncs == [
            {"peer": "owner-0", "from_height": 2, "to_height": 3, "blocks": 1}
        ]

        # Byte-identical to the reference replica, block by block.
        reference = protocol.participants["owner-0"].node.chain
        assert [b.block_hash for b in victim.chain.blocks] == [
            b.block_hash for b in reference.blocks
        ]
        # ... and equivalent to a full replay of the same ledger: the replay
        # audit recomputes every state transition from the transactions alone.
        dataset, _ = cohort
        report = audit_chain(
            victim.chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode="replay",
        )
        assert report.passed

    def test_victim_cannot_be_the_reference_replica(self, cohort):
        protocol = build_protocol(cohort, authority_rotation=True)
        with pytest.raises(ProtocolError, match="reference replica"):
            protocol.run(EclipseScenario(victim="owner-0"))


class TestLossyGossip:
    def test_seeded_lossy_runs_are_fully_deterministic(self, cohort):
        outcomes = []
        for _ in range(2):
            protocol = build_protocol(cohort, authority_rotation=False)
            result = protocol.run(LossyGossipScenario(drop_probability=0.08, seed=1))
            outcomes.append((
                all_heads(protocol),
                result.delivery_report,
                result.reward_balances,
            ))
        assert outcomes[0] == outcomes[1]
        heads, report, _ = outcomes[0]
        assert len(set(heads.values())) == 1
        assert report["totals"]["dropped"] > 0
        assert report["totals"]["retries"] > 0


class TestDuplicateStorm:
    def test_duplicates_are_benign_and_chain_is_pinned(self, cohort):
        protocol = build_protocol(cohort, authority_rotation=False)
        result = protocol.run(DuplicateStormScenario(duplicate_probability=0.5, seed=1))
        heads = all_heads(protocol)
        assert set(heads.values()) == {PIN_HEAD_PLAIN}
        assert result.delivery_report["totals"]["duplicated"] > 0


class _RoundOneLinkFault(FaultScenario):
    """Injects a link fault on round 1's scheduled view-0 proposer."""

    requires_authority_rotation = True

    def __init__(self, fault: LinkFault) -> None:
        super().__init__(plan=FaultPlan(), round_retries=1)
        self.fault = fault

    def on_round_start(self, ctx) -> None:
        if ctx.round_number != 1:
            return
        leader = self.protocol.round_proposers(1)[0]
        self.transport.add_link_fault(f"{leader}->*", self.fault)


class TestViewChangeUnderFaults:
    """Satellite: a silent leader and a vote-starved leader must resolve the
    same way — the view changes and the SAME next scheduled proposer commits,
    deterministically."""

    @pytest.mark.parametrize("fault", [
        # Case A: the leader's proposal never reaches the voters.
        LinkFault(drop_probability=1.0, topics=("proposal",)),
        # Case B: the proposal arrives and the voters vote, but every vote
        # response is lost — timeouts must count as abstains, not hangs.
        LinkFault(response_timeout=True, topics=("proposal",)),
    ], ids=["proposal-dropped", "votes-timed-out"])
    def test_lost_proposal_and_lost_votes_resolve_identically(self, cohort, fault):
        protocol = build_protocol(cohort, authority_rotation=True)
        scheduler = RoundScheduler(protocol, _RoundOneLinkFault(fault))
        scheduler.run()

        round_ctx = next(c for c in scheduler.contexts if c.round_number == 1)
        assert round_ctx.metadata["view"] == 1
        (change,) = round_ctx.metadata["view_changes"]
        assert change["leader"] == protocol.round_proposers(1)[0]

        # Both fault shapes hand round 1 to the same scheduled backup.
        expected_backup = protocol.round_proposers(1)[1]
        round_block = protocol.participants["owner-0"].node.chain.blocks[3]
        assert round_block.header.proposer == expected_backup
        assert len(set(all_heads(protocol).values())) == 1


class TestAsyncSwarmSoak:
    """Satellite: randomized crash soak over the asyncio swarm.

    A seeded schedule hard-kills up to a third of the miner processes
    mid-round and restarts them from their SQLite stores a round later.  The
    scheduled leader may be among the dead — the supervisor falls back to the
    next alive peer — so the head is not pinned to the reference here; the
    contract is *convergence*: after healing, every replica reports one single
    head and that chain passes the full replay + version-root audit.
    """

    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("soak_seed", [3, 17])
    def test_seeded_kill_restart_soak_converges(self, soak_seed):
        import random

        from repro.blockchain.swarm import SwarmConfig, run_swarm_workload

        config = SwarmConfig(peers=9, rounds=4)
        rng = random.Random(soak_seed)
        victims = tuple(sorted(rng.sample(config.peer_ids(), k=config.peers // 3)))
        kill_round = rng.randrange(1, config.rounds - 1)
        result = run_swarm_workload(config, kill_schedule={kill_round: victims})

        # One audit-clean head across every replica, dead-and-restarted included.
        assert len(result["heads"]) == config.peers
        assert set(result["heads"].values()) == {result["head"]}
        assert result["height"] == config.rounds
        assert result["audit"]["head"] == result["head"]
        assert result["audit"]["height"] == config.rounds

        # The restarted victims came back through storage restore + resync.
        restarted = [
            pid for pid, report in result["reports"].items()
            if not isinstance(report, Exception) and report["restored"]
        ]
        assert set(restarted) == set(victims)
