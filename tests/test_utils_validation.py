"""Tests for validation helpers (repro.utils.validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    ensure_finite,
    ensure_in_range,
    ensure_non_negative_int,
    ensure_positive_int,
    ensure_probability,
    ensure_same_shape,
)


class TestEnsurePositiveInt:
    def test_accepts_positive(self):
        assert ensure_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert ensure_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            ensure_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            ensure_positive_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            ensure_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            ensure_positive_int(1.5, "x")


class TestEnsureNonNegativeInt:
    def test_accepts_zero(self):
        assert ensure_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            ensure_non_negative_int(-3, "x")


class TestEnsureProbability:
    def test_accepts_bounds(self):
        assert ensure_probability(0, "p") == 0.0
        assert ensure_probability(1, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            ensure_probability(1.2, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            ensure_probability("high", "p")


class TestEnsureInRange:
    def test_accepts_inside(self):
        assert ensure_in_range(0.5, 0, 1, "x") == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            ensure_in_range(2.0, 0, 1, "x")


class TestEnsureFinite:
    def test_accepts_finite(self):
        arr = np.array([1.0, -2.0, 0.0])
        assert np.array_equal(ensure_finite(arr, "w"), arr)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            ensure_finite(np.array([1.0, np.nan]), "w")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            ensure_finite(np.array([np.inf]), "w")


class TestEnsureSameShape:
    def test_accepts_matching(self):
        ensure_same_shape(np.zeros((2, 3)), np.ones((2, 3)), "pair")

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError):
            ensure_same_shape(np.zeros(3), np.zeros(4), "pair")
