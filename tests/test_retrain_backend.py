"""Tests for evaluation backends (repro.shapley.backend).

The serial path is the reference: the process-pool backend must reproduce its
coalition-retraining scores exactly (the acceptance bar is <= 1e-9; in
practice the scores are bit-for-bit equal because both paths execute the same
``train_and_score`` with the same per-coalition seed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.server import CentralizedTrainer
from repro.shapley import backend as backend_module
from repro.shapley.backend import (
    ProcessPoolEvaluationBackend,
    SerialEvaluationBackend,
    _chunk,
    default_backend,
    make_backend,
)
from repro.shapley.engine import mask_coalition, score_vectors
from repro.shapley.native import native_shapley
from repro.shapley.utility import CachedUtility, CoalitionModelUtility, RetrainUtility


@pytest.fixture(autouse=True)
def multi_cpu(monkeypatch):
    """Pretend the host has 2 CPUs so ``make_backend`` routing is testable
    anywhere (the single-CPU downgrade has its own dedicated tests)."""
    monkeypatch.setattr(backend_module, "_effective_cpu_count", lambda: 2)


@pytest.fixture(scope="module")
def retrain_game(dataset, owners, scorer):
    """Builder for small retraining games over the shared 4-owner setup."""
    owner_features = {o.owner_id: o.features for o in owners}
    owner_labels = {o.owner_id: o.labels for o in owners}
    trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes, epochs=4, learning_rate=2.0)

    def build(**kwargs):
        return RetrainUtility(owner_features, owner_labels, scorer, trainer=trainer, **kwargs)

    return build


class TestBackendSelection:
    def test_default_backend_is_serial(self):
        assert default_backend().name == "serial"
        assert default_backend().n_workers == 1

    def test_make_backend_routes_on_worker_count(self):
        assert make_backend(None).name == "serial"
        assert make_backend(1).name == "serial"
        parallel = make_backend(2)
        assert parallel.name == "process-pool"
        assert parallel.n_workers == 2

    def test_make_backend_downgrades_on_a_single_cpu_host(self, monkeypatch):
        # A pool on one core is pure overhead (BENCH measured ~0.9x): the
        # routing helper must hand back the serial backend instead.
        monkeypatch.setattr(backend_module, "_effective_cpu_count", lambda: 1)
        assert make_backend(4).name == "serial"
        # An explicitly constructed pool still honours the caller.
        explicit = ProcessPoolEvaluationBackend(n_workers=2)
        assert explicit.name == "process-pool"
        explicit.close()

    def test_retrain_utility_picks_up_n_workers(self, retrain_game):
        assert retrain_game().backend.name == "serial"
        assert retrain_game(n_workers=2).backend.name == "process-pool"
        explicit = SerialEvaluationBackend()
        assert retrain_game(backend=explicit).backend is explicit

    def test_chunking_is_balanced_and_complete(self):
        items = list(range(13))
        chunks = _chunk(items, 4)
        assert [item for chunk in chunks for item in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
        assert _chunk(items, 50) == [[i] for i in items]


class TestSerialParallelParity:
    def test_retrain_scores_match_serial_exactly(self, retrain_game):
        serial = retrain_game()
        parallel = retrain_game(n_workers=2)
        players = sorted(serial.owner_features)
        coalitions = [mask_coalition(mask, players) for mask in range(1, 1 << len(players))]

        reference = serial.backend.retrain_scores(serial, coalitions)
        pooled = parallel.backend.retrain_scores(parallel, coalitions)

        assert pooled.shape == reference.shape
        assert np.max(np.abs(pooled - reference)) <= 1e-9
        assert np.array_equal(pooled, reference)  # bit-for-bit in practice

    def test_coalition_utility_vector_parity(self, retrain_game):
        players = sorted(retrain_game().owner_features)
        serial_vector = retrain_game().coalition_utility_vector(players)
        parallel_vector = retrain_game(n_workers=2).coalition_utility_vector(players)
        assert serial_vector[0] == 0.0
        assert np.array_equal(serial_vector, parallel_vector)

    def test_native_shapley_parity(self, retrain_game):
        players = sorted(retrain_game().owner_features)
        serial_values = native_shapley(players, CachedUtility(retrain_game()))
        parallel_values = native_shapley(players, CachedUtility(retrain_game(n_workers=2)))
        for player in players:
            assert parallel_values[player] == pytest.approx(serial_values[player], abs=1e-9)

    def test_scalar_call_matches_vector_entry(self, retrain_game):
        utility = retrain_game()
        players = sorted(utility.owner_features)
        vector = retrain_game(n_workers=2).coalition_utility_vector(players)
        probe = (players[0], players[2])
        mask = 0b101
        assert utility(probe) == vector[mask]


class TestRetrainUtilityBatchPaths:
    def test_evaluate_coalitions_handles_empty_slots(self, retrain_game):
        utility = retrain_game(n_workers=2)
        players = sorted(utility.owner_features)
        coalitions = [(), (players[0],), (), (players[0], players[1])]
        values = utility.evaluate_coalitions(coalitions)
        assert values[0] == utility.empty_value
        assert values[2] == utility.empty_value
        assert values[1] == retrain_game()((players[0],))
        assert values[3] == retrain_game()((players[0], players[1]))

    def test_vector_path_counts_every_retraining(self, retrain_game):
        utility = retrain_game(n_workers=2)
        players = sorted(utility.owner_features)
        assert utility.evaluations() == 0
        utility.coalition_utility_vector(players)
        assert utility.evaluations() == (1 << len(players)) - 1

    def test_cached_wrapper_seeds_its_memo_from_the_vector(self, retrain_game):
        cached = CachedUtility(retrain_game(n_workers=2))
        players = sorted(retrain_game().owner_features)
        vector = cached.coalition_utility_vector(players)
        contents = cached.cache_contents()
        assert len(contents) == (1 << len(players)) - 1
        for coalition, value in contents.items():
            mask = sum(1 << players.index(member) for member in coalition)
            assert value == vector[mask]

    def test_vector_path_refuses_oversized_games(self, retrain_game):
        utility = retrain_game()
        fake_players = [f"p{i}" for i in range(utility.VECTOR_MAX_PLAYERS + 1)]
        assert utility.coalition_utility_vector(fake_players) is None

    def test_unknown_owner_rejected_in_vector_path(self, retrain_game):
        from repro.exceptions import UtilityError

        with pytest.raises(UtilityError):
            retrain_game().coalition_utility_vector(["ghost"])

    def test_small_batches_fall_back_to_serial(self, retrain_game):
        backend = ProcessPoolEvaluationBackend(n_workers=2, min_parallel_coalitions=100)
        utility = retrain_game(backend=backend)
        players = sorted(utility.owner_features)
        coalitions = [(players[0],), (players[1],)]
        values = backend.retrain_scores(utility, coalitions)
        reference = retrain_game().backend.retrain_scores(retrain_game(), coalitions)
        assert np.array_equal(values, reference)


class TestParallelScoring:
    """The pool backend's chunk-aligned batched scoring (the estimator's path)."""

    def test_parallel_score_models_is_bitwise_identical(self, scorer, rng, monkeypatch):
        # Shrink the scorer's chunk to 16 rows so the 64-row batch really
        # splits across workers (at the default chunk size it would be one
        # unit and short-circuit to serial).
        logits_per_row = scorer.test_features.shape[0] * scorer.n_classes
        monkeypatch.setattr(
            type(scorer), "_CHUNK_LOGITS_ELEMENTS", 16 * logits_per_row, raising=False
        )
        assert scorer.batch_chunk_rows() == 16
        dimension = scorer.test_features.shape[1] * scorer.n_classes + scorer.n_classes
        vectors = rng.normal(size=(64, dimension))
        reference = score_vectors(scorer, vectors)
        with ProcessPoolEvaluationBackend(n_workers=2, min_parallel_rows=8) as backend:
            parallel = backend.score_models(scorer, vectors)
        assert np.array_equal(parallel, reference)

    def test_small_batches_short_circuit_to_serial(self, scorer, rng):
        dimension = scorer.test_features.shape[1] * scorer.n_classes + scorer.n_classes
        vectors = rng.normal(size=(16, dimension))
        backend = ProcessPoolEvaluationBackend(n_workers=2, min_parallel_rows=1024)
        try:
            scores = backend.score_models(scorer, vectors)
            # Regression pin: below the min-work threshold no pool may be
            # spun up — small runs must not pay process start-up for nothing.
            assert backend._pool is None
            assert np.array_equal(scores, score_vectors(scorer, vectors))
        finally:
            backend.close()

    def test_scorers_without_chunk_contract_stay_serial(self, rng):
        class PlainScorer:
            def score_batch(self, rows):
                return np.asarray(rows, dtype=np.float64).sum(axis=1)

        scorer = PlainScorer()
        backend = ProcessPoolEvaluationBackend(n_workers=2, min_parallel_rows=1)
        try:
            scores = backend.score_models(scorer, rng.normal(size=(32, 4)))
            assert backend._pool is None
            assert scores.shape == (32,)
        finally:
            backend.close()

    def test_split_boundaries_are_chunk_multiples(self, scorer, rng, monkeypatch):
        # score_batch(rows[a:b]) == score_batch(rows)[a:b] only when a, b are
        # multiples of the scorer's chunk size; shrink the chunk so a split at
        # any other boundary would be detectable.
        monkeypatch.setattr(type(scorer), "_CHUNK_LOGITS_ELEMENTS", 1, raising=False)
        assert scorer.batch_chunk_rows() == 1
        dimension = scorer.test_features.shape[1] * scorer.n_classes + scorer.n_classes
        vectors = rng.normal(size=(23, dimension))
        reference = score_vectors(scorer, vectors)
        with ProcessPoolEvaluationBackend(n_workers=2, min_parallel_rows=2) as backend:
            parallel = backend.score_models(scorer, vectors)
        assert np.array_equal(parallel, reference)


class TestGenericRouting:
    def test_score_models_matches_scalar_scoring(self, scorer, local_models):
        backend = default_backend()
        vectors = np.stack([m.to_vector() for m in local_models.values()])
        batched = backend.score_models(scorer, vectors)
        scalar = np.array([scorer.score_vector(v) for v in vectors])
        assert np.array_equal(batched, scalar)

    def test_utility_vector_routes_coalition_model_games(self, scorer, local_models):
        backend = default_backend()
        utility = CoalitionModelUtility(local_models, scorer)
        players = sorted(local_models)
        vector = backend.utility_vector(utility, players)
        assert vector is not None
        assert vector.size == 1 << len(players)
        assert vector[(1 << len(players)) - 1] == pytest.approx(utility(tuple(players)))

    def test_evaluate_coalitions_routes_through_utility_batching(self, scorer, local_models):
        backend = default_backend()
        utility = CoalitionModelUtility(local_models, scorer)
        players = sorted(local_models)
        coalitions = [(players[0],), tuple(players[:2]), tuple(players)]
        values = backend.evaluate_coalitions(utility, coalitions)
        assert values == pytest.approx([utility(c) for c in coalitions])

    def test_evaluate_coalitions_falls_back_to_scalar_calls(self):
        backend = default_backend()
        values = backend.evaluate_coalitions(lambda c: float(len(c)), [("a",), ("a", "b")])
        assert values.tolist() == [1.0, 2.0]

    def test_backend_context_manager(self):
        with ProcessPoolEvaluationBackend(n_workers=2) as backend:
            assert backend.name == "process-pool"


class TestWarmCacheVector:
    def test_second_vector_request_is_served_from_the_memo(self, retrain_game):
        inner = retrain_game()
        cached = CachedUtility(inner)
        players = sorted(inner.owner_features)

        first = cached.coalition_utility_vector(players)
        trainings_after_first = inner.evaluations()
        second = cached.coalition_utility_vector(players)

        assert np.array_equal(first, second)
        # No additional retraining sweep: the warm memo served the vector.
        assert inner.evaluations() == trainings_after_first

    def test_partially_warm_cache_still_delegates(self, retrain_game):
        inner = retrain_game()
        cached = CachedUtility(inner)
        players = sorted(inner.owner_features)
        cached((players[0],))  # warm a single coalition only
        vector = cached.coalition_utility_vector(players)
        assert vector is not None
        assert inner.evaluations() >= (1 << len(players)) - 1
