"""Shared fixtures for the test suite.

Expensive artefacts (datasets, trained local models, a full protocol run) are
session scoped so the suite stays fast while many tests can assert against the
same realistic objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.fl.client import DataOwner
from repro.fl.trainer import FederatedTrainer, TrainingConfig
from repro.shapley.utility import AccuracyUtility


@pytest.fixture(scope="session")
def small_setup():
    """A 4-owner, 320-sample instance of the paper's experimental setup."""
    dataset, owners = make_owner_datasets(n_owners=4, sigma=0.2, n_samples=320, seed=11)
    return dataset, owners


@pytest.fixture(scope="session")
def dataset(small_setup):
    """The global train/test split of the small setup."""
    return small_setup[0]


@pytest.fixture(scope="session")
def owners(small_setup):
    """The per-owner (quality-degraded) training subsets of the small setup."""
    return small_setup[1]


@pytest.fixture(scope="session")
def scorer(dataset):
    """The shared accuracy utility scorer over the held-out test set."""
    return AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)


@pytest.fixture(scope="session")
def local_models(dataset, owners):
    """One round of local models (owner id -> ModelParameters), trained plainly."""
    clients = [
        DataOwner(o.owner_id, o.features, o.labels, dataset.n_classes, local_epochs=8, learning_rate=2.0)
        for o in owners
    ]
    trainer = FederatedTrainer(
        clients,
        dataset.n_features,
        dataset.n_classes,
        TrainingConfig(n_rounds=1, local_epochs=8, learning_rate=2.0),
    )
    record = trainer.run_round(trainer.initial_parameters(), 0)
    return {update.owner_id: update.parameters for update in record.updates}


@pytest.fixture(scope="session")
def protocol_run(dataset, owners):
    """A completed small blockchain protocol run (protocol object + result)."""
    config = ProtocolConfig(
        n_owners=len(owners),
        n_groups=2,
        n_rounds=2,
        local_epochs=5,
        learning_rate=2.0,
        permutation_seed=13,
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    result = protocol.run()
    return protocol, result


@pytest.fixture()
def rng():
    """A fresh deterministic NumPy generator for per-test randomness."""
    return np.random.default_rng(1234)
