"""Shared fixtures for the test suite.

Expensive artefacts (datasets, trained local models, a full protocol run) are
session scoped so the suite stays fast while many tests can assert against the
same realistic objects.

Also provides a hard per-test timeout: when the ``pytest-timeout`` plugin is
installed (CI) it owns the ``timeout`` marker and ini option; otherwise a
SIGALRM-based fallback enforces the same contract, so a wedged swarm process
fails the test loudly instead of hanging the whole suite.
"""

from __future__ import annotations

import importlib.util
import signal

import numpy as np
import pytest

from repro.core.config import ProtocolConfig

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addini(
            "timeout",
            "default hard per-test timeout in seconds (SIGALRM fallback; 0 disables)",
            default="0",
        )


def pytest_configure(config):
    if not _HAVE_PYTEST_TIMEOUT:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): hard wall-clock limit for one test "
            "(pytest-timeout when installed, SIGALRM fallback otherwise)",
        )


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            seconds = float(marker.args[0])
        else:
            try:
                seconds = float(item.config.getini("timeout") or 0)
            except (TypeError, ValueError):
                seconds = 0.0
        if seconds <= 0:
            yield
            return

        def _on_alarm(signum, frame):  # noqa: ARG001 - signal handler signature
            raise TimeoutError(f"test exceeded its {seconds:.0f}s hard timeout")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.fl.client import DataOwner
from repro.fl.trainer import FederatedTrainer, TrainingConfig
from repro.shapley.utility import AccuracyUtility


@pytest.fixture(scope="session")
def small_setup():
    """A 4-owner, 320-sample instance of the paper's experimental setup."""
    dataset, owners = make_owner_datasets(n_owners=4, sigma=0.2, n_samples=320, seed=11)
    return dataset, owners


@pytest.fixture(scope="session")
def dataset(small_setup):
    """The global train/test split of the small setup."""
    return small_setup[0]


@pytest.fixture(scope="session")
def owners(small_setup):
    """The per-owner (quality-degraded) training subsets of the small setup."""
    return small_setup[1]


@pytest.fixture(scope="session")
def scorer(dataset):
    """The shared accuracy utility scorer over the held-out test set."""
    return AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)


@pytest.fixture(scope="session")
def local_models(dataset, owners):
    """One round of local models (owner id -> ModelParameters), trained plainly."""
    clients = [
        DataOwner(o.owner_id, o.features, o.labels, dataset.n_classes, local_epochs=8, learning_rate=2.0)
        for o in owners
    ]
    trainer = FederatedTrainer(
        clients,
        dataset.n_features,
        dataset.n_classes,
        TrainingConfig(n_rounds=1, local_epochs=8, learning_rate=2.0),
    )
    record = trainer.run_round(trainer.initial_parameters(), 0)
    return {update.owner_id: update.parameters for update in record.updates}


@pytest.fixture(scope="session")
def protocol_run(dataset, owners):
    """A completed small blockchain protocol run (protocol object + result)."""
    config = ProtocolConfig(
        n_owners=len(owners),
        n_groups=2,
        n_rounds=2,
        local_epochs=5,
        learning_rate=2.0,
        permutation_seed=13,
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    result = protocol.run()
    return protocol, result


@pytest.fixture()
def rng():
    """A fresh deterministic NumPy generator for per-test randomness."""
    return np.random.default_rng(1234)
