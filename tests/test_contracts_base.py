"""Tests for the contract runtime (repro.blockchain.contracts.base)."""

from __future__ import annotations

import pytest

from repro.blockchain.contracts.base import Contract, ContractContext, ContractRuntime, contract_method
from repro.blockchain.state import WorldState
from repro.exceptions import ContractError, ContractNotFoundError, ValidationError

from tests.helpers import CounterContract, counter_runtime_factory


class TestRegistration:
    def test_register_and_lookup(self):
        runtime = counter_runtime_factory()
        assert runtime.get("counter").name == "counter"
        assert runtime.registered_names() == ["counter"]

    def test_duplicate_registration_rejected(self):
        runtime = counter_runtime_factory()
        with pytest.raises(ContractError):
            runtime.register(CounterContract())

    def test_unknown_contract_lookup_rejected(self):
        with pytest.raises(ContractNotFoundError):
            ContractRuntime().get("nope")

    def test_contract_without_name_rejected(self):
        class Nameless(Contract):
            pass

        with pytest.raises(ValidationError):
            Nameless()


class TestExecution:
    def test_execute_returns_result_events_gas(self):
        runtime = counter_runtime_factory()
        state = WorldState()
        result, events, gas = runtime.execute(state, "alice", "counter", "increment", {"amount": 3})
        assert result == 3
        assert events[0]["name"] == "Incremented"
        assert gas > 0
        assert state.get("counter", "value") == 3

    def test_undecorated_methods_are_not_callable(self):
        runtime = counter_runtime_factory()
        with pytest.raises(ContractError):
            runtime.execute(WorldState(), "alice", "counter", "not_callable", {})

    def test_unknown_method_rejected(self):
        runtime = counter_runtime_factory()
        with pytest.raises(ContractError):
            runtime.execute(WorldState(), "alice", "counter", "missing", {})

    def test_bad_arguments_become_contract_error(self):
        runtime = counter_runtime_factory()
        with pytest.raises(ContractError):
            runtime.execute(WorldState(), "alice", "counter", "increment", {"bogus": 1})

    def test_contract_exception_propagates_as_contract_error(self):
        runtime = counter_runtime_factory()
        with pytest.raises(ContractError):
            runtime.execute(WorldState(), "alice", "counter", "fail", {})

    def test_gas_grows_with_argument_size(self):
        runtime = counter_runtime_factory()
        _, _, small_gas = runtime.execute(WorldState(), "a", "counter", "increment", {"amount": 1})
        _, _, big_gas = runtime.execute(
            WorldState(), "a", "counter", "increment", {"amount": 10**40}
        )
        assert big_gas > small_gas

    def test_execution_is_deterministic_across_runtimes(self):
        state_a, state_b = WorldState(), WorldState()
        runtime_a, runtime_b = counter_runtime_factory(), counter_runtime_factory()
        for state, runtime in ((state_a, runtime_a), (state_b, runtime_b)):
            runtime.execute(state, "alice", "counter", "increment", {"amount": 2})
            runtime.execute(state, "bob", "counter", "increment", {"amount": 5})
        assert state_a.state_root() == state_b.state_root()


class TestContractContext:
    def test_namespaced_set_get(self):
        state = WorldState()
        ctx = ContractContext(state=state, sender="alice", contract_name="counter")
        ctx.set("k", 1)
        assert ctx.get("k") == 1
        assert state.get("counter", "k") == 1

    def test_delete_and_contains(self):
        ctx = ContractContext(state=WorldState(), sender="a", contract_name="c")
        ctx.set("k", 1)
        assert ctx.contains("k")
        ctx.delete("k")
        assert not ctx.contains("k")

    def test_keys_lists_namespace_keys(self):
        ctx = ContractContext(state=WorldState(), sender="a", contract_name="c")
        ctx.set("b", 1)
        ctx.set("a", 2)
        assert ctx.keys() == ["a", "b"]

    def test_read_external_namespace(self):
        state = WorldState()
        state.set("other", "k", 42)
        ctx = ContractContext(state=state, sender="a", contract_name="c")
        assert ctx.read_external("other", "k") == 42

    def test_writes_are_gas_metered(self):
        ctx = ContractContext(state=WorldState(), sender="a", contract_name="c")
        before = ctx.gas_used
        ctx.set("k", list(range(100)))
        assert ctx.gas_used > before

    def test_non_serializable_write_rejected(self):
        ctx = ContractContext(state=WorldState(), sender="a", contract_name="c")
        with pytest.raises(ContractError):
            ctx.set("k", object())

    def test_emit_collects_events(self):
        ctx = ContractContext(state=WorldState(), sender="a", contract_name="c")
        ctx.emit("Something", value=3)
        assert ctx.events == [{"name": "Something", "data": {"value": 3}}]


class TestContractMethodDecorator:
    def test_decorated_methods_are_discovered(self):
        contract = CounterContract()
        assert set(contract.callable_methods()) == {"increment", "get", "fail"}

    def test_decorator_preserves_function(self):
        @contract_method
        def sample(ctx):
            return 1

        assert sample(None) == 1
