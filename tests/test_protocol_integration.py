"""Integration tests for the end-to-end blockchain FL protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adversary import AdversaryBehavior
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import ProtocolError, SetupError
from repro.fl.client import DataOwner
from repro.fl.trainer import FederatedTrainer, TrainingConfig
from repro.shapley.group import accumulate_user_values, group_shapley_round
from repro.shapley.metrics import cosine_similarity
from repro.shapley.utility import AccuracyUtility


class TestProtocolRun:
    def test_every_round_is_recorded(self, protocol_run):
        protocol, result = protocol_run
        assert len(result.rounds) == protocol.config.n_rounds

    def test_contributions_cover_every_owner(self, protocol_run):
        protocol, result = protocol_run
        assert set(result.total_contributions) == set(protocol.owner_ids)

    def test_totals_equal_sum_of_round_values(self, protocol_run):
        protocol, result = protocol_run
        for owner in protocol.owner_ids:
            expected = sum(record.user_values[owner] for record in result.rounds)
            assert result.total_contributions[owner] == pytest.approx(expected, abs=1e-9)

    def test_rewards_sum_to_the_pool(self, protocol_run):
        protocol, result = protocol_run
        assert sum(result.reward_balances.values()) == pytest.approx(protocol.config.reward_pool)

    def test_rewards_are_monotone_in_contributions(self, protocol_run):
        protocol, result = protocol_run
        contributions = result.total_contributions
        rewards = result.reward_balances
        owners = sorted(contributions, key=contributions.get)
        reward_order = [rewards[o] for o in owners]
        assert reward_order == sorted(reward_order)

    def test_global_model_learns_something(self, protocol_run, dataset):
        protocol, result = protocol_run
        scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
        final_accuracy = scorer.score(result.final_parameters)
        assert final_accuracy > 0.5
        assert result.rounds[-1].global_utility == pytest.approx(final_accuracy, abs=0.2)

    def test_every_replica_converges_to_the_same_state(self, protocol_run):
        protocol, _ = protocol_run
        roots = {p.node.chain.state.state_root() for p in protocol.participants.values()}
        assert len(roots) == 1

    def test_chain_replays_cleanly_on_every_replica(self, protocol_run):
        protocol, _ = protocol_run
        for participant in protocol.participants.values():
            replayed = participant.node.chain.replay()
            assert replayed.state.state_root() == participant.node.chain.state.state_root()

    def test_consensus_was_unanimous_without_byzantine_miners(self, protocol_run):
        _, result = protocol_run
        for record in result.rounds:
            assert record.consensus is not None and record.consensus.accepted
            assert record.consensus.reject_count == 0

    def test_groups_follow_the_shared_permutation_seed(self, protocol_run):
        protocol, result = protocol_run
        from repro.shapley.group import make_groups

        for record in result.rounds:
            expected = make_groups(
                protocol.owner_ids, protocol.config.n_groups, protocol.config.permutation_seed, record.round_number
            )
            assert [list(g) for g in record.groups] == [list(g) for g in expected]

    def test_transaction_and_block_counts(self, protocol_run):
        protocol, result = protocol_run
        n = len(protocol.owner_ids)
        rounds = protocol.config.n_rounds
        # setup block + one block per round + reward block
        assert result.chain_height == rounds + 2
        # setup: params + n registrations; per round: n updates + finalize + evaluate; final: 1 reward tx
        assert result.total_transactions == (1 + n) + rounds * (n + 2) + 1

    def test_setup_cannot_run_twice(self, protocol_run):
        protocol, _ = protocol_run
        with pytest.raises(SetupError):
            protocol.setup()

    def test_round_before_setup_rejected(self, dataset, owners):
        config = ProtocolConfig(n_owners=len(owners), n_groups=2, n_rounds=1, local_epochs=1)
        protocol = BlockchainFLProtocol(owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config)
        with pytest.raises(ProtocolError):
            protocol.run_round(0, protocol._template_parameters)

    def test_owner_count_mismatch_rejected(self, dataset, owners):
        config = ProtocolConfig(n_owners=len(owners) + 1, n_groups=2)
        with pytest.raises(ProtocolError):
            BlockchainFLProtocol(owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config)


class TestEquivalenceWithPlainFedAvg:
    """The masked on-chain path must reproduce plain FedAvg + GroupSV."""

    @pytest.fixture(scope="class")
    def plain_reference(self, dataset, owners, protocol_run):
        protocol, _ = protocol_run
        config = protocol.config
        clients = [
            DataOwner(
                o.owner_id, o.features, o.labels, dataset.n_classes,
                local_epochs=config.local_epochs, learning_rate=config.learning_rate,
                batch_size=config.batch_size, l2=config.l2,
            )
            for o in owners
        ]
        trainer = FederatedTrainer(
            clients, dataset.n_features, dataset.n_classes,
            TrainingConfig(
                n_rounds=config.n_rounds, local_epochs=config.local_epochs,
                learning_rate=config.learning_rate, l2=config.l2, batch_size=config.batch_size,
            ),
        )
        scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
        global_parameters = trainer.initial_parameters()
        round_results = []
        for round_number in range(config.n_rounds):
            record = trainer.run_round(global_parameters, round_number)
            local_models = {u.owner_id: u.parameters for u in record.updates}
            group_result = group_shapley_round(
                local_models, config.n_groups, config.permutation_seed, round_number, scorer
            )
            round_results.append(group_result)
            global_parameters = group_result.global_model
        return global_parameters, round_results

    def test_final_global_model_matches_plain_path(self, protocol_run, plain_reference):
        _, result = protocol_run
        plain_final, _ = plain_reference
        on_chain = result.final_parameters.to_vector()
        plain = plain_final.to_vector()
        assert np.allclose(on_chain, plain, atol=1e-4)

    def test_per_round_contributions_match_plain_groupsv(self, protocol_run, plain_reference):
        # The on-chain path works on fixed-point encoded weights, so coalition
        # accuracies may differ by at most a test-sample flip or two; the
        # contribution pattern must still match closely.
        _, result = protocol_run
        _, plain_rounds = plain_reference
        for chain_round, plain_round in zip(result.rounds, plain_rounds):
            for owner, value in plain_round.user_values.items():
                assert chain_round.user_values[owner] == pytest.approx(value, abs=0.02)

    def test_total_contributions_match_plain_accumulation(self, protocol_run, plain_reference):
        _, result = protocol_run
        _, plain_rounds = plain_reference
        plain_totals = accumulate_user_values(plain_rounds)
        similarity = cosine_similarity(result.total_contributions, plain_totals)
        assert similarity == pytest.approx(1.0, abs=1e-3)


class TestAudit:
    def test_audit_passes_on_honest_run(self, protocol_run, dataset):
        protocol, _ = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
        assert report.passed
        assert report.rounds_checked == list(range(protocol.config.n_rounds))

    def test_audit_recomputes_the_stored_totals(self, protocol_run, dataset):
        protocol, result = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
        for owner, value in result.total_contributions.items():
            assert report.recomputed_totals[owner] == pytest.approx(value, abs=1e-8)

    def test_audit_detects_tampered_contract_state(self, protocol_run, dataset):
        protocol, _ = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain.clone()
        # Tamper with the stored evaluation of round 0 directly in the state.
        stored = chain.state.get("contribution", "evaluation/0")
        victim = sorted(stored["user_values"])[0]
        stored["user_values"][victim] += 0.5
        chain.state.set("contribution", "evaluation/0", stored)
        report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
        assert not report.passed

    def test_audit_with_wrong_validation_set_fails(self, protocol_run, dataset):
        protocol, _ = protocol_run
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        rng = np.random.default_rng(0)
        fake_labels = rng.integers(0, dataset.n_classes, size=dataset.test_labels.size)
        report = audit_chain(chain, dataset.test_features, fake_labels, dataset.n_classes)
        assert not report.passed


class TestByzantineAndAdversarialRuns:
    def test_minority_byzantine_miner_does_not_stop_the_protocol(self, dataset):
        _, owners = make_owner_datasets(n_owners=4, sigma=0.2, n_samples=240, seed=21)
        config = ProtocolConfig(
            n_owners=4, n_groups=2, n_rounds=1, local_epochs=2, learning_rate=2.0,
            byzantine_miners=(owners[-1].owner_id,),
        )
        protocol = BlockchainFLProtocol(owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config)
        result = protocol.run()
        assert len(result.rounds) == 1
        assert result.rounds[0].consensus.reject_count == 1
        assert result.rounds[0].consensus.accepted

    def test_free_riding_adversary_earns_less_than_its_honest_counterfactual(self, dataset):
        _, owners = make_owner_datasets(n_owners=4, sigma=0.0, n_samples=240, seed=22)
        config = ProtocolConfig(n_owners=4, n_groups=4, n_rounds=1, local_epochs=3, learning_rate=2.0)
        adversary_id = owners[0].owner_id

        honest = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
        ).run()
        adversarial = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config,
            adversaries={adversary_id: AdversaryBehavior(kind="noise", magnitude=5.0, seed=1)},
        ).run()
        assert adversarial.total_contributions[adversary_id] < honest.total_contributions[adversary_id]
