"""Tests for the mempool (repro.blockchain.mempool)."""

from __future__ import annotations

import pytest

from repro.blockchain.mempool import Mempool
from repro.blockchain.transaction import Transaction
from repro.exceptions import InvalidTransactionError


def tx(sender="alice", nonce=0, key=5):
    return Transaction(sender=sender, contract="registry", method="register_participant", args={"public_key": key}, nonce=nonce)


class TestMempool:
    def test_add_and_len(self):
        pool = Mempool()
        assert pool.add(tx())
        assert len(pool) == 1

    def test_duplicate_is_ignored(self):
        pool = Mempool()
        transaction = tx()
        assert pool.add(transaction)
        assert not pool.add(transaction)
        assert len(pool) == 1

    def test_contains_by_hash(self):
        pool = Mempool()
        transaction = tx()
        pool.add(transaction)
        assert transaction.tx_hash in pool

    def test_take_preserves_fifo_order(self):
        pool = Mempool()
        txs = [tx(nonce=i, key=i + 2) for i in range(5)]
        pool.add_many(txs)
        taken = pool.take()
        assert [t.tx_hash for t in taken] == [t.tx_hash for t in txs]
        assert len(pool) == 0

    def test_take_with_limit(self):
        pool = Mempool()
        txs = [tx(nonce=i, key=i + 2) for i in range(5)]
        pool.add_many(txs)
        first_two = pool.take(limit=2)
        assert len(first_two) == 2
        assert len(pool) == 3

    def test_peek_does_not_remove(self):
        pool = Mempool()
        pool.add(tx())
        assert len(pool.peek()) == 1
        assert len(pool) == 1

    def test_remove_included_transactions(self):
        pool = Mempool()
        txs = [tx(nonce=i, key=i + 2) for i in range(3)]
        pool.add_many(txs)
        pool.remove([txs[0].tx_hash, txs[2].tx_hash])
        remaining = pool.peek()
        assert [t.tx_hash for t in remaining] == [txs[1].tx_hash]

    def test_add_many_counts_new_only(self):
        pool = Mempool()
        first = tx(nonce=0)
        assert pool.add_many([first, first, tx(nonce=1)]) == 2

    def test_full_pool_rejects(self):
        pool = Mempool(max_size=1)
        pool.add(tx(nonce=0))
        with pytest.raises(InvalidTransactionError):
            pool.add(tx(nonce=1))

    def test_invalid_transaction_rejected_on_admission(self):
        pool = Mempool()
        bad = Transaction(
            sender="alice",
            contract="registry",
            method="register_participant",
            args={"public_key": 5},
            nonce=0,
            signature="00" * 32,
        )
        with pytest.raises(InvalidTransactionError):
            pool.add(bad)
