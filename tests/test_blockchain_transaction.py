"""Tests for transactions and receipts (repro.blockchain.transaction)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.blockchain.transaction import Transaction, TransactionReceipt
from repro.exceptions import InvalidTransactionError, ValidationError


def make_tx(**overrides):
    defaults = dict(sender="alice", contract="registry", method="register_participant", args={"public_key": 5}, nonce=0)
    defaults.update(overrides)
    return Transaction(**defaults)


class TestTransaction:
    def test_signature_is_generated_automatically(self):
        assert make_tx().signature != ""

    def test_signature_verifies(self):
        assert make_tx().verify_signature()

    def test_tampered_args_fail_verification(self):
        tx = make_tx()
        tampered = dataclasses.replace(tx, args={"public_key": 6})
        forged = Transaction(
            sender=tampered.sender,
            contract=tampered.contract,
            method=tampered.method,
            args=tampered.args,
            nonce=tampered.nonce,
            signature=tx.signature,
        )
        assert not forged.verify_signature()
        with pytest.raises(InvalidTransactionError):
            forged.validate()

    def test_wrong_sender_cannot_reuse_signature(self):
        tx = make_tx()
        forged = Transaction(
            sender="mallory",
            contract=tx.contract,
            method=tx.method,
            args=tx.args,
            nonce=tx.nonce,
            signature=tx.signature,
        )
        assert not forged.verify_signature()

    def test_hash_changes_with_content(self):
        assert make_tx().tx_hash != make_tx(nonce=1).tx_hash

    def test_hash_is_stable(self):
        assert make_tx().tx_hash == make_tx().tx_hash

    def test_array_arguments_are_allowed(self):
        tx = make_tx(args={"payload": np.arange(4, dtype=np.uint64)})
        tx.validate()

    def test_rejects_empty_sender(self):
        with pytest.raises(ValidationError):
            make_tx(sender="")

    def test_rejects_missing_contract_or_method(self):
        with pytest.raises(ValidationError):
            make_tx(contract="")
        with pytest.raises(ValidationError):
            make_tx(method="")

    def test_rejects_negative_nonce(self):
        with pytest.raises(ValidationError):
            make_tx(nonce=-1)

    def test_unserializable_args_rejected_at_construction(self):
        # Signing canonically serializes the body, so unserializable arguments
        # cannot even produce a signed transaction.
        with pytest.raises(ValidationError):
            make_tx(args={"bad": object()})


class TestTransactionReceipt:
    def test_to_dict_shape(self):
        receipt = TransactionReceipt(tx_hash="ab", success=True, result={"x": 1}, gas_used=10)
        payload = receipt.to_dict()
        assert payload["tx_hash"] == "ab"
        assert payload["success"] is True
        assert payload["gas_used"] == 10

    def test_failed_receipt_carries_error(self):
        receipt = TransactionReceipt(tx_hash="cd", success=False, error="boom")
        assert receipt.to_dict()["error"] == "boom"

    def test_events_round_trip_through_dict(self):
        receipt = TransactionReceipt(tx_hash="ef", success=True, events=({"name": "E", "data": {}},))
        assert receipt.to_dict()["events"] == [{"name": "E", "data": {}}]
