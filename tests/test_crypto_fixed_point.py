"""Tests for fixed-point encoding (repro.crypto.fixed_point)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fixed_point import FixedPointCodec
from repro.exceptions import EncodingRangeError, ValidationError


class TestCodecConstruction:
    def test_default_parameters(self):
        codec = FixedPointCodec()
        assert codec.modulus == 2**64
        assert codec.scale == 2**24

    def test_rejects_bad_precision(self):
        with pytest.raises(ValidationError):
            FixedPointCodec(precision_bits=0)
        with pytest.raises(ValidationError):
            FixedPointCodec(precision_bits=60)

    def test_rejects_bad_field(self):
        with pytest.raises(ValidationError):
            FixedPointCodec(field_bits=8)
        with pytest.raises(ValidationError):
            FixedPointCodec(field_bits=80)

    def test_rejects_precision_without_headroom(self):
        with pytest.raises(ValidationError):
            FixedPointCodec(precision_bits=31, field_bits=32)

    def test_max_abs_value_scales_with_summands(self):
        small = FixedPointCodec(max_summands=2)
        large = FixedPointCodec(max_summands=200)
        assert small.max_abs_value > large.max_abs_value


class TestEncodeDecode:
    def test_roundtrip_small_values(self):
        codec = FixedPointCodec()
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25, 3.14159])
        decoded = codec.decode(codec.encode(values))
        assert np.allclose(decoded, values, atol=2.0 / codec.scale)

    def test_resolution_is_one_over_scale(self):
        codec = FixedPointCodec(precision_bits=16)
        value = np.array([1.0 / codec.scale])
        assert codec.decode(codec.encode(value))[0] == pytest.approx(value[0])

    def test_rejects_values_beyond_range(self):
        codec = FixedPointCodec(precision_bits=24, field_bits=32, max_summands=4)
        with pytest.raises(EncodingRangeError):
            codec.encode(np.array([codec.max_abs_value * 2]))

    def test_rejects_non_finite(self):
        codec = FixedPointCodec()
        with pytest.raises(EncodingRangeError):
            codec.encode(np.array([np.nan]))

    def test_empty_vector(self):
        codec = FixedPointCodec()
        assert codec.decode(codec.encode(np.array([]))).size == 0

    def test_decode_sum_rejects_too_many_summands(self):
        codec = FixedPointCodec(max_summands=4)
        with pytest.raises(EncodingRangeError):
            codec.decode_sum(np.zeros(3, dtype=np.uint64), n_summands=5)

    def test_decode_sum_rejects_non_positive_summands(self):
        codec = FixedPointCodec()
        with pytest.raises(ValidationError):
            codec.decode_sum(np.zeros(3, dtype=np.uint64), n_summands=0)

    def test_sum_of_encodings_decodes_to_sum(self):
        codec = FixedPointCodec()
        a = np.array([1.5, -2.0, 0.125])
        b = np.array([-0.5, 3.0, 10.0])
        total = codec.add(codec.encode(a), codec.encode(b))
        assert np.allclose(codec.decode_sum(total, 2), a + b, atol=4.0 / codec.scale)

    def test_subtract_inverts_add(self):
        codec = FixedPointCodec()
        a = codec.encode(np.array([0.25, -4.0]))
        b = codec.encode(np.array([1.0, 2.0]))
        assert np.array_equal(codec.subtract(codec.add(a, b), b), a)

    def test_smaller_field_wraps_consistently(self):
        codec = FixedPointCodec(precision_bits=10, field_bits=32, max_summands=8)
        values = np.array([5.0, -7.25])
        assert np.allclose(codec.decode(codec.encode(values)), values, atol=2.0 / codec.scale)


class TestCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=32),
        st.sampled_from([16, 20, 24]),
        st.sampled_from([48, 64]),
    )
    def test_property_roundtrip_within_resolution(self, values, precision_bits, field_bits):
        codec = FixedPointCodec(precision_bits=precision_bits, field_bits=field_bits, max_summands=64)
        arr = np.array(values)
        decoded = codec.decode(codec.encode(arr))
        assert np.allclose(decoded, arr, atol=1.5 / codec.scale)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=4, max_size=4),
            min_size=2,
            max_size=8,
        )
    )
    def test_property_ring_sum_equals_real_sum(self, vectors):
        codec = FixedPointCodec()
        arrays = [np.array(vector) for vector in vectors]
        total = codec.encode(np.zeros(4))
        for array in arrays:
            total = codec.add(total, codec.encode(array))
        expected = np.sum(arrays, axis=0)
        tolerance = (len(arrays) + 1) / codec.scale
        assert np.allclose(codec.decode_sum(total, len(arrays) + 1), expected, atol=tolerance)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=16))
    def test_property_add_subtract_roundtrip(self, values):
        codec = FixedPointCodec()
        rng = np.random.default_rng(0)
        mask = rng.integers(0, 2**63, size=len(values), dtype=np.uint64)
        encoded = codec.encode(np.array(values))
        assert np.array_equal(codec.subtract(codec.add(encoded, mask), mask), encoded)
