"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["does-not-exist"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.owners == 5
        assert args.groups == 3
        assert args.rounds == 3

    def test_run_custom_arguments(self):
        args = build_parser().parse_args(
            ["run", "--owners", "4", "--groups", "2", "--rounds", "1", "--sigma", "0.3"]
        )
        assert (args.owners, args.groups, args.rounds, args.sigma) == (4, 2, 1, 0.3)


class TestCommands:
    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert __version__ in output
        assert "n_groups" in output

    def test_run_command_end_to_end(self, capsys):
        exit_code = main([
            "run", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--sigma", "0.1", "--seed", "3",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "accumulated contributions" in output
        assert "transparency audit (replay): PASSED" in output

    def test_run_command_churn_scenario(self, capsys):
        exit_code = main([
            "run", "--owners", "4", "--groups", "2", "--rounds", "2",
            "--samples", "320", "--local-epochs", "2", "--sigma", "0.1", "--seed", "3",
            "--scenario", "churn",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario: churn" in output
        assert "cohort epochs (per-epoch settlement)" in output
        assert "transparency audit (replay): PASSED" in output

    def test_run_command_leader_dropout_scenario(self, capsys):
        exit_code = main([
            "run", "--owners", "4", "--groups", "2", "--rounds", "2",
            "--samples", "320", "--local-epochs", "2", "--sigma", "0.1", "--seed", "3",
            "--scenario", "leader-dropout",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario: leader-dropout" in output
        assert "consensus authority (epoch schedule)" in output
        assert "view 0 owner-1: silent" in output
        assert "proposers verified: [0, 1]" in output
        assert "transparency audit (replay): PASSED" in output

    def test_run_membership_scenarios_need_two_rounds(self, capsys):
        exit_code = main([
            "run", "--owners", "4", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "1", "--scenario", "join",
        ])
        assert exit_code == 2
        assert "at least 2 rounds" in capsys.readouterr().out

    def test_run_leave_scenario_keeps_grouping_feasible(self, capsys):
        exit_code = main([
            "run", "--owners", "3", "--groups", "3", "--rounds", "2",
            "--samples", "240", "--local-epochs", "1", "--scenario", "leave",
        ])
        assert exit_code == 2
        assert "fewer than" in capsys.readouterr().out

    def test_run_command_can_skip_audit(self, capsys):
        exit_code = main([
            "run", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--skip-audit",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "transparency audit" not in output

    def test_run_merkle_chain_with_incremental_audit(self, capsys):
        exit_code = main([
            "run", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--sigma", "0.1", "--seed", "3",
            "--state-root-version", "2", "--audit-mode", "incremental",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "transparency audit (incremental): PASSED" in output
        assert "state roots verified" in output

    def test_prove_then_verify_roundtrip(self, capsys, tmp_path):
        import json

        proof_file = str(tmp_path / "proof.json")
        exit_code = main([
            "prove", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--seed", "3",
            "--namespace", "reward", "--key", "distribution/final",
            "--out", proof_file,
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "proved reward/distribution/final" in output
        payload = json.loads(open(proof_file).read())
        root = payload["header"]["state_root"]

        assert main(["verify-proof", "--proof", proof_file, "--root", root]) == 0
        assert "VERIFIED" in capsys.readouterr().out

        # Against a different (untrusted) root, verification must fail.
        assert main(["verify-proof", "--proof", proof_file, "--root", "00" * 32]) == 1
        assert "FAILED" in capsys.readouterr().out

        # A tampered value no longer matches the committed leaf.
        payload["value_canonical"] = payload["value_canonical"].replace(
            '"reward_pool":', '"reward_pool_x":'
        )
        tampered_file = str(tmp_path / "tampered.json")
        with open(tampered_file, "w") as handle:
            json.dump(payload, handle)
        assert main(["verify-proof", "--proof", tampered_file, "--root", root]) == 1

    def test_prove_unknown_key_lists_namespace(self, capsys, tmp_path):
        exit_code = main([
            "prove", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--seed", "3",
            "--namespace", "reward", "--key", "nothing-here",
            "--out", str(tmp_path / "proof.json"),
        ])
        output = capsys.readouterr().out
        assert exit_code == 2
        assert "no state entry reward/nothing-here" in output
        assert "distribution/final" in output

    def test_sweep_groups_command(self, capsys):
        exit_code = main([
            "sweep-groups", "--owners", "4", "--samples", "320", "--local-epochs", "3",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "min anonymity" in output
        # One row per m in 2..4 plus the header lines.
        assert len(output.strip().splitlines()) >= 5

    def test_ground_truth_command(self, capsys):
        exit_code = main([
            "ground-truth", "--owners", "3", "--samples", "300", "--epochs", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "native SV" in output
        assert "owner-0" in output


class TestFaultCli:
    def test_transport_and_fault_flags_parse(self):
        args = build_parser().parse_args([
            "run", "--transport", "faulty", "--fault-seed", "5",
            "--fault-plan", '{"drop_probability": 0.1}',
            "--delivery-report-out", "report.json",
        ])
        assert args.transport == "faulty"
        assert args.fault_seed == 5
        assert args.fault_plan == '{"drop_probability": 0.1}'
        assert args.delivery_report_out == "report.json"

    def test_transport_defaults_to_deterministic(self):
        args = build_parser().parse_args(["run"])
        assert args.transport == "deterministic"
        assert args.fault_plan is None
        assert args.delivery_report_out is None

    def test_fault_scenarios_are_selectable(self):
        for name in ("partition-heal", "eclipse", "lossy-gossip", "duplicate-storm"):
            assert build_parser().parse_args(["run", "--scenario", name]).scenario == name

    def test_run_command_partition_heal_scenario(self, capsys, tmp_path):
        report_path = tmp_path / "delivery.json"
        exit_code = main([
            "run", "--scenario", "partition-heal", "--owners", "4", "--groups", "2",
            "--rounds", "2", "--samples", "320", "--local-epochs", "2",
            "--fault-seed", "1", "--delivery-report-out", str(report_path),
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "transport delivery (faulty):" in output
        assert "round | attempt | attempted | delivered" in output  # per-round delivery table
        assert "aborted" in output  # the partitioned attempt shows up
        assert "transparency audit (replay): PASSED" in output

        report = json.loads(report_path.read_text())
        assert report["transport"] == "faulty"
        assert report["scenario"] == "partition-heal"
        assert report["report"]["totals"]["partitioned"] > 0
        committed = [row["committed"] for row in report["rounds"]]
        assert committed.count(False) == 1  # exactly one aborted attempt
        assert "delivery report written to" in output

    def test_run_command_generic_faulty_transport(self, capsys):
        exit_code = main([
            "run", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--seed", "3",
            "--fault-plan", '{"seed": 5, "drop_probability": 0.1}',
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "transport delivery (faulty):" in output
        assert "transparency audit (replay): PASSED" in output

    def test_deterministic_run_prints_clean_delivery_summary(self, capsys):
        exit_code = main([
            "run", "--owners", "3", "--groups", "2", "--rounds", "1",
            "--samples", "240", "--local-epochs", "2", "--sigma", "0.1", "--seed", "3",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "transport delivery (deterministic):" in output
