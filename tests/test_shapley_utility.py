"""Tests for utility functions (repro.shapley.utility)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UtilityError, ValidationError
from repro.fl.model import ModelParameters
from repro.shapley.utility import (
    AccuracyUtility,
    CachedUtility,
    CoalitionModelUtility,
    RetrainUtility,
)


class TestAccuracyUtility:
    def test_score_of_perfect_model_is_one(self, dataset, scorer):
        # Train a strong model on the full training data and check the scorer
        # reports its (high) accuracy consistently with direct evaluation.
        from repro.fl.logistic_regression import LogisticRegressionModel

        model = LogisticRegressionModel(dataset.n_features, dataset.n_classes)
        model.fit(dataset.train_features, dataset.train_labels, epochs=40, learning_rate=2.0)
        direct = model.evaluate(dataset.test_features, dataset.test_labels)["accuracy"]
        assert scorer.score(model.parameters) == pytest.approx(direct)

    def test_score_vector_matches_score(self, dataset, scorer, local_models):
        params = next(iter(local_models.values()))
        assert scorer.score_vector(params.to_vector()) == pytest.approx(scorer.score(params))

    def test_zero_model_scores_near_chance(self, dataset, scorer):
        from repro.fl.logistic_regression import LogisticRegressionModel

        zero = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        assert scorer.score(zero) < 0.35

    def test_macro_f1_metric_variant(self, dataset, local_models):
        scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes, metric="macro_f1")
        value = scorer.score(next(iter(local_models.values())))
        assert 0.0 <= value <= 1.0

    def test_unknown_metric_rejected(self, dataset):
        with pytest.raises(ValidationError):
            AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes, metric="auc")

    def test_empty_test_set_rejected(self):
        with pytest.raises(ValidationError):
            AccuracyUtility(np.zeros((0, 4)), np.zeros(0), 3)

    def test_direct_coalition_call_is_an_error(self, scorer):
        with pytest.raises(UtilityError):
            scorer(("a",))


class TestRetrainUtility:
    @pytest.fixture(scope="class")
    def retrain(self, dataset, owners, scorer):
        from repro.fl.server import CentralizedTrainer

        owner_features = {o.owner_id: o.features for o in owners}
        owner_labels = {o.owner_id: o.labels for o in owners}
        trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes, epochs=15, learning_rate=2.0)
        return RetrainUtility(owner_features, owner_labels, scorer, trainer=trainer)

    def test_empty_coalition_is_zero(self, retrain):
        assert retrain(()) == 0.0

    def test_grand_coalition_beats_single_owner(self, retrain, owners):
        ids = sorted(o.owner_id for o in owners)
        assert retrain(tuple(ids)) >= retrain((ids[-1],)) - 0.05

    def test_coalition_order_does_not_matter(self, retrain, owners):
        ids = sorted(o.owner_id for o in owners)[:2]
        assert retrain(tuple(ids)) == pytest.approx(retrain(tuple(reversed(ids))))

    def test_unknown_owner_rejected(self, retrain):
        with pytest.raises(UtilityError):
            retrain(("ghost",))

    def test_evaluation_counter_increments(self, retrain, owners):
        before = retrain.evaluations()
        retrain((sorted(o.owner_id for o in owners)[0],))
        assert retrain.evaluations() == before + 1

    def test_mismatched_owner_maps_rejected(self, dataset, owners, scorer):
        owner_features = {o.owner_id: o.features for o in owners}
        owner_labels = {o.owner_id: o.labels for o in owners[:-1]}
        with pytest.raises(ValidationError):
            RetrainUtility(owner_features, owner_labels, scorer)


class TestCoalitionModelUtility:
    def test_singleton_coalition_scores_the_member_model(self, scorer, local_models):
        utility = CoalitionModelUtility(local_models, scorer)
        owner = sorted(local_models)[0]
        assert utility((owner,)) == pytest.approx(scorer.score(local_models[owner]))

    def test_coalition_model_is_plain_average(self, scorer, local_models):
        utility = CoalitionModelUtility(local_models, scorer)
        pair = tuple(sorted(local_models)[:2])
        averaged = ModelParameters.mean([local_models[pair[0]], local_models[pair[1]]])
        assert utility(pair) == pytest.approx(scorer.score(averaged))

    def test_empty_coalition_is_zero(self, scorer, local_models):
        assert CoalitionModelUtility(local_models, scorer)(()) == 0.0

    def test_unknown_member_rejected(self, scorer, local_models):
        with pytest.raises(UtilityError):
            CoalitionModelUtility(local_models, scorer)(("ghost",))

    def test_empty_member_map_rejected(self, scorer):
        with pytest.raises(ValidationError):
            CoalitionModelUtility({}, scorer)


class TestCachedUtility:
    def test_caches_by_sorted_coalition(self):
        calls = []

        def utility(coalition):
            calls.append(coalition)
            return float(len(coalition))

        cached = CachedUtility(utility)
        assert cached(("b", "a")) == cached(("a", "b"))
        assert len(calls) == 1

    def test_empty_coalition_uses_empty_value_without_calling_inner(self):
        calls = []
        cached = CachedUtility(lambda s: calls.append(s) or 1.0)
        assert cached(()) == 0.0
        assert calls == []

    def test_evaluations_counts_distinct_coalitions(self):
        cached = CachedUtility(lambda s: 1.0)
        cached(("a",))
        cached(("a",))
        cached(("b",))
        assert cached.evaluations() == 2

    def test_cache_contents_snapshot(self):
        cached = CachedUtility(lambda s: float(len(s)))
        cached(("a", "b"))
        assert cached.cache_contents() == {("a", "b"): 2.0}

    def test_inherits_empty_value_from_utility_function(self, scorer, local_models):
        inner = CoalitionModelUtility(local_models, scorer)
        inner.empty_value = 0.25
        assert CachedUtility(inner)(()) == 0.25
