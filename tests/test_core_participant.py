"""Tests for the Participant (trainer + miner) wrapper (repro.core.participant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.contracts.registry import ParticipantRegistryContract
from repro.blockchain.network import Network
from repro.core.adversary import AdversaryBehavior
from repro.core.participant import Participant
from repro.crypto.dh import DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import SecureAggregator
from repro.exceptions import ProtocolError
from repro.fl.logistic_regression import LogisticRegressionModel


def runtime_factory() -> ContractRuntime:
    runtime = ContractRuntime()
    runtime.register(ParticipantRegistryContract())
    return runtime


@pytest.fixture(scope="module")
def participants(dataset, owners):
    network = Network()
    dh_params = DHParameters.for_testing(bits=64, seed="participant-tests")
    codec = FixedPointCodec()
    built = {}
    for data in owners:
        built[data.owner_id] = Participant(
            data=data,
            n_classes=dataset.n_classes,
            network=network,
            runtime_factory=runtime_factory,
            dh_params=dh_params,
            codec=codec,
            local_epochs=2,
            learning_rate=2.0,
        )
    public_keys = {owner_id: p.public_key for owner_id, p in built.items()}
    for participant in built.values():
        participant.learn_peer_keys(public_keys)
    return built


class TestParticipant:
    def test_registration_transaction_targets_registry(self, participants):
        participant = next(iter(participants.values()))
        tx = participant.registration_transaction(nonce=0)
        assert tx.contract == "registry"
        assert tx.method == "register_participant"
        assert tx.args["public_key"] == participant.public_key

    def test_public_keys_are_distinct(self, participants):
        keys = {p.public_key for p in participants.values()}
        assert len(keys) == len(participants)

    def test_train_local_produces_model_of_right_dimension(self, participants, dataset):
        participant = next(iter(participants.values()))
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        local = participant.train_local(template, round_number=0)
        assert local.dimension == template.dimension

    def test_adversarial_participant_tampering_is_applied(self, dataset, owners):
        network = Network()
        dh_params = DHParameters.for_testing(bits=64, seed="adversary-participant")
        participant = Participant(
            data=owners[0],
            n_classes=dataset.n_classes,
            network=network,
            runtime_factory=runtime_factory,
            dh_params=dh_params,
            codec=FixedPointCodec(),
            adversary=AdversaryBehavior(kind="zero"),
        )
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        assert participant.train_local(template, 0).norm() == 0.0

    def test_masked_updates_within_a_group_aggregate_correctly(self, participants, dataset):
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        owner_ids = sorted(participants)[:2]
        group = list(owner_ids)
        locals_ = {}
        updates = []
        for group_id, owner_id in enumerate(group):
            participant = participants[owner_id]
            locals_[owner_id] = participant.train_local(template, 0)
            tx = participant.masked_update_transaction(locals_[owner_id], 0, group=group, group_id=0, nonce=0)
            assert tx.contract == "fl_training"
            updates.append(tx.args["payload"])

        codec = participants[group[0]].codec
        total = np.zeros_like(updates[0])
        for payload in updates:
            total = codec.add(total, payload)
        decoded = codec.decode_sum(total, n_summands=len(updates)) / len(updates)
        expected = np.mean([locals_[o].to_vector() for o in group], axis=0)
        assert np.allclose(decoded, expected, atol=1e-5)

    def test_masking_for_foreign_group_rejected(self, participants, dataset):
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        owner_ids = sorted(participants)
        participant = participants[owner_ids[0]]
        local = participant.train_local(template, 0)
        with pytest.raises(ProtocolError):
            participant.masked_update_transaction(local, 0, group=owner_ids[1:3], group_id=1, nonce=0)

    def test_masking_without_peer_keys_rejected(self, dataset, owners):
        network = Network()
        dh_params = DHParameters.for_testing(bits=64, seed="no-keys")
        participant = Participant(
            data=owners[0],
            n_classes=dataset.n_classes,
            network=network,
            runtime_factory=runtime_factory,
            dh_params=dh_params,
            codec=FixedPointCodec(),
        )
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        local = participant.train_local(template, 0)
        with pytest.raises(ProtocolError):
            participant.masked_update_transaction(
                local, 0, group=[owners[0].owner_id, "somebody-else"], group_id=0, nonce=0
            )

    def test_evaluate_model_reports_metrics(self, participants, dataset):
        participant = next(iter(participants.values()))
        template = LogisticRegressionModel(dataset.n_features, dataset.n_classes).parameters
        metrics = participant.evaluate_model(template)
        assert set(metrics) == {"accuracy", "loss"}
