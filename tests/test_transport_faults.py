"""Tests for the pluggable transport layer (repro.blockchain.transport).

Covers the deterministic-transport parity pins (chains byte-identical to the
pre-transport runs), the FaultPlan's declarative surface (JSON round-trip,
link wildcards, partition direction semantics), and the seeded determinism of
the fault-injecting transport itself.
"""

from __future__ import annotations

import pytest

from repro.blockchain.network import Network, NetworkStats
from repro.blockchain.transport import (
    DELIVERED,
    DROPPED,
    PARTITIONED,
    TIMEOUT,
    DeterministicTransport,
    FaultInjectingTransport,
    FaultPlan,
    HandlerFailure,
    LinkFault,
    PartitionSpec,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.exceptions import BlockchainError

# Head hashes of the 4-owner/2-round reference run recorded before the
# transport abstraction existed.  The default DeterministicTransport must
# reproduce them byte for byte.
PIN_HEAD_V1 = "c4a289407edceba983a45a138102b3dca855ac649c56f1d379595202c90c4b5e"
PIN_HEAD_V2 = "da52cc64c6070504be12d66a60181278c6ab0b16a1f0f63c98b1538bb49d19ca"


def reference_run(state_root_version: int = 1):
    dataset, owners = make_owner_datasets(n_owners=4, sigma=0.1, n_samples=400, seed=7)
    config = ProtocolConfig(
        n_owners=4, n_groups=2, n_rounds=2, local_epochs=2, permutation_seed=7,
        learning_rate=2.0, state_root_version=state_root_version,
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    protocol.run()
    return protocol


class TestDeterministicTransportParity:
    def test_default_network_uses_deterministic_transport(self):
        net = Network()
        assert isinstance(net.transport, DeterministicTransport)
        assert net.faulty is False

    def test_full_run_head_hash_matches_pre_transport_pin(self):
        protocol = reference_run(state_root_version=1)
        head = protocol.participants["owner-0"].node.chain.head.block_hash
        assert head == PIN_HEAD_V1

    def test_merkle_chain_head_hash_matches_pre_transport_pin(self):
        protocol = reference_run(state_root_version=2)
        head = protocol.participants["owner-0"].node.chain.head.block_hash
        assert head == PIN_HEAD_V2


class TestFaultPlanDeclaration:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=11,
            drop_probability=0.1,
            duplicate_probability=0.05,
            latency_ticks=3,
            timeout_ticks=2,
            partitions=(
                PartitionSpec("split", (("a", "b"), ("c",)), direction="both",
                              start_tick=1, heal_tick=4),
            ),
            links={"a->b": LinkFault(drop_probability=1.0, topics=("tx",))},
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_probabilities_are_validated(self):
        with pytest.raises(BlockchainError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(BlockchainError):
            LinkFault(duplicate_probability=-0.1)

    def test_partition_rejects_overlapping_cells_and_bad_direction(self):
        with pytest.raises(BlockchainError):
            PartitionSpec("bad", (("a",), ("a", "b")))
        with pytest.raises(BlockchainError):
            PartitionSpec("bad", (("a",),), direction="sideways")

    def test_link_fault_resolution_prefers_most_specific_key(self):
        plan = FaultPlan(links={
            "a->b": LinkFault(drop_probability=0.9),
            "a->*": LinkFault(drop_probability=0.5),
            "*->c": LinkFault(drop_probability=0.1),
        })
        assert plan.link_fault("a", "b", "tx").drop_probability == 0.9
        assert plan.link_fault("a", "c", "tx").drop_probability == 0.5
        assert plan.link_fault("x", "c", "tx").drop_probability == 0.1
        assert plan.link_fault("x", "y", "tx") is None

    def test_topic_scoped_link_fault_ignores_other_topics(self):
        plan = FaultPlan(links={"a->b": LinkFault(drop_probability=1.0, topics=("proposal",))})
        assert plan.link_fault("a", "b", "proposal") is not None
        assert plan.link_fault("a", "b", "tx") is None


def fanout_network(transport, nodes=("a", "b", "c", "d")):
    """A network of trivial echo subscribers on one topic."""
    net = Network(transport)
    log = []
    for node in nodes:
        net.join(node)
        net.subscribe(node, "t", lambda sender, payload, node=node: log.append(node) or f"ack-{node}")
    return net, log


class TestPartitionSemantics:
    def test_both_direction_blocks_cross_cell_traffic_only(self):
        spec = PartitionSpec("split", (("a", "b"), ("c",)))
        assert spec.blocks("a", "c") and spec.blocks("c", "a")
        assert not spec.blocks("a", "b")
        # d is in the implicit cell: cut off from both explicit cells.
        assert spec.blocks("a", "d") and spec.blocks("d", "c")

    def test_inbound_eclipse_lets_victim_talk_out(self):
        spec = PartitionSpec("eclipse", (("v",),), direction="inbound")
        assert spec.blocks("a", "v")
        assert not spec.blocks("v", "a")

    def test_outbound_partition_blocks_only_egress(self):
        spec = PartitionSpec("mute", (("v",),), direction="outbound")
        assert spec.blocks("v", "a")
        assert not spec.blocks("a", "v")

    def test_scheduled_partition_window_and_heal(self):
        transport = FaultInjectingTransport(FaultPlan(partitions=(
            PartitionSpec("split", (("a",), ("b",)), start_tick=1, heal_tick=2),
        )))
        net, _ = fanout_network(transport, nodes=("a", "b"))
        report = net.broadcast_detailed("a", "t", 1)  # tick 0: not yet active
        assert report.deliveries["b"].status == DELIVERED
        net.begin_round(0)  # tick 1: active
        report = net.broadcast_detailed("a", "t", 2)
        assert report.deliveries["b"].status == PARTITIONED
        net.begin_round(1)  # tick 2: healed by schedule
        report = net.broadcast_detailed("a", "t", 3)
        assert report.deliveries["b"].status == DELIVERED

    def test_dynamic_partition_and_heal(self):
        transport = FaultInjectingTransport(FaultPlan())
        net, _ = fanout_network(transport, nodes=("a", "b"))
        transport.set_partition(PartitionSpec("split", (("a",), ("b",))))
        assert net.broadcast_detailed("a", "t", 1).deliveries["b"].status == PARTITIONED
        transport.heal("split")
        assert net.broadcast_detailed("a", "t", 2).deliveries["b"].status == DELIVERED


class TestFaultInjection:
    def test_seeded_runs_are_identical(self):
        outcomes = []
        for _ in range(2):
            transport = FaultInjectingTransport(FaultPlan(
                seed=3, drop_probability=0.3, duplicate_probability=0.2, latency_ticks=2,
            ))
            net, log = fanout_network(transport)
            trace = []
            for i in range(20):
                report = net.broadcast_detailed("a", "t", i)
                trace.append({r: (d.status, d.duplicates, d.latency)
                              for r, d in report.deliveries.items()})
            outcomes.append((trace, log))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_diverge(self):
        traces = []
        for seed in (1, 2):
            transport = FaultInjectingTransport(FaultPlan(seed=seed, drop_probability=0.5))
            net, _ = fanout_network(transport)
            traces.append([
                {r: d.status for r, d in net.broadcast_detailed("a", "t", i).deliveries.items()}
                for i in range(20)
            ])
        assert traces[0] != traces[1]

    def test_latency_reorders_deliveries_within_a_broadcast(self):
        transport = FaultInjectingTransport(FaultPlan(
            timeout_ticks=10,
            links={"a->b": LinkFault(latency_ticks=5), "a->c": LinkFault(), "a->d": LinkFault()},
        ))
        net, log = fanout_network(transport)
        reordered = False
        for i in range(30):
            del log[:]
            report = net.broadcast_detailed("a", "t", i)
            assert all(d.status == DELIVERED for d in report.deliveries.values())
            if log != sorted(log):
                reordered = True
        assert reordered, "a latency draw never pushed b behind c/d in 30 broadcasts"

    def test_latency_beyond_timeout_is_recorded_as_timeout_but_handler_ran(self):
        transport = FaultInjectingTransport(FaultPlan(
            timeout_ticks=0, links={"a->b": LinkFault(latency_ticks=1)},
        ))
        net, log = fanout_network(transport, nodes=("a", "b"))
        saw_timeout = False
        for i in range(30):
            del log[:]
            report = net.broadcast_detailed("a", "t", i)
            delivery = report.deliveries["b"]
            assert log == ["b"], "the handler must run even when the response is lost"
            if delivery.status == TIMEOUT:
                saw_timeout = True
                assert delivery.result is None
        assert saw_timeout

    def test_forced_response_timeout_runs_handler_without_result(self):
        transport = FaultInjectingTransport(FaultPlan(
            links={"a->b": LinkFault(response_timeout=True)},
        ))
        net, log = fanout_network(transport, nodes=("a", "b"))
        report = net.broadcast_detailed("a", "t", 0)
        assert report.deliveries["b"].status == TIMEOUT
        assert log == ["b"]

    def test_duplicates_invoke_handler_twice_and_are_counted(self):
        transport = FaultInjectingTransport(FaultPlan(
            links={"a->b": LinkFault(duplicate_probability=1.0)},
        ))
        net, log = fanout_network(transport, nodes=("a", "b"))
        report = net.broadcast_detailed("a", "t", 0)
        assert report.deliveries["b"].status == DELIVERED
        assert report.deliveries["b"].duplicates == 1
        assert log == ["b", "b"]
        assert net.stats.delivery_by_topic["t"]["duplicated"] == 1

    def test_certain_drop_is_reported_and_counted(self):
        transport = FaultInjectingTransport(FaultPlan(drop_probability=1.0))
        net, log = fanout_network(transport, nodes=("a", "b"))
        report = net.broadcast_detailed("a", "t", 0)
        assert report.deliveries["b"].status == DROPPED
        assert report.undelivered() == ["b"]
        assert log == []
        assert net.stats.delivery_by_topic["t"]["dropped"] == 1


class TestNetworkDeliveryAccounting:
    def test_broadcast_captures_handler_errors_per_recipient(self):
        # Regression: a raising handler used to abort the delivery loop,
        # leaving later recipients skipped with no record of the failure.
        net = Network()
        received = []
        for node in ("a", "b", "c", "d"):
            net.join(node)
        net.subscribe("b", "t", lambda s, p: received.append("b") or "ack-b")
        net.subscribe("c", "t", lambda s, p: (_ for _ in ()).throw(RuntimeError("boom")))
        net.subscribe("d", "t", lambda s, p: received.append("d") or "ack-d")
        results = net.broadcast("a", "t", 1)
        assert received == ["b", "d"], "recipients after the failing handler must still deliver"
        assert results["b"] == "ack-b" and results["d"] == "ack-d"
        failure = results["c"]
        assert isinstance(failure, HandlerFailure)
        assert failure.recipient == "c" and "boom" in failure.error
        assert net.stats.delivery_by_topic["t"]["errors"] == 1

    def test_send_still_raises_handler_exceptions(self):
        net = Network()
        net.join("a")
        net.join("b")
        net.subscribe("b", "t", lambda s, p: (_ for _ in ()).throw(ValueError("bad")))
        with pytest.raises(ValueError, match="bad"):
            net.send("a", "b", "t", 1)

    def test_send_raises_blockchain_error_on_undelivered(self):
        net = Network(FaultInjectingTransport(FaultPlan(drop_probability=1.0)))
        net.join("a")
        net.join("b")
        net.subscribe("b", "t", lambda s, p: "ack")
        with pytest.raises(BlockchainError, match="not delivered"):
            net.send("a", "b", "t", 1)

    def test_stats_distinguish_attempted_and_delivered(self):
        net = Network(FaultInjectingTransport(FaultPlan(seed=1, drop_probability=0.5)))
        for node in ("a", "b", "c"):
            net.join(node)
            net.subscribe(node, "t", lambda s, p: None)
        for i in range(10):
            net.broadcast("a", "t", i)
        counters = net.stats.delivery_report()["by_topic"]["t"]
        assert counters["attempted"] == 20
        assert counters["delivered"] + counters["dropped"] == 20
        assert 0 < counters["dropped"] < 20
        assert net.stats.as_dict()["delivery"]["totals"]["attempted"] == 20

    def test_legacy_stats_record_shape_is_preserved(self):
        stats = NetworkStats()
        stats.record("tx", payload_bytes=10, recipients=3)
        payload = stats.as_dict()
        assert payload["messages_sent"] == 3
        assert payload["bytes_sent"] == 30
        assert payload["bytes_by_topic"] == {"tx": 30}
        assert payload["delivery"]["totals"]["attempted"] == 3
