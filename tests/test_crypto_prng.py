"""Tests for the HMAC-DRBG and mask expansion (repro.crypto.prng)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prng import HmacDrbg, expand_mask
from repro.exceptions import MaskingError, ValidationError


class TestHmacDrbg:
    def test_deterministic_stream(self):
        assert HmacDrbg(b"key").generate(64) == HmacDrbg(b"key").generate(64)

    def test_different_keys_different_streams(self):
        assert HmacDrbg(b"key-a").generate(32) != HmacDrbg(b"key-b").generate(32)

    def test_personalization_changes_stream(self):
        assert HmacDrbg(b"key", b"round:1").generate(32) != HmacDrbg(b"key", b"round:2").generate(32)

    def test_stream_is_contiguous(self):
        whole = HmacDrbg(b"key").generate(96)
        drbg = HmacDrbg(b"key")
        pieces = drbg.generate(32) + drbg.generate(64)
        assert whole == pieces

    def test_requested_length_is_exact(self):
        assert len(HmacDrbg(b"key").generate(17)) == 17

    def test_zero_bytes(self):
        assert HmacDrbg(b"key").generate(0) == b""

    def test_uint64_array_shape_and_dtype(self):
        arr = HmacDrbg(b"key").uint64_array(10)
        assert arr.shape == (10,)
        assert arr.dtype == np.uint64

    def test_rejects_empty_key(self):
        with pytest.raises(ValidationError):
            HmacDrbg(b"")

    def test_rejects_negative_length(self):
        with pytest.raises(ValidationError):
            HmacDrbg(b"key").generate(-1)


class TestExpandMask:
    def test_deterministic(self):
        a = expand_mask(b"\x07" * 32, 3, 100, 2**64)
        b = expand_mask(b"\x07" * 32, 3, 100, 2**64)
        assert np.array_equal(a, b)

    def test_round_dependence(self):
        a = expand_mask(b"\x07" * 32, 3, 100, 2**64)
        b = expand_mask(b"\x07" * 32, 4, 100, 2**64)
        assert not np.array_equal(a, b)

    def test_secret_dependence(self):
        a = expand_mask(b"\x07" * 32, 3, 100, 2**64)
        b = expand_mask(b"\x08" * 32, 3, 100, 2**64)
        assert not np.array_equal(a, b)

    def test_length_zero(self):
        assert expand_mask(b"\x07" * 32, 0, 0, 2**64).size == 0

    def test_respects_modulus(self):
        mask = expand_mask(b"\x07" * 32, 0, 1000, 2**32)
        assert np.all(mask < 2**32)

    def test_rejects_bad_modulus(self):
        with pytest.raises(MaskingError):
            expand_mask(b"\x07" * 32, 0, 10, 1)

    def test_rejects_negative_round(self):
        with pytest.raises(ValidationError):
            expand_mask(b"\x07" * 32, -1, 10, 2**64)

    def test_rejects_negative_length(self):
        with pytest.raises(ValidationError):
            expand_mask(b"\x07" * 32, 0, -5, 2**64)

    def test_values_look_uniform(self):
        # Coarse sanity check: the mean of 64-bit uniform values should be near 2**63.
        mask = expand_mask(b"\x07" * 32, 0, 5000, 2**64).astype(np.float64)
        assert abs(mask.mean() / 2**63 - 1.0) < 0.05

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=128))
    def test_property_deterministic_for_any_round_and_length(self, round_number, length):
        a = expand_mask(b"\x42" * 32, round_number, length, 2**64)
        b = expand_mask(b"\x42" * 32, round_number, length, 2**64)
        assert np.array_equal(a, b)
        assert a.size == length


class TestChunkedGenerationParity:
    """The chunked generator must reproduce the scalar HMAC counter stream exactly."""

    @staticmethod
    def _reference_stream(key, personalization, n_bytes):
        # The pre-chunking implementation: one hmac.new per 32-byte block,
        # appended with bytearray.extend.  Kept verbatim as the parity oracle.
        import hashlib
        import hmac

        derived = hmac.new(bytes(key), b"seed" + bytes(personalization), hashlib.sha256).digest()
        out = bytearray()
        counter = 0
        while len(out) < n_bytes:
            out.extend(hmac.new(derived, counter.to_bytes(8, "big"), hashlib.sha256).digest())
            counter += 1
        return bytes(out[:n_bytes])

    @pytest.mark.parametrize("n_bytes", [0, 1, 31, 32, 33, 1024, 4096 * 32, 4096 * 32 + 17])
    def test_stream_matches_reference(self, n_bytes):
        assert HmacDrbg(b"key", b"round:9").generate(n_bytes) == self._reference_stream(
            b"key", b"round:9", n_bytes
        )

    def test_interleaved_requests_match_stateful_reference(self):
        # Partial blocks discard their tail (in both implementations), so the
        # comparison replays the same call sequence against a scalar reference.
        import hashlib
        import hmac

        derived = hmac.new(b"key", b"seed", hashlib.sha256).digest()
        counter = 0
        drbg = HmacDrbg(b"key")
        for n_bytes in (5, 64, 4096 * 32 + 3, 7, 32):
            out = bytearray()
            while len(out) < n_bytes:
                out.extend(hmac.new(derived, counter.to_bytes(8, "big"), hashlib.sha256).digest())
                counter += 1
            assert drbg.generate(n_bytes) == bytes(out[:n_bytes])

    def test_counter_advances_per_block_not_per_byte(self):
        drbg = HmacDrbg(b"key")
        drbg.generate(17)  # consumes one whole 32-byte block
        assert drbg._counter == 1
        drbg.generate(33)  # consumes two more
        assert drbg._counter == 3
