#!/usr/bin/env python3
"""Collapse pytest-benchmark JSON dumps into one canonical trajectory artifact.

The CI benchmark job writes one ``bench-artifacts/bench_*.json`` per suite in
pytest-benchmark's verbose format (machine info, full stats, nested
``extra_info``).  This script distils them into a single small
``BENCH_shapley.json`` keyed by benchmark name, carrying only what a
perf-trajectory comparison needs: the commit, the date, wall-clock per
benchmark, and each suite's ``extra_info`` payload (speedups, mask counts,
estimator error).  Successive commits' artifacts can then be diffed or plotted
directly without re-parsing the pytest-benchmark schema.

Stdlib-only, so it runs in any job without the test toolchain.

Usage::

    python scripts/export_bench_trajectory.py [bench-artifacts] [BENCH_shapley.json]

Exit code 0 on success, 1 when the input directory has no benchmark dumps.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_VERSION = 1


def summarise_run(raw: dict) -> list[dict]:
    """One trajectory entry per benchmark in a pytest-benchmark dump."""
    entries = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        entries.append(
            {
                "name": bench.get("name"),
                "fullname": bench.get("fullname"),
                "mean_s": stats.get("mean"),
                "min_s": stats.get("min"),
                "rounds": stats.get("rounds"),
                "extra_info": bench.get("extra_info", {}),
            }
        )
    return entries


def build_trajectory(artifact_dir: Path) -> dict:
    dumps = sorted(artifact_dir.glob("bench_*.json"))
    benchmarks: list[dict] = []
    commit_info: dict = {}
    datetime_stamp: str | None = None
    for dump in dumps:
        raw = json.loads(dump.read_text())
        benchmarks.extend(summarise_run(raw))
        # Every dump in one CI run shares a commit; keep the first seen.
        commit_info = commit_info or raw.get("commit_info", {})
        datetime_stamp = datetime_stamp or raw.get("datetime")
    return {
        "schema_version": SCHEMA_VERSION,
        "commit": commit_info.get("id"),
        "branch": commit_info.get("branch"),
        "datetime": datetime_stamp,
        "suites": [dump.name for dump in dumps],
        "benchmarks": benchmarks,
    }


def main(argv: list[str]) -> int:
    artifact_dir = Path(argv[1]) if len(argv) > 1 else Path("bench-artifacts")
    output = Path(argv[2]) if len(argv) > 2 else artifact_dir / "BENCH_shapley.json"
    trajectory = build_trajectory(artifact_dir)
    if not trajectory["benchmarks"]:
        print(f"error: no bench_*.json dumps under {artifact_dir}", file=sys.stderr)
        return 1
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {output} — {len(trajectory['benchmarks'])} benchmark(s) "
        f"from {len(trajectory['suites'])} suite(s) at commit {trajectory['commit']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
