#!/usr/bin/env python3
"""Offline markdown link checker for the repo's documentation surface.

Validates every inline markdown link (``[text](target)``) in the given files
or directories:

* relative file links must resolve to an existing file or directory
  (relative to the markdown file containing them);
* ``#anchor`` fragments — in-page or on a relative file link — must match a
  heading in the target document (GitHub-style slugs);
* ``http(s)``/``mailto`` links are format-checked only, so the check runs
  offline and never flakes on a third-party outage.

Exit code 0 when every link resolves, 1 otherwise (each broken link is
reported as ``file:line: message``).  Used by the CI docs job and by
``tests/test_docs.py``, so a dead link fails the build in both places.

Usage::

    python scripts/check_markdown_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images, skipping fenced code blocks handled separately.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading (close-enough approximation)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())  # drop code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # inline links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {target}")
    return files


def strip_code_blocks(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks so example links are not validated."""
    cleaned, in_fence = [], False
    for line in lines:
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            cleaned.append("")
            continue
        cleaned.append("" if in_fence else line)
    return cleaned


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        slugs: set[str] = set()
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        for line in strip_code_blocks(lines):
            match = HEADING_RE.match(line)
            if match:
                slugs.add(github_slug(match.group(1)))
        cache[path] = slugs
    return cache[path]


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    lines = strip_code_blocks(path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            if not base:  # in-page anchor
                if fragment and github_slug(fragment) not in anchors_of(path, anchor_cache):
                    errors.append(f"{path}:{lineno}: missing in-page anchor #{fragment}")
                continue
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link {target} -> {resolved}")
                continue
            if fragment and resolved.suffix == ".md":
                if github_slug(fragment) not in anchors_of(resolved, anchor_cache):
                    errors.append(
                        f"{path}:{lineno}: anchor #{fragment} not found in {base}"
                    )
    return errors


def main(argv: list[str]) -> int:
    targets = argv or ["README.md", "docs"]
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    files = markdown_files(targets)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    for path in files:
        errors.extend(check_file(path, anchor_cache))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
