"""Dynamic membership: owners join and leave the cohort on chain, mid-run.

The registry contract models membership as *cohort epochs*: a
``request_join`` / ``request_leave`` transaction schedules a change that takes
effect at the next round boundary, and every miner derives the active cohort
of any round purely from chain state.  This example runs the acceptance
scenario of the feature:

1. four genesis owners set up the protocol for 5 rounds;
2. ``owner-4`` broadcasts a ``request_join`` in round 1's block and enters the
   cohort at round 2 (its Diffie–Hellman key is registered on chain, so every
   peer re-derives pairwise masks against it before its first masked update);
3. ``owner-1`` broadcasts a ``request_leave`` in round 3's block and exits at
   round 4 (it keeps mining — membership governs the training cohort, not the
   replica set);
4. settlement happens *per epoch*: the reward pool splits across the three
   cohort epochs by Shapley-value mass, so the joiner earns nothing for the
   rounds before it arrived and the leaver nothing for the round it sat out;
5. the transparency audit re-derives every cohort, contribution, and epoch
   settlement from raw chain data, and a fresh miner replay reproduces the
   chain byte for byte.

Run with:  python examples/dynamic_membership.py
"""

from __future__ import annotations

from repro.core import (
    BlockchainFLProtocol,
    ChurnScenario,
    ProtocolConfig,
    RoundScheduler,
    audit_chain,
)
from repro.datasets import make_owner_datasets


def main() -> None:
    # 1. Five dataset shards: four genesis owners plus one later joiner.
    dataset, owners = make_owner_datasets(n_owners=5, sigma=0.15, n_samples=1200, seed=17)
    genesis, joiner = owners[:4], owners[4]
    leaver = sorted(o.owner_id for o in genesis)[1]
    print(f"genesis cohort: {', '.join(o.owner_id for o in genesis)}")
    print(f"joining at round 2: {joiner.owner_id};  leaving at round 4: {leaver}")

    config = ProtocolConfig(
        n_owners=len(genesis),
        n_groups=2,
        n_rounds=5,
        local_epochs=3,
        learning_rate=2.0,
        reward_pool=1000.0,
        permutation_seed=13,
    )
    protocol = BlockchainFLProtocol(
        owner_data=genesis,
        validation_features=dataset.test_features,
        validation_labels=dataset.test_labels,
        n_classes=dataset.n_classes,
        config=config,
    )

    # 2-3. The churn scenario emits the actual registry transactions.
    scenario = ChurnScenario(joins=[(joiner, 2)], leaves=[(leaver, 4)])
    result = RoundScheduler(protocol, scenario).run()

    print("\nper-round cohorts (derived from chain state by every miner):")
    for record in result.rounds:
        cohort = sorted({owner for group in record.groups for owner in group})
        print(f"  round {record.round_number}: {', '.join(cohort)}  "
              f"(global utility {record.global_utility:.4f})")

    # 4. Per-epoch settlement: pool split by each epoch's SV mass.
    print("\ncohort epochs and settlement:")
    for epoch in result.epoch_settlements:
        print(f"  epoch {epoch['epoch']} (rounds {epoch['start']}..{epoch['end'] - 1}): "
              f"{len(epoch['cohort'])} owners, SV mass {epoch['sv_mass']:.4f}, "
              f"pool {epoch['reward_pool']:.2f}")
        for owner, payout in sorted(epoch["payouts"].items()):
            print(f"    {owner}: {payout:.2f}")

    print("\naccumulated contributions and final balances:")
    for owner in sorted(result.total_contributions):
        print(f"  {owner}: v = {result.total_contributions[owner]:+.4f}, "
              f"reward = {result.reward_balances.get(owner, 0.0):.2f}")

    # 5. Transparency: audit epoch by epoch, then replay the chain from genesis.
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
    print(f"\ntransparency audit: {'PASSED' if report.passed else 'FAILED'} "
          f"(rounds {report.rounds_checked}, epochs {report.epochs_checked})")
    replayed = chain.replay()
    identical = replayed.state.state_root() == chain.state.state_root()
    print(f"miner replay reproduces the chain byte for byte: {identical}")
    if not report.passed or not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
