"""Adversarial participants and what GroupSV does to their contributions.

Future work item 2 of the paper asks how adversarial participants affect the
Shapley-value calculation.  This example runs the full on-chain protocol three
times on identical data:

* an all-honest baseline;
* a run where one owner free-rides (submits pure noise instead of training);
* a run where one owner mounts a scaling (model-boosting) attack.

It then compares the adversary's evaluated contribution and token payout with
its honest counterfactual, and shows the collateral effect on the global model.
It also demonstrates two defence layers:

* the *pipeline* defence — a submission that lies about its group assignment
  is rejected at gossip-level validation before it can occupy a block slot
  (scenario API: :class:`~repro.core.pipeline.AdversarialSubmissionScenario`);
* the *consensus* defence — a Byzantine miner that votes to reject every
  block cannot stall the protocol while it is a minority.

Run with:  python examples/adversarial_participants.py
"""

from __future__ import annotations

from repro.core import (
    AdversarialSubmissionScenario,
    BlockchainFLProtocol,
    ProtocolConfig,
    RoundScheduler,
)
from repro.core.adversary import AdversaryBehavior
from repro.datasets import make_owner_datasets


def run_protocol(owners, dataset, adversaries=None, byzantine=(), scenario=None):
    """One pipeline run with optional adversaries, Byzantine miners, or a scenario."""
    config = ProtocolConfig(
        n_owners=len(owners),
        n_groups=len(owners),  # singleton groups: per-owner resolution, worst case for an attacker
        n_rounds=2,
        local_epochs=5,
        learning_rate=2.0,
        reward_pool=1000.0,
        byzantine_miners=tuple(byzantine),
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config,
        adversaries=adversaries,
    )
    scheduler = RoundScheduler(protocol, scenario)
    return scheduler.run(), scheduler


def main() -> None:
    dataset, owners = make_owner_datasets(n_owners=5, sigma=0.1, n_samples=1200, seed=17)
    attacker = owners[1].owner_id
    print(f"owners: {[o.owner_id for o in owners]}; the adversary in tampered runs is {attacker}\n")

    honest, _ = run_protocol(owners, dataset)
    free_rider, _ = run_protocol(
        owners, dataset, adversaries={attacker: AdversaryBehavior(kind="noise", magnitude=3.0, seed=5)}
    )
    booster, _ = run_protocol(
        owners, dataset, adversaries={attacker: AdversaryBehavior(kind="scale", magnitude=20.0)}
    )

    def summarize(label, result):
        print(f"--- {label} ---")
        print(f"  final global utility: {result.rounds[-1].global_utility:.4f}")
        for owner_id in sorted(result.total_contributions):
            marker = "  <-- adversary" if owner_id == attacker and label != "all honest" else ""
            print(f"  {owner_id}: contribution = {result.total_contributions[owner_id]:+.4f}, "
                  f"reward = {result.reward_balances[owner_id]:7.2f}{marker}")
        print()

    summarize("all honest", honest)
    summarize("free-rider (noise update)", free_rider)
    summarize("model-boosting (x20 scale)", booster)

    print("adversary's contribution, honest vs attacks:")
    print(f"  honest       : {honest.total_contributions[attacker]:+.4f}")
    print(f"  free-rider   : {free_rider.total_contributions[attacker]:+.4f}")
    print(f"  booster      : {booster.total_contributions[attacker]:+.4f}")
    print("\ncollateral damage to the shared model (final utility):")
    print(f"  honest       : {honest.rounds[-1].global_utility:.4f}")
    print(f"  free-rider   : {free_rider.rounds[-1].global_utility:.4f}")
    print(f"  booster      : {booster.rounds[-1].global_utility:.4f}")

    # Pipeline-layer defence: a submission claiming the wrong group is dropped
    # by gossip validation before it reaches a block; the attacker, unable to
    # place the lie, falls back to an honest submission — the chain ends up
    # identical to an all-honest run and the rejection is recorded off chain.
    claim_run, scheduler = run_protocol(
        owners, dataset, scenario=AdversarialSubmissionScenario(attacker)
    )
    rejections = [r for ctx in scheduler.contexts for r in ctx.rejections]
    print("\ngroup-claim attack: "
          f"{len(rejections)} tampered submission(s) rejected at gossip validation")
    for rejection in rejections:
        print(f"  round {rejection.round_number}: {rejection.reason}")
    same = claim_run.total_contributions == honest.total_contributions
    print(f"  contributions identical to the all-honest run: {same}")

    # Consensus-layer defence: a minority Byzantine miner cannot stall the chain.
    byzantine_run, _ = run_protocol(owners, dataset, byzantine=[owners[-1].owner_id])
    verdicts = [record.consensus.accepted for record in byzantine_run.rounds]
    rejections = [record.consensus.reject_count for record in byzantine_run.rounds]
    print("\nByzantine miner run: blocks accepted per round "
          f"{verdicts}, rejecting votes per round {rejections} (protocol still completed)")


if __name__ == "__main__":
    main()
