"""Cross-silo scenario: competing banks with heterogeneous (non-IID) data.

The paper's motivating setting is cross-silo FL among mutually untrusted
organizations (e.g. banks).  This example stresses two things the quickstart
does not:

* **non-IID data** — each bank's portfolio is skewed toward different classes
  (Dirichlet label partition), on top of a data-quality gradient;
* **reward fairness under heterogeneity** — contributions (and therefore token
  payouts) should reflect both how much signal a bank brings and how redundant
  that signal is with the other banks';
* **operational flakiness** — one bank's gateway drops mid-round and another
  is consistently slow; the staged pipeline absorbs both (scenario hooks +
  the submission barrier) without changing a single committed block.

Run with:  python examples/cross_silo_banks.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    BlockchainFLProtocol,
    ComposedScenario,
    DropoutScenario,
    ProtocolConfig,
    RoundScheduler,
    StragglerScenario,
)
from repro.datasets import load_digits, train_test_split
from repro.datasets.loader import OwnerDataset
from repro.datasets.noise import gaussian_noise
from repro.fl.partition import dirichlet_partition

BANKS = ["bank-alpha", "bank-beta", "bank-gamma", "bank-delta", "bank-epsilon", "bank-zeta"]


def build_bank_datasets(seed: int = 3):
    """Non-IID, quality-skewed per-bank datasets plus a public validation set."""
    features, labels = load_digits(n_samples=2400, seed=seed, normalized=True)
    train_x, train_y, test_x, test_y = train_test_split(features, labels, test_fraction=0.2, seed=seed)

    # Label-skewed split: each bank over-represents a few digit classes.
    parts = dirichlet_partition(train_y, n_owners=len(BANKS), alpha=0.8, seed=seed, min_samples_per_owner=60)

    banks = []
    for rank, (bank, indices) in enumerate(zip(BANKS, parts)):
        bank_features = train_x[indices]
        # Quality gradient: later banks digitized their records more sloppily.
        noise_sigma = 0.08 * rank
        bank_features = gaussian_noise(bank_features, noise_sigma, seed=seed + rank)
        banks.append(
            OwnerDataset(owner_id=bank, features=bank_features, labels=train_y[indices], noise_sigma=noise_sigma)
        )
    return banks, test_x, test_y


def main() -> None:
    banks, test_x, test_y = build_bank_datasets()
    print("bank portfolios (non-IID, quality gradient):")
    for bank in banks:
        class_counts = np.bincount(bank.labels, minlength=10)
        top_classes = np.argsort(class_counts)[::-1][:3]
        print(f"  {bank.owner_id}: {bank.n_samples:4d} records, noise sigma = {bank.noise_sigma:.2f}, "
              f"dominant digits = {list(map(int, top_classes))}")

    config = ProtocolConfig(
        n_owners=len(banks),
        n_groups=3,
        n_rounds=4,
        local_epochs=5,
        learning_rate=2.0,
        reward_pool=10_000.0,
        permutation_seed=41,
    )
    protocol = BlockchainFLProtocol(banks, test_x, test_y, n_classes=10, config=config)
    # Real consortia are operationally messy: bank-gamma's gateway drops out
    # mid-round 1 (and reconnects), bank-zeta's batch jobs are always a tick
    # late.  Submissions only reach the mempool at the block-proposal barrier,
    # so the committed chain is identical to an undisturbed run.
    flaky = ComposedScenario([
        DropoutScenario("bank-gamma", round_number=1, offline_ticks=2),
        StragglerScenario("bank-zeta", delay_ticks=1),
    ])
    scheduler = RoundScheduler(protocol, flaky)
    result = scheduler.run()

    waits = {ctx.round_number: ctx.ticks_waited for ctx in scheduler.contexts}
    print(f"\nconnectivity hiccups absorbed by the pipeline (ticks waited per round): {waits}")

    print("\nfederated model utility per round:")
    for record in result.rounds:
        print(f"  round {record.round_number}: test accuracy = {record.global_utility:.4f}")

    print("\ncontribution ranking and token payouts:")
    ranked = sorted(result.total_contributions, key=result.total_contributions.get, reverse=True)
    for bank_id in ranked:
        sigma = next(b.noise_sigma for b in banks if b.owner_id == bank_id)
        print(f"  {bank_id}: contribution = {result.total_contributions[bank_id]:+.4f}, "
              f"payout = {result.reward_balances[bank_id]:9.2f} tokens  (noise sigma = {sigma:.2f})")

    print("\nper-round contribution series (how the ranking stabilizes):")
    series = result.contributions_per_round()
    for bank_id in ranked:
        values = ", ".join(f"{value:+.4f}" for value in series[bank_id])
        print(f"  {bank_id}: [{values}]")


if __name__ == "__main__":
    main()
