"""The group-count trade-off: privacy vs contribution resolution vs cost.

Section IV.B of the paper discusses how the number of groups m tunes the
framework between two extremes:

* m = n — every owner forms its own "group"; contributions have per-owner
  resolution but each owner's exact model is revealed on chain;
* m = 1 — one big group; only the fully aggregated model is revealed (best
  privacy) but every owner receives the same contribution (no resolution).

This example quantifies that trade-off on one round of local models: for every
m it reports the (n/m)-anonymity position, the cosine similarity of GroupSV to
the native (ground-truth-style) SV over the same local models, and the number
of coalition evaluations the on-chain contract would have to perform.

Run with:  python examples/privacy_resolution_tradeoff.py
"""

from __future__ import annotations

from repro.analysis import sweep_group_counts
from repro.datasets import make_owner_datasets
from repro.fl import DataOwner, FederatedTrainer, TrainingConfig
from repro.shapley import AccuracyUtility, CoalitionModelUtility, native_shapley


def main() -> None:
    dataset, owners = make_owner_datasets(n_owners=9, sigma=0.15, n_samples=2000, seed=9)
    scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)

    # One round of local training gives the local models GroupSV works from.
    clients = [
        DataOwner(o.owner_id, o.features, o.labels, dataset.n_classes, local_epochs=10, learning_rate=2.0)
        for o in owners
    ]
    trainer = FederatedTrainer(
        clients, dataset.n_features, dataset.n_classes,
        TrainingConfig(n_rounds=1, local_epochs=10, learning_rate=2.0),
    )
    record = trainer.run_round(trainer.initial_parameters(), 0)
    local_models = {update.owner_id: update.parameters for update in record.updates}

    # Reference: native SV over the same local models (model-aggregation utility).
    ground_truth = native_shapley(sorted(local_models), CoalitionModelUtility(local_models, scorer))

    points = sweep_group_counts(local_models, ground_truth, scorer, permutation_seed=13)

    header = f"{'m':>3} | {'min anonymity':>13} | {'resolution':>10} | {'cosine sim':>10} | {'rank corr':>9} | {'coalitions':>10} | {'runtime s':>9}"
    print("privacy / resolution / cost trade-off over the group count m")
    print(header)
    print("-" * len(header))
    for point in points:
        print(
            f"{point.n_groups:>3} | {point.min_anonymity:>13} | {point.resolution:>10.2f} | "
            f"{point.cosine_to_ground_truth:>10.4f} | {point.rank_correlation:>9.4f} | "
            f"{point.coalition_evaluations:>10} | {point.runtime_seconds:>9.3f}"
        )

    print("\nreading the table:")
    print("  - smaller m  -> larger anonymity sets (more privacy), coarser contributions")
    print("  - larger m   -> per-owner resolution, but each owner's model average is more exposed")
    print("  - coalition evaluations grow as 2^m, which is the on-chain cost driver")


if __name__ == "__main__":
    main()
