"""Quickstart: run the full blockchain FL + contribution-evaluation protocol.

This walks through the paper's pipeline end to end on a small instance:

1. build the handwritten-digits setup with 5 data owners of decreasing data
   quality (owner-0 clean, owner-4 noisiest);
2. run the blockchain protocol through the staged round pipeline — a
   :class:`~repro.core.pipeline.RoundScheduler` drives
   Setup -> LocalTraining -> Masking/Submission -> SecureAggregation ->
   Evaluation -> BlockProposal per round and a final Settlement, with
   secure-aggregated FedAvg rounds, on-chain GroupSV contribution evaluation,
   and a reward distribution;
3. audit the chain: independently recompute every published contribution from
   raw chain data, which is the transparency guarantee of the framework.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import BlockchainFLProtocol, ProtocolConfig, RoundScheduler, audit_chain
from repro.datasets import make_owner_datasets


def main() -> None:
    # 1. Data: 5 owners, Gaussian noise N(0, (sigma * rank)^2) degrades quality.
    dataset, owners = make_owner_datasets(n_owners=5, sigma=0.15, n_samples=1500, seed=7)
    print(f"dataset: {dataset.n_train} train / {dataset.n_test} test samples, "
          f"{dataset.n_features} features, {dataset.n_classes} classes")
    for owner in owners:
        print(f"  {owner.owner_id}: {owner.n_samples} samples, noise sigma = {owner.noise_sigma:.2f}")

    # 2. Protocol: 3 groups, 3 rounds, every owner is both trainer and miner.
    config = ProtocolConfig(
        n_owners=len(owners),
        n_groups=3,
        n_rounds=3,
        local_epochs=5,
        learning_rate=2.0,
        reward_pool=1000.0,
    )
    protocol = BlockchainFLProtocol(
        owner_data=owners,
        validation_features=dataset.test_features,
        validation_labels=dataset.test_labels,
        n_classes=dataset.n_classes,
        config=config,
    )
    # protocol.run() would do the same; the explicit scheduler keeps the
    # per-round contexts around and accepts Scenario hooks (dropout,
    # stragglers, adversary injection, late joins — see repro.core.pipeline).
    scheduler = RoundScheduler(protocol)
    result = scheduler.run()
    print(f"\npipeline stages per round: {[stage.name for stage in scheduler.round_stages]}")

    print("\n--- per-round global model utility (test accuracy) ---")
    for record in result.rounds:
        print(f"  round {record.round_number}: utility = {record.global_utility:.4f}, "
              f"groups = {[list(g) for g in record.groups]}")

    print("\n--- accumulated contributions (GroupSV) and rewards ---")
    ranked = sorted(result.total_contributions, key=result.total_contributions.get, reverse=True)
    for owner_id in ranked:
        print(f"  {owner_id}: contribution = {result.total_contributions[owner_id]:+.4f}, "
              f"reward = {result.reward_balances[owner_id]:8.2f} tokens")

    print("\n--- chain statistics ---")
    print(f"  blocks: {result.chain_height}, transactions: {result.total_transactions}, "
          f"abstract gas: {result.total_gas}")
    print(f"  network: {result.network_stats['messages_sent']} messages, "
          f"{result.network_stats['bytes_sent']} bytes")

    # 3. Transparency: anyone holding the chain can re-derive every contribution.
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    report = audit_chain(chain, dataset.test_features, dataset.test_labels, dataset.n_classes)
    print(f"\naudit passed: {report.passed} (rounds checked: {report.rounds_checked})")


if __name__ == "__main__":
    main()
