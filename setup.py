"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments where the ``wheel`` package (needed by the PEP 517 editable
build path) is unavailable: pip falls back to the legacy ``setup.py develop``
route in that case.
"""

from setuptools import setup

setup()
