"""Vectorized bitmask Shapley engine.

The legacy Shapley layer is scalar: :func:`repro.shapley.native.exact_shapley_from_utilities`
re-enumerates every subset per player (O(n·2^n) Python tuple work) and
:class:`repro.shapley.utility.CoalitionModelUtility` rebuilds a fresh model per
coalition.  This module replaces all of that with NumPy over an integer-bitmask
coalition encoding:

* **Bitmask layout** — the n players are sorted; bit ``i`` of a coalition's
  index marks the presence of the i-th sorted player.  The full utility table
  is then a flat ``(2^n,)`` float vector indexed by mask, with ``u[0]`` the
  empty-coalition utility.
* **Subset-sum DP** — :func:`subset_sums` turns an ``(m, d)`` matrix of member
  parameter vectors into the ``(2^m, d)`` matrix of coalition sums in m
  vectorized halving steps.  Bits are processed in ascending order, so each
  row accumulates its members exactly as the sequential
  ``ModelParameters.mean`` fold over the sorted coalition does — the results
  are bit-for-bit identical, not merely close.
* **Batched scoring** — :meth:`repro.shapley.utility.AccuracyUtility.score_batch`
  evaluates every coalition model with a single einsum/argmax instead of
  2^m separate model instantiations and softmax passes.
* **Single-pass assembly** — :func:`exact_shapley_from_utility_vector` walks
  the utility vector once with precomputed ``1/(n·C(n-1, s))`` weight tables
  (O(2^n) vectorized work instead of O(n·2^n) Python loops).

The tuple-keyed APIs in :mod:`repro.shapley.native` and
:mod:`repro.shapley.group` remain thin adapters over these kernels, so the
on-chain contribution contract and every existing caller keep working.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from math import comb
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ShapleyError, ValidationError

# 2^24 utility slots (128 MB of float64) is the largest game the vectorized
# tables are allowed to materialize; beyond that exact SV is infeasible anyway.
MAX_PLAYERS = 24

# The (2^m, d) coalition-model matrix is capped at this many float64 elements
# (~2 GB); larger games must use the scalar per-coalition path, which is slow
# but constant-memory.
MAX_MODEL_MATRIX_ELEMENTS = 1 << 28

# Coalition models are scored in row chunks of this size so the batched
# scorer's (n_samples, chunk, n_classes) logits tensor stays bounded no
# matter how many coalitions the game has.
SCORE_CHUNK_ROWS = 4096


def _check_n_players(n: int) -> int:
    n = int(n)
    if n < 1:
        raise ShapleyError("the bitmask engine requires at least one player")
    if n > MAX_PLAYERS:
        raise ShapleyError(
            f"exact SV over {n} players needs 2^{n} coalition slots; "
            f"the engine caps at {MAX_PLAYERS} players"
        )
    return n


# ----------------------------------------------------------------------
# Bitmask <-> tuple adapters
# ----------------------------------------------------------------------

def player_bits(players: Iterable[str]) -> dict[str, int]:
    """Map each player id to its bit index (players are sorted first)."""
    ordered = sorted(players)
    if len(set(ordered)) != len(ordered):
        raise ShapleyError("player ids must be unique")
    _check_n_players(len(ordered))
    return {player: index for index, player in enumerate(ordered)}


def coalition_mask(coalition: Iterable[str], bits: Mapping[str, int]) -> int:
    """The integer bitmask of a coalition under a ``player_bits`` assignment."""
    mask = 0
    for player in coalition:
        try:
            mask |= 1 << bits[player]
        except KeyError:
            raise ShapleyError(f"coalition names unknown player {player!r}") from None
    return mask


def mask_coalition(mask: int, players: Sequence[str]) -> tuple[str, ...]:
    """The sorted coalition tuple encoded by ``mask`` over sorted ``players``."""
    return tuple(players[i] for i in range(len(players)) if mask >> i & 1)


# ----------------------------------------------------------------------
# Precomputed per-n tables
# ----------------------------------------------------------------------

@lru_cache(maxsize=8)
def popcount_table(n: int) -> np.ndarray:
    """``(2^n,)`` uint8 array: entry ``mask`` is the coalition size |S|."""
    _check_n_players(n)
    counts = np.zeros(1, dtype=np.uint8)
    for _ in range(n):
        counts = np.concatenate([counts, counts + np.uint8(1)])
    counts.setflags(write=False)
    return counts


@lru_cache(maxsize=32)
def shapley_weight_table(n: int) -> np.ndarray:
    """``(n,)`` array of the exact-SV weights ``w[s] = 1/(n·C(n-1, s))``."""
    _check_n_players(n)
    weights = np.array([1.0 / (n * comb(n - 1, s)) for s in range(n)], dtype=np.float64)
    weights.setflags(write=False)
    return weights


# ----------------------------------------------------------------------
# Coalition model construction (subset-sum DP)
# ----------------------------------------------------------------------

def subset_sums(vectors: np.ndarray) -> np.ndarray:
    """All-subset sums of the rows of an ``(m, d)`` matrix, as a ``(2^m, d)`` array.

    Row ``mask`` holds the sum of the member rows whose bits are set in
    ``mask``; row 0 is all zeros.  Each doubling step adds one member to every
    subset that contains it, so the whole table costs O(2^m · m) vector ops.
    Members are folded in ascending bit order, which makes every row bit-for-bit
    equal to the sequential left-to-right sum over the sorted coalition (the
    accumulation order of ``ModelParameters.mean``).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValidationError("subset_sums expects an (m, d) matrix of member vectors")
    m, d = vectors.shape
    _check_n_players(m)
    sums = np.zeros((1 << m, d), dtype=np.float64)
    for j in range(m):
        step = 1 << j
        view = sums.reshape(-1, 2 * step, d)
        view[:, step:] = view[:, :step] + vectors[j]
    return sums


def fold_mean(rows: np.ndarray) -> np.ndarray:
    """Sequential left-to-right average of the rows of a ``(k, d)`` matrix.

    This is the scalar counterpart of :func:`coalition_means`: ascending fold
    then scale by the reciprocal, the exact accumulation order of
    ``ModelParameters.mean`` over a sorted coalition.  Every scalar fallback
    shares this one implementation so the bit-for-bit parity with the batched
    DP cannot drift copy by copy.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValidationError("fold_mean expects a non-empty (k, d) matrix")
    total = rows[0].copy()
    for extra in rows[1:]:
        total += extra
    return total * (1.0 / rows.shape[0])


def coalition_means(vectors: np.ndarray) -> np.ndarray:
    """All-coalition model averages: ``(m, d)`` member vectors -> ``(2^m, d)``.

    Row ``mask`` is ``subset_sums(vectors)[mask] * (1 / |S|)`` — the same
    scale-by-reciprocal the legacy ``ModelParameters.mean`` applies, so rows
    match the per-coalition averages bit for bit.  Row 0 (the empty coalition)
    is left at zero and must not be scored.
    """
    sums = subset_sums(vectors)
    m = int(np.log2(sums.shape[0]) + 0.5)
    counts = popcount_table(m).astype(np.float64)
    inverse = np.zeros_like(counts)
    inverse[1:] = 1.0 / counts[1:]
    # In place: the sums table is freshly owned, and scaling it directly
    # halves the peak memory of the (2^m, d) construction.
    sums *= inverse[:, None]
    return sums


# ----------------------------------------------------------------------
# Exact Shapley assembly from a utility vector
# ----------------------------------------------------------------------

def exact_shapley_from_utility_vector(utilities: np.ndarray) -> np.ndarray:
    """Exact Shapley values of all n players from a ``(2^n,)`` utility vector.

    Uses the identity

        v_i = Σ_{T ∋ i} w[|T|−1]·u[T] − Σ_{S ∌ i} w[|S|]·u[S]

    with ``w[s] = 1/(n·C(n−1, s))``: the vector is reweighted once into
    "member" and "non-member" contribution arrays, and each player's value is
    one masked reduction — O(2^n) vectorized work in total, versus the legacy
    O(n·2^n) Python subset enumeration.

    Args:
        utilities: utility per coalition bitmask; ``utilities[0]`` is u(∅).

    Returns:
        ``(n,)`` array of Shapley values, ordered by bit index (sorted players).
    """
    u = np.asarray(utilities, dtype=np.float64).ravel()
    if u.size < 2 or u.size & (u.size - 1):
        raise ShapleyError(
            f"utility vector must have 2^n entries for n >= 1 players, got {u.size}"
        )
    n = u.size.bit_length() - 1
    _check_n_players(n)
    sizes = popcount_table(n)
    weights = shapley_weight_table(n)

    # Per-size coefficient tables: a coalition of size s contributes with
    # weight w[s-1] to each member's value and -w[s] to each non-member's.
    member_weight = np.zeros(n + 1, dtype=np.float64)
    member_weight[1:] = weights
    outsider_weight = np.zeros(n + 1, dtype=np.float64)
    outsider_weight[:n] = weights  # the grand coalition excludes nobody

    member_part = u * member_weight[sizes]
    outsider_part = u * outsider_weight[sizes]
    # v_i = Σ_{mask ∋ i} (member_part + outsider_part)[mask] − Σ_all outsider_part
    combined = member_part + outsider_part
    outsider_total = outsider_part.sum()

    values = np.empty(n, dtype=np.float64)
    for i in range(n):
        step = 1 << i
        values[i] = combined.reshape(-1, 2, step)[:, 1, :].sum() - outsider_total
    return values


def utility_table_to_vector(
    players: Sequence[str],
    utilities: Mapping[tuple[str, ...], float],
    empty_value: float = 0.0,
) -> np.ndarray:
    """Pack a tuple-keyed coalition-utility table into a bitmask-indexed vector.

    Every non-empty subset of ``players`` must be present (keys are sorted
    tuples); the empty coalition falls back to ``empty_value`` when the table
    has no explicit ``()`` entry.
    """
    bits = player_bits(players)
    n = len(bits)
    vector = np.empty(1 << n, dtype=np.float64)
    vector[0] = float(utilities.get((), empty_value))
    ordered = sorted(bits, key=bits.get)
    for mask in range(1, 1 << n):
        coalition = mask_coalition(mask, ordered)
        try:
            vector[mask] = float(utilities[coalition])
        except KeyError:
            raise ShapleyError(f"utility table is missing coalition {coalition}") from None
    return vector


# ----------------------------------------------------------------------
# End-to-end coalition-game engine
# ----------------------------------------------------------------------

class BitmaskCoalitionEngine:
    """The full GroupSV inner loop over one model-averaging coalition game.

    Given the members' flat parameter vectors and a scorer, the engine builds
    every coalition model with the subset-sum DP, scores them all in one
    batched pass, and assembles exact Shapley values from the utility vector.
    The tuple-keyed views (:meth:`utility_table`, :meth:`shapley_values`) keep
    the legacy dict-based APIs working on top of the vectorized core.
    """

    def __init__(
        self,
        member_vectors: Mapping[str, np.ndarray],
        scorer,
        empty_value: float = 0.0,
    ) -> None:
        if not member_vectors:
            raise ValidationError("at least one member vector is required")
        self.players: list[str] = sorted(member_vectors)
        _check_n_players(len(self.players))
        self.matrix = np.stack(
            [np.asarray(member_vectors[player], dtype=np.float64).ravel() for player in self.players]
        )
        if (1 << len(self.players)) * self.matrix.shape[1] > MAX_MODEL_MATRIX_ELEMENTS:
            raise ShapleyError(
                f"the (2^{len(self.players)}, {self.matrix.shape[1]}) coalition-model matrix "
                f"exceeds the engine's memory budget; use the scalar per-coalition path"
            )
        self.scorer = scorer
        self.empty_value = float(empty_value)
        self._utilities: np.ndarray | None = None

    @property
    def n_players(self) -> int:
        return len(self.players)

    def utility_vector(self) -> np.ndarray:
        """``(2^n,)`` utilities of every coalition model (computed once)."""
        if self._utilities is None:
            means = coalition_means(self.matrix)
            utilities = np.empty(means.shape[0], dtype=np.float64)
            utilities[0] = self.empty_value
            # Chunked scoring keeps the batched scorer's intermediate logits
            # tensor bounded regardless of 2^n.
            for start in range(1, means.shape[0], SCORE_CHUNK_ROWS):
                stop = min(start + SCORE_CHUNK_ROWS, means.shape[0])
                utilities[start:stop] = score_vectors(self.scorer, means[start:stop])
            self._utilities = utilities
        return self._utilities

    def shapley_values(self) -> dict[str, float]:
        """Exact Shapley value per player id."""
        values = exact_shapley_from_utility_vector(self.utility_vector())
        return {player: float(value) for player, value in zip(self.players, values)}

    def utility_table(self, include_empty: bool = False) -> dict[tuple[str, ...], float]:
        """The tuple-keyed utility table the legacy APIs expect."""
        utilities = self.utility_vector()
        table = {
            mask_coalition(mask, self.players): float(utilities[mask])
            for mask in range(1, utilities.size)
        }
        if include_empty:
            table[()] = float(utilities[0])
        return table


def coalition_utility_table(
    member_vectors: Mapping[str, np.ndarray],
    scorer,
    empty_value: float = 0.0,
) -> dict[tuple[str, ...], float]:
    """Tuple-keyed utilities of every coalition of the members (incl. ``()``).

    Uses the batched :class:`BitmaskCoalitionEngine` whenever the game fits
    the engine's player and memory budgets, and otherwise falls back to a
    constant-memory scalar walk (one sequential-fold average and one scoring
    call per coalition — the pre-engine behavior), so callers never trade a
    slow-but-feasible evaluation for a hard error.
    """
    players = sorted(member_vectors)
    if not players:
        raise ValidationError("at least one member vector is required")
    vectors = {
        player: np.asarray(member_vectors[player], dtype=np.float64).ravel() for player in players
    }
    dimension = next(iter(vectors.values())).size
    if (
        len(players) <= MAX_PLAYERS
        and (1 << len(players)) * dimension <= MAX_MODEL_MATRIX_ELEMENTS
    ):
        engine = BitmaskCoalitionEngine(vectors, scorer, empty_value=empty_value)
        return engine.utility_table(include_empty=True)
    table: dict[tuple[str, ...], float] = {(): float(empty_value)}
    for size in range(1, len(players) + 1):
        for coalition in combinations(players, size):
            mean = fold_mean(np.stack([vectors[player] for player in coalition]))
            table[coalition] = float(score_vectors(scorer, mean[None, :])[0])
    return table


def score_vectors(scorer, vectors: np.ndarray) -> np.ndarray:
    """Score a ``(k, d)`` batch of flat parameter vectors with whatever the scorer offers.

    Prefers the vectorized ``score_batch`` (one einsum for the whole batch),
    falls back to per-row ``score_vector`` for scorers that only expose the
    scalar interface (e.g. test doubles).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValidationError("score_vectors expects a (k, d) batch")
    batch_scorer = getattr(scorer, "score_batch", None)
    if batch_scorer is not None:
        return np.asarray(batch_scorer(vectors), dtype=np.float64)
    row_scorer = getattr(scorer, "score_vector", None)
    if row_scorer is None:
        raise ValidationError("scorer offers neither score_batch nor score_vector")
    return np.array([float(row_scorer(row)) for row in vectors], dtype=np.float64)
