"""Similarity measures between contribution vectors.

Fig. 2 of the paper uses cosine similarity between the GroupSV vector and the
ground-truth (native) SV vector.  Rank correlation and L2 distance are provided
as complementary views used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError


def _aligned(a: Mapping[str, float] | Sequence[float], b: Mapping[str, float] | Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Align two contribution collections into comparable vectors.

    Dict inputs are aligned by key (both must cover the same participants);
    sequence inputs are compared positionally.
    """
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if set(a) != set(b):
            raise ValidationError("contribution dicts cover different participants")
        keys = sorted(a)
        return np.array([a[k] for k in keys], float), np.array([b[k] for k in keys], float)
    vec_a = np.asarray(list(a), dtype=np.float64)
    vec_b = np.asarray(list(b), dtype=np.float64)
    if vec_a.shape != vec_b.shape:
        raise ValidationError("contribution vectors have different lengths")
    if vec_a.size == 0:
        raise ValidationError("contribution vectors must be non-empty")
    return vec_a, vec_b


def cosine_similarity(a, b) -> float:
    """cos θ = (a · b) / (|a| |b|); 1.0 if both vectors are all-zero."""
    vec_a, vec_b = _aligned(a, b)
    norm_a = np.linalg.norm(vec_a)
    norm_b = np.linalg.norm(vec_b)
    if norm_a == 0.0 and norm_b == 0.0:
        return 1.0
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(vec_a, vec_b) / (norm_a * norm_b))


def l2_distance(a, b) -> float:
    """Euclidean distance between two contribution vectors."""
    vec_a, vec_b = _aligned(a, b)
    return float(np.linalg.norm(vec_a - vec_b))


def max_abs_error(a, b) -> float:
    """Largest absolute per-participant difference."""
    vec_a, vec_b = _aligned(a, b)
    return float(np.max(np.abs(vec_a - vec_b)))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(values)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # Average ranks over ties.
    unique_values = np.unique(values)
    for value in unique_values:
        mask = values == value
        if np.count_nonzero(mask) > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman_correlation(a, b) -> float:
    """Spearman rank correlation; 1.0 when either side has no rank variation in both."""
    vec_a, vec_b = _aligned(a, b)
    if vec_a.size < 2:
        return 1.0
    ranks_a = _ranks(vec_a)
    ranks_b = _ranks(vec_b)
    std_a = np.std(ranks_a)
    std_b = np.std(ranks_b)
    if std_a == 0.0 and std_b == 0.0:
        return 1.0
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    covariance = np.mean((ranks_a - ranks_a.mean()) * (ranks_b - ranks_b.mean()))
    return float(covariance / (std_a * std_b))
