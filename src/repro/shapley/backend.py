"""Evaluation backends: one batched interface behind every utility family.

The Shapley layer evaluates coalition games through three utility families —
:class:`~repro.shapley.utility.AccuracyUtility` (score a stack of models),
:class:`~repro.shapley.utility.CoalitionModelUtility` (average member models,
then score), and :class:`~repro.shapley.utility.RetrainUtility` (retrain a
model per coalition, then score).  An :class:`EvaluationBackend` routes all
three through a common batched interface so callers never special-case how a
game gets evaluated:

* :meth:`EvaluationBackend.score_models` — batched model scoring (the
  ``score_batch`` GEMM path with a scalar fallback).
* :meth:`EvaluationBackend.utility_vector` — the whole ``(2^n,)``
  bitmask-indexed power set of a game in one pass.
* :meth:`EvaluationBackend.evaluate_coalitions` — a batch of arbitrary
  coalitions.
* :meth:`EvaluationBackend.retrain_scores` — the retraining primitive behind
  the Fig. 1 ground truth: train-and-score one model per coalition.

:class:`SerialEvaluationBackend` executes everything in process.
:class:`ProcessPoolEvaluationBackend` parallelizes the *retraining* primitive
over worker processes: coalition retraining is embarrassingly parallel (one
independent ``fit`` per bitmask coalition), each coalition's training seed is
a pure function of the utility's seed and the coalition (so results cannot
depend on worker scheduling), and on platforms with ``fork`` the owners'
training matrices are shared with the workers read-only via copy-on-write —
no per-task pickling of data.  The serial path remains the reference; parity
tests pin the parallel scores to it at ``<= 1e-9``.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shapley.utility import RetrainUtility, UtilityFunction


# ----------------------------------------------------------------------
# Worker plumbing (module level so it is picklable / fork-visible)
# ----------------------------------------------------------------------

# Under the fork start method utilities are published in this token-keyed
# registry in the parent and inherited by every worker through copy-on-write:
# the (potentially large) owner feature matrices are shared read-only, never
# pickled per task.  Per-pool tokens (instead of one global slot) keep
# concurrently live backends — and a backend garbage-collected mid-way
# through another's pool construction — from clobbering each other's entry.
_SHARED_UTILITIES: dict[int, object] = {}
_POOL_TOKENS = iter(range(1, 1 << 62))

# Worker-side binding, set once per worker by the initializers below.  Holds
# whichever payload the pool's task function needs: a RetrainUtility for the
# retraining primitive, a scorer for chunk-aligned batched scoring.
_WORKER_UTILITY = None


def _init_worker_from_registry(token: int) -> None:
    """Fork-path initializer: bind the fork-inherited registry entry."""
    global _WORKER_UTILITY
    _WORKER_UTILITY = _SHARED_UTILITIES[token]


def _init_worker_utility(utility: "RetrainUtility") -> None:
    """Spawn-path initializer: receive the pickled utility once per worker."""
    global _WORKER_UTILITY
    _WORKER_UTILITY = utility


def _worker_retrain_scores(coalitions: list[tuple[str, ...]]) -> list[float]:
    """Train-and-score a chunk of coalitions inside a worker process."""
    utility = _WORKER_UTILITY
    if utility is None:  # pragma: no cover - defensive; initializers set it
        raise RuntimeError("retraining worker was not initialized with a utility")
    return [utility.train_and_score(coalition) for coalition in coalitions]


def _worker_score_rows(rows: np.ndarray) -> np.ndarray:
    """Score a chunk-aligned slice of flat parameter vectors inside a worker.

    The bound payload here is a *scorer* (e.g. ``AccuracyUtility``), not a
    retraining utility; the slice boundaries are multiples of the scorer's
    internal chunk size, so this reproduces exactly the chunks the serial
    ``score_batch`` would have processed.
    """
    scorer = _WORKER_UTILITY
    if scorer is None:  # pragma: no cover - defensive; initializers set it
        raise RuntimeError("scoring worker was not initialized with a scorer")
    return np.asarray(scorer.score_batch(rows), dtype=np.float64)


def _effective_cpu_count() -> int:
    """The CPU count backend selection trusts (monkeypatchable in tests)."""
    return os.cpu_count() or 1


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    bounds = np.linspace(0, len(items), n_chunks + 1).astype(int)
    return [items[start:stop] for start, stop in zip(bounds, bounds[1:]) if stop > start]


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------

class EvaluationBackend:
    """Common batched interface for coalition-game evaluation.

    The base class *is* the serial implementation; subclasses override the
    primitives they accelerate.  Backends are context managers so pooled
    resources are released deterministically (the serial backend holds none).
    """

    name = "serial"
    n_workers = 1

    # -- model scoring (AccuracyUtility and friends) --------------------

    def score_models(self, scorer, vectors: np.ndarray) -> np.ndarray:
        """Score a ``(k, d)`` batch of flat parameter vectors."""
        from repro.shapley.engine import score_vectors

        return score_vectors(scorer, vectors)

    # -- coalition games (CoalitionModelUtility, RetrainUtility, ...) ----

    def utility_vector(self, utility: "UtilityFunction", players: Sequence[str]) -> np.ndarray | None:
        """The game's full ``(2^n,)`` bitmask utility vector, or None."""
        hook = getattr(utility, "coalition_utility_vector", None)
        if hook is None:
            return None
        return hook(sorted(set(players)))

    def evaluate_coalitions(
        self, utility: "UtilityFunction", coalitions: Sequence[tuple[str, ...]]
    ) -> np.ndarray:
        """Utilities of several coalitions in one batched pass."""
        hook = getattr(utility, "evaluate_coalitions", None)
        if hook is not None:
            return np.asarray(hook(list(coalitions)), dtype=np.float64)
        return np.array([float(utility(coalition)) for coalition in coalitions], dtype=np.float64)

    # -- the retraining primitive (Fig. 1 ground truth) ------------------

    def retrain_scores(
        self, utility: "RetrainUtility", coalitions: Sequence[tuple[str, ...]]
    ) -> np.ndarray:
        """Train one model per (non-empty) coalition and score it.

        The serial reference path: a plain loop over
        :meth:`~repro.shapley.utility.RetrainUtility.train_and_score`.
        """
        return np.array(
            [utility.train_and_score(coalition) for coalition in coalitions], dtype=np.float64
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release any pooled resources (no-op for the serial backend)."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialEvaluationBackend(EvaluationBackend):
    """Everything in process — the reference implementation."""


class ProcessPoolEvaluationBackend(EvaluationBackend):
    """Parallel coalition retraining and batched model scoring over a process pool.

    Two primitives are parallelized: coalition *retraining* (seconds of
    GIL-holding NumPy work per coalition, the Fig. 1 ground truth) and batched
    model *scoring* (the sampled estimator's dominant workload at cross-device
    scale — tens of thousands of prefix rows per round, split across workers
    at the scorer's own chunk boundaries).  The remaining primitives are
    single BLAS calls that gain nothing from multiprocessing.  Guarantees:

    * **Determinism** — every coalition's training seed comes from
      :meth:`~repro.shapley.utility.RetrainUtility.coalition_seed`, a pure
      function of the utility's seed and the coalition, so scores are
      independent of chunking and worker scheduling.
    * **Parity** — workers execute the very same ``train_and_score`` the
      serial backend loops over; results are pinned to the serial path by
      parity tests (``<= 1e-9``, in practice bit-for-bit).
    * **Shared read-only data** — with the ``fork`` start method the owners'
      training matrices are inherited copy-on-write; only coalition tuples
      and float scores cross process boundaries.  Without ``fork`` the
      utility is pickled once per worker (never per task).
    * **Serial fallback** — one worker, tiny batches, or a pool that fails
      to start all fall back to the serial loop instead of erroring.
    """

    name = "process-pool"

    def __init__(
        self,
        n_workers: int | None = None,
        min_parallel_coalitions: int = 4,
        chunks_per_worker: int = 4,
        min_parallel_rows: int = 1024,
    ) -> None:
        self.n_workers = int(n_workers) if n_workers else (os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ValidationError("n_workers must be at least 1")
        self.min_parallel_coalitions = int(min_parallel_coalitions)
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.min_parallel_rows = int(min_parallel_rows)
        self._pool = None
        self._pool_utility = None
        self._pool_token: int | None = None

    def score_models(self, scorer, vectors: np.ndarray) -> np.ndarray:
        """Parallel batched model scoring, bitwise identical to the serial path.

        The batch is split at multiples of the scorer's internal chunk size
        (``batch_chunk_rows``), so every worker processes exactly the chunks
        the serial ``score_batch`` would have, and the index-ordered
        concatenation reproduces its output bit for bit.  Batches below
        ``min_parallel_rows`` — or scorers without the chunk-alignment
        contract — short-circuit to the serial path, so small runs never pay
        pool overhead for nothing (BENCH showed ~0.9x on tiny workloads).
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        chunk_hook = getattr(scorer, "batch_chunk_rows", None)
        n_rows = vectors.shape[0]
        if self.n_workers <= 1 or chunk_hook is None or n_rows < self.min_parallel_rows:
            return super().score_models(scorer, vectors)
        unit = max(1, int(chunk_hook()))
        n_units = -(-n_rows // unit)
        if n_units < 2:
            return super().score_models(scorer, vectors)
        try:
            pool = self._get_pool(scorer)
        except OSError:  # pool could not start (fd/memory limits): stay correct
            return super().score_models(scorer, vectors)
        unit_groups = _chunk(list(range(n_units)), self.n_workers * self.chunks_per_worker)
        slices = [
            vectors[group[0] * unit : min(n_rows, (group[-1] + 1) * unit)]
            for group in unit_groups
        ]
        chunk_scores = pool.map(_worker_score_rows, slices)
        return np.concatenate(chunk_scores).astype(np.float64, copy=False)

    def retrain_scores(
        self, utility: "RetrainUtility", coalitions: Sequence[tuple[str, ...]]
    ) -> np.ndarray:
        coalitions = list(coalitions)
        if self.n_workers <= 1 or len(coalitions) < self.min_parallel_coalitions:
            return super().retrain_scores(utility, coalitions)
        try:
            pool = self._get_pool(utility)
        except OSError:  # pool could not start (fd/memory limits): stay correct
            return super().retrain_scores(utility, coalitions)
        chunk_scores = pool.map(
            _worker_retrain_scores, _chunk(coalitions, self.n_workers * self.chunks_per_worker)
        )
        return np.array([score for chunk in chunk_scores for score in chunk], dtype=np.float64)

    def _get_pool(self, utility):
        """The persistent worker pool bound to ``utility`` (created lazily).

        ``utility`` is whatever payload the worker task function needs — a
        :class:`~repro.shapley.utility.RetrainUtility` for retraining, a
        scorer for batched scoring.

        Workers capture the utility at startup (fork inheritance or one
        spawn-time pickle), so the pool is reused across calls for the same
        utility — the common case, e.g. a Monte-Carlo estimator issuing many
        batches — and rebuilt only when a different utility arrives.
        """
        if self._pool is not None and self._pool_utility is utility:
            return self._pool
        self.close()
        methods = multiprocessing.get_all_start_methods()
        token = next(_POOL_TOKENS)
        if "fork" in methods:
            context = multiprocessing.get_context("fork")
            # Publish before forking; the entry stays registered while the
            # pool lives so a worker respawned after a crash still finds it.
            _SHARED_UTILITIES[token] = utility
            initializer, initargs = _init_worker_from_registry, (token,)
        else:  # pragma: no cover - non-fork platforms (Windows/macOS spawn)
            context = multiprocessing.get_context()
            initializer, initargs = _init_worker_utility, (utility,)
        try:
            self._pool = context.Pool(self.n_workers, initializer=initializer, initargs=initargs)
        except BaseException:  # a failed construction must not leak the entry
            _SHARED_UTILITIES.pop(token, None)
            raise
        self._pool_utility = utility
        self._pool_token = token
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool and drop the bound utility."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._pool_token is not None:
            _SHARED_UTILITIES.pop(self._pool_token, None)
            self._pool_token = None
        self._pool_utility = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


_DEFAULT_BACKEND = SerialEvaluationBackend()


def default_backend() -> EvaluationBackend:
    """The process-wide serial backend used when callers configure nothing."""
    return _DEFAULT_BACKEND


def make_backend(n_workers: int | None) -> EvaluationBackend:
    """A backend for the requested worker count (``None``/``1`` → serial).

    On single-CPU hosts a process pool is pure overhead (workers time-slice
    one core while paying spin-up and IPC), so the request is downgraded to
    the serial backend; explicitly constructing
    :class:`ProcessPoolEvaluationBackend` still honours the caller.
    """
    if n_workers is None or int(n_workers) <= 1 or _effective_cpu_count() <= 1:
        return default_backend()
    return ProcessPoolEvaluationBackend(n_workers=int(n_workers))
