"""Utility functions u(S) over coalitions of participants.

A utility function maps a coalition (a subset of participant identifiers) to a
real number — in the paper, the test accuracy of the model built from that
coalition's data or model updates.  Two families are provided:

* :class:`RetrainUtility` — trains a model from scratch on the pooled data of
  the coalition.  This is how the paper's *ground truth* SV (Fig. 1) is built;
  it requires raw data access and therefore cannot run on chain.
* :class:`CoalitionModelUtility` — evaluates a model obtained by *averaging*
  pre-trained member models (the FL-style aggregation of Song et al. adopted by
  GroupSV, Algorithm 1 line 4).  This only needs model parameters, which is why
  it is compatible with secure aggregation.

Both are wrapped in :class:`CachedUtility` for memoization, since exact SV
evaluates every one of the 2^n coalitions exactly once but approximation
schemes revisit coalitions.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import UtilityError, ValidationError
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.metrics import accuracy, macro_f1
from repro.fl.model import ModelParameters
from repro.fl.server import CentralizedTrainer


class UtilityFunction:
    """Interface: ``u(coalition) -> float`` with ``u(()) = empty_value``."""

    empty_value: float = 0.0

    def __call__(self, coalition: tuple[str, ...]) -> float:
        """Evaluate the utility of a coalition of participant ids."""
        raise NotImplementedError

    def evaluations(self) -> int:
        """How many (non-empty) coalition evaluations have been performed."""
        return 0

    def coalition_utility_vector(self, players: Sequence[str]) -> np.ndarray | None:
        """Optionally evaluate *all* 2^n coalitions of ``players`` at once.

        Returns a bitmask-indexed ``(2^n,)`` utility vector (see
        :mod:`repro.shapley.engine`), or ``None`` when the utility has no
        vectorized path and callers must fall back to per-coalition calls.
        """
        return None

    def evaluate_coalitions(self, coalitions: Sequence[tuple[str, ...]]) -> list[float]:
        """Evaluate several coalitions, batching model scoring where possible."""
        return [float(self(coalition)) for coalition in coalitions]


class AccuracyUtility(UtilityFunction):
    """Utility = accuracy of given model parameters on a held-out test set.

    This is not itself coalition-aware; it is the scoring piece shared by the
    coalition utilities below and by the on-chain contribution contract.
    """

    def __init__(
        self,
        test_features: np.ndarray,
        test_labels: np.ndarray,
        n_classes: int,
        metric: str = "accuracy",
    ) -> None:
        self.test_features = np.asarray(test_features, dtype=np.float64)
        self.test_labels = np.asarray(test_labels).ravel().astype(int)
        if self.test_features.shape[0] != self.test_labels.size:
            raise ValidationError("test features and labels disagree on sample count")
        if self.test_features.shape[0] == 0:
            raise ValidationError("utility requires a non-empty test set")
        if metric not in ("accuracy", "macro_f1"):
            raise ValidationError(f"unknown metric {metric!r}")
        self.n_classes = int(n_classes)
        self.metric = metric

    def score(self, parameters: ModelParameters) -> float:
        """Score model parameters on the held-out set."""
        model = LogisticRegressionModel(self.test_features.shape[1], self.n_classes)
        model.set_parameters(parameters)
        predictions = model.predict(self.test_features)
        if self.metric == "accuracy":
            return accuracy(self.test_labels, predictions)
        return macro_f1(self.test_labels, predictions, self.n_classes)

    def score_vector(self, vector: np.ndarray) -> float:
        """Score a flat parameter vector (the on-chain representation)."""
        model = LogisticRegressionModel(self.test_features.shape[1], self.n_classes)
        model.set_vector(vector)
        predictions = model.predict(self.test_features)
        if self.metric == "accuracy":
            return accuracy(self.test_labels, predictions)
        return macro_f1(self.test_labels, predictions, self.n_classes)

    # Two logits closer than this (relative) count as a potential argmax tie:
    # softmax can only reorder/merge logits within a few float64 ulps
    # (~2e-16), so the margin is hugely conservative.
    _TIE_MARGIN = 1e-9

    # Per-chunk budget for the (n_samples, chunk, n_classes) logits tensor.
    # Chunking keeps the working set cache-sized; one monolithic tensor is
    # memory-bandwidth-bound and *slower* than the scalar loop at scale.
    _CHUNK_LOGITS_ELEMENTS = 1 << 21

    def score_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Score a ``(k, d)`` batch of flat parameter vectors in batched passes.

        Each chunk of models is scored with one matrix product against the
        test set (all weight matrices laid side by side), one argmax, and one
        vectorized metric reduction — no per-vector model instantiation.
        Softmax is strictly monotone, so argmax over raw logits gives the
        same predictions as :meth:`score_vector` except when two logits are
        within float rounding of each other; any model with such a near-tie
        anywhere in the test set is detected (top-2 logit gap inside the tie
        margin) and re-scored through the exact scalar path, keeping the
        batch bit-for-bit faithful even on adversarial parameters.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        n_features = self.test_features.shape[1]
        dimension = n_features * self.n_classes + self.n_classes
        if vectors.ndim != 2 or vectors.shape[1] != dimension:
            raise ValidationError(
                f"expected a (k, {dimension}) batch of flat parameter vectors, "
                f"got shape {vectors.shape}"
            )
        chunk = self.batch_chunk_rows()
        scores = np.empty(vectors.shape[0], dtype=np.float64)
        for start in range(0, vectors.shape[0], chunk):
            stop = min(start + chunk, vectors.shape[0])
            scores[start:stop] = self._score_chunk(vectors[start:stop])
        return scores

    def batch_chunk_rows(self) -> int:
        """Rows per internal :meth:`score_batch` chunk.

        Chunks are scored independently, so ``score_batch(rows[a:b])`` equals
        ``score_batch(rows)[a:b]`` bit for bit whenever ``a`` and ``b`` are
        multiples of this size — the alignment contract the parallel scoring
        backend relies on to split a batch across workers without changing a
        single output bit.
        """
        n_samples = self.test_features.shape[0]
        return max(1, self._CHUNK_LOGITS_ELEMENTS // (n_samples * self.n_classes))

    def _score_chunk(self, vectors: np.ndarray) -> np.ndarray:
        """Score one chunk of flat parameter vectors with a single GEMM."""
        n_features = self.test_features.shape[1]
        weights = vectors[:, : n_features * self.n_classes].reshape(-1, n_features, self.n_classes)
        bias = vectors[:, n_features * self.n_classes :]
        stacked = weights.transpose(1, 0, 2).reshape(n_features, -1)
        logits = (self.test_features @ stacked).reshape(-1, weights.shape[0], self.n_classes)
        logits += bias[None, :, :]
        predictions = logits.argmax(axis=2)
        # Top-2 logit gap per (sample, model) row: a model is suspect when any
        # row's gap falls inside the tie margin.
        top_two = np.partition(logits, self.n_classes - 2, axis=2)[:, :, self.n_classes - 2 :]
        gap = top_two[:, :, 1] - top_two[:, :, 0]
        near_tie = gap <= self._TIE_MARGIN * np.maximum(1.0, np.abs(top_two[:, :, 1]))
        suspect_models = np.flatnonzero(near_tie.any(axis=0))
        if self.metric == "accuracy":
            scores = (predictions == self.test_labels[:, None]).mean(axis=0)
        else:
            scores = np.array(
                [macro_f1(self.test_labels, column, self.n_classes) for column in predictions.T],
                dtype=np.float64,
            )
        for model_index in suspect_models:
            scores[model_index] = self.score_vector(vectors[model_index])
        return scores

    def __call__(self, coalition: tuple[str, ...]) -> float:  # pragma: no cover - guidance only
        raise UtilityError(
            "AccuracyUtility scores model parameters; wrap it in RetrainUtility or "
            "CoalitionModelUtility to evaluate coalitions"
        )


class RetrainUtility(UtilityFunction):
    """u(S) = test accuracy of a model retrained from scratch on S's pooled data.

    Retraining 2^n coalition models is the cost that motivates GroupSV, but it
    is also embarrassingly parallel: every coalition is an independent
    ``fit``.  The utility therefore routes all multi-coalition work through an
    :class:`~repro.shapley.backend.EvaluationBackend` — pass ``n_workers > 1``
    (or an explicit ``backend``) to retrain coalitions on a process pool with
    the owners' training matrices shared read-only; the default stays the
    serial reference path.  Both paths call the same
    :meth:`train_and_score` with the same :meth:`coalition_seed`, so parallel
    scores match serial ones exactly regardless of scheduling.
    """

    # Above this game size the full-power-set vector path (2^n retrainings) is
    # refused so callers fall back to sampling estimators.  Kept equal to the
    # engine's MAX_PLAYERS (a literal, because importing the engine at module
    # level would be circular; a regression test pins the equality): below the
    # cap a refusal would not save any work — callers fall back to the same
    # 2^n retrainings, just unbatched — so the two ceilings must not diverge.
    VECTOR_MAX_PLAYERS = 24

    def __init__(
        self,
        owner_features: Mapping[str, np.ndarray],
        owner_labels: Mapping[str, np.ndarray],
        scorer: AccuracyUtility,
        trainer: CentralizedTrainer | None = None,
        seed: int = 0,
        backend=None,
        n_workers: int | None = None,
    ) -> None:
        if set(owner_features) != set(owner_labels):
            raise ValidationError("owner_features and owner_labels must cover the same owners")
        if not owner_features:
            raise ValidationError("at least one owner is required")
        self.owner_features = {k: np.asarray(v, dtype=np.float64) for k, v in owner_features.items()}
        self.owner_labels = {k: np.asarray(v).ravel().astype(int) for k, v in owner_labels.items()}
        self.scorer = scorer
        n_features = next(iter(self.owner_features.values())).shape[1]
        self.trainer = trainer or CentralizedTrainer(n_features, scorer.n_classes)
        self.seed = seed
        if backend is None:
            from repro.shapley.backend import make_backend

            backend = make_backend(n_workers)
        self.backend = backend
        self._evaluations = 0

    def _check_coalition(self, coalition: tuple[str, ...]) -> tuple[str, ...]:
        coalition = tuple(sorted(coalition))
        unknown = [owner for owner in coalition if owner not in self.owner_features]
        if unknown:
            raise UtilityError(f"coalition names unknown owners: {unknown}")
        return coalition

    def coalition_seed(self, coalition: tuple[str, ...]) -> int:
        """The training seed for one coalition's retraining.

        A pure function of the utility's seed and the coalition (currently the
        shared seed itself, matching the historical serial behaviour), so a
        coalition's model never depends on evaluation order, chunking, or
        which worker process trained it.
        """
        return self.seed

    def train_and_score(self, coalition: tuple[str, ...]) -> float:
        """Train one coalition model and score it (the pure compute kernel).

        This is the unit of work both the serial loop and the process-pool
        backend execute; it performs no bookkeeping so it can run in worker
        processes.
        """
        coalition = self._check_coalition(coalition)
        parameters = self.trainer.train_on_coalition(
            self.owner_features, self.owner_labels, coalition, seed=self.coalition_seed(coalition)
        )
        return float(self.scorer.score(parameters))

    def __call__(self, coalition: tuple[str, ...]) -> float:
        coalition = self._check_coalition(coalition)
        if not coalition:
            return self.empty_value
        self._evaluations += 1
        return self.train_and_score(coalition)

    def evaluations(self) -> int:
        return self._evaluations

    # ------------------------------------------------------------------
    # Batched paths (routed through the evaluation backend)
    # ------------------------------------------------------------------

    def vector_game_refusal(self, players: Sequence[str]) -> str | None:
        """Why the full-power-set vector path refuses this game, or None.

        Exposed separately from :meth:`coalition_utility_vector` so the
        refusal logic is testable without enumerating 2^n coalitions.
        """
        ordered = sorted(set(players))
        if not ordered:
            return "the vector path needs at least one player"
        if len(ordered) > self.VECTOR_MAX_PLAYERS:
            return (
                f"retraining 2^{len(ordered)} coalitions exceeds the "
                f"{self.VECTOR_MAX_PLAYERS}-player exhaustive ceiling; "
                "use a sampling estimator"
            )
        return None

    def coalition_utility_vector(self, players: Sequence[str]) -> np.ndarray | None:
        """All 2^n retrained-coalition utilities as a bitmask-indexed vector.

        Coalitions are enumerated in bitmask order over the sorted players and
        retrained through the configured backend — in parallel when it is a
        process pool.  Returns ``None`` for games too large to retrain
        exhaustively (callers fall back to per-coalition or sampled paths).
        """
        from repro.shapley.engine import mask_coalition

        ordered = sorted(set(players))
        if self.vector_game_refusal(ordered) is not None:
            return None
        for player in ordered:
            if player not in self.owner_features:
                raise UtilityError(f"coalition names unknown owners: [{player!r}]")
        coalitions = [mask_coalition(mask, ordered) for mask in range(1, 1 << len(ordered))]
        utilities = np.empty(1 << len(ordered), dtype=np.float64)
        utilities[0] = self.empty_value
        utilities[1:] = self.backend.retrain_scores(self, coalitions)
        self._evaluations += len(coalitions)
        return utilities

    def evaluate_coalitions(self, coalitions: Sequence[tuple[str, ...]]) -> list[float]:
        """Evaluate several coalitions, retraining them through the backend."""
        keys = [self._check_coalition(coalition) for coalition in coalitions]
        non_empty = [key for key in keys if key]
        scores = iter(self.backend.retrain_scores(self, non_empty)) if non_empty else iter(())
        self._evaluations += len(non_empty)
        return [float(next(scores)) if key else self.empty_value for key in keys]


class CoalitionModelUtility(UtilityFunction):
    """u(S) = test accuracy of the plain average of S's member models.

    ``member_models`` maps a participant id (an owner, or a GroupSV group label)
    to its model parameters.  This mirrors Algorithm 1 line 4: coalition models
    are aggregated from the already-trained member models, not retrained.
    """

    def __init__(self, member_models: Mapping[str, ModelParameters], scorer: AccuracyUtility) -> None:
        if not member_models:
            raise ValidationError("at least one member model is required")
        self.member_models = dict(member_models)
        self.scorer = scorer
        self._evaluations = 0

    def __call__(self, coalition: tuple[str, ...]) -> float:
        coalition = tuple(sorted(coalition))
        if not coalition:
            return self.empty_value
        unknown = [member for member in coalition if member not in self.member_models]
        if unknown:
            raise UtilityError(f"coalition names unknown members: {unknown}")
        self._evaluations += 1
        averaged = ModelParameters.mean([self.member_models[member] for member in coalition])
        return self.scorer.score(averaged)

    def evaluations(self) -> int:
        return self._evaluations

    # ------------------------------------------------------------------
    # Vectorized paths (repro.shapley.engine)
    # ------------------------------------------------------------------

    def _member_matrix(self, players: Sequence[str]) -> np.ndarray:
        """Member parameter vectors stacked in sorted-player (bit) order."""
        unknown = [player for player in players if player not in self.member_models]
        if unknown:
            raise UtilityError(f"coalition names unknown members: {unknown}")
        return np.stack([self.member_models[player].to_vector() for player in sorted(players)])

    def _vector_scorable(self) -> bool:
        return hasattr(self.scorer, "score_batch") or hasattr(self.scorer, "score_vector")

    def coalition_utility_vector(self, players: Sequence[str]) -> np.ndarray | None:
        """All 2^n coalition utilities in one batched pass (None if not scorable).

        Returns ``None`` — so callers fall back to the constant-memory scalar
        path — when the scorer has no vector interface or the game's
        ``(2^n, d)`` coalition-model matrix would blow the engine's memory
        budget.
        """
        from repro.shapley.engine import (
            MAX_MODEL_MATRIX_ELEMENTS,
            MAX_PLAYERS,
            BitmaskCoalitionEngine,
        )

        players = sorted(set(players))
        if not players or len(players) > MAX_PLAYERS or not self._vector_scorable():
            return None
        unknown = [player for player in players if player not in self.member_models]
        if unknown:
            raise UtilityError(f"coalition names unknown members: {unknown}")
        vectors = {player: self.member_models[player].to_vector() for player in players}
        dimension = next(iter(vectors.values())).size
        if (1 << len(players)) * dimension > MAX_MODEL_MATRIX_ELEMENTS:
            return None
        engine = BitmaskCoalitionEngine(vectors, self.scorer, empty_value=self.empty_value)
        utilities = engine.utility_vector()
        self._evaluations += utilities.size - 1
        return utilities

    def evaluate_coalitions(self, coalitions: Sequence[tuple[str, ...]]) -> list[float]:
        """Evaluate several coalitions with one batched scoring call.

        The coalition models are averaged with the same sorted left-to-right
        fold as :meth:`__call__` (so values are identical), but all of them are
        scored together — one batched pass instead of ``len(coalitions)``
        model instantiations.  Empty coalitions map to ``empty_value``.
        """
        from repro.shapley.engine import fold_mean, score_vectors

        if not coalitions:
            return []
        if not self._vector_scorable():
            return [float(self(coalition)) for coalition in coalitions]
        non_empty = [coalition for coalition in coalitions if coalition]
        if not non_empty:
            return [self.empty_value] * len(coalitions)
        members = sorted({member for coalition in non_empty for member in coalition})
        matrix = self._member_matrix(members)
        index = {member: i for i, member in enumerate(members)}
        rows = np.empty((len(non_empty), matrix.shape[1]), dtype=np.float64)
        for slot, coalition in enumerate(non_empty):
            rows[slot] = fold_mean(matrix[sorted(index[member] for member in coalition)])
        self._evaluations += len(non_empty)
        scores = iter(score_vectors(self.scorer, rows))
        return [float(next(scores)) if coalition else self.empty_value for coalition in coalitions]


class CachedUtility(UtilityFunction):
    """Memoizing wrapper around any utility function."""

    def __init__(self, inner: UtilityFunction | Callable[[tuple[str, ...]], float]) -> None:
        self.inner = inner
        self._cache: dict[tuple[str, ...], float] = {}
        self._evaluation_offset = 0
        if isinstance(inner, UtilityFunction):
            self.empty_value = inner.empty_value

    def __call__(self, coalition: tuple[str, ...]) -> float:
        key = tuple(sorted(coalition))
        if not key:
            return self.empty_value
        if key not in self._cache:
            self._cache[key] = float(self.inner(key))
        return self._cache[key]

    def evaluations(self) -> int:
        """Number of distinct coalitions evaluated (cache size)."""
        return len(self._cache) + self._evaluation_offset

    def cache_contents(self) -> dict[tuple[str, ...], float]:
        """A copy of the memo table (useful for audits and tests)."""
        return dict(self._cache)

    def preload(self, utilities: Mapping[tuple[str, ...], float]) -> None:
        """Seed the memo table with precomputed values (empty coalition excluded)."""
        for coalition, value in utilities.items():
            key = tuple(sorted(coalition))
            if key:
                self._cache[key] = float(value)

    # Seeding the memo with every coalition tuple is O(2^n) Python work; past
    # this game size the vector is returned unseeded (the evaluation *count*
    # stays truthful via an offset, but cache_contents() stays sparse).
    _CACHE_SEED_MAX_PLAYERS = 16

    def coalition_utility_vector(self, players: Sequence[str]) -> np.ndarray | None:
        """Delegate to the inner utility's vectorized path, seeding the cache.

        When the inner utility can evaluate the whole power set at once (see
        :meth:`UtilityFunction.coalition_utility_vector`), the resulting table
        is recorded in the memo so ``evaluations()``/``cache_contents()`` report
        the same coverage as the scalar path would.  For games larger than
        ``_CACHE_SEED_MAX_PLAYERS`` the tuple-keyed seeding is skipped (it
        would dwarf the vectorized evaluation itself); ``evaluations()`` still
        counts the batch.
        """
        vector_hook = getattr(self.inner, "coalition_utility_vector", None)
        if vector_hook is None:
            return None
        ordered = sorted(set(players))
        warm = self._vector_from_cache(ordered)
        if warm is not None:
            return warm
        utilities = vector_hook(ordered)
        if utilities is None:
            return None
        if len(ordered) <= self._CACHE_SEED_MAX_PLAYERS:
            from repro.shapley.engine import mask_coalition

            for mask in range(1, utilities.size):
                self._cache[mask_coalition(mask, ordered)] = float(utilities[mask])
        else:
            self._evaluation_offset += utilities.size - 1
        if utilities[0] != self.empty_value:
            utilities = utilities.copy()
            utilities[0] = self.empty_value
        return utilities

    def _vector_from_cache(self, ordered: Sequence[str]) -> np.ndarray | None:
        """Assemble the game's utility vector from the memo alone, or None.

        A fully warmed cache (e.g. a second ``native_shapley`` call over the
        same game) must not trigger another 2^n sweep through the inner
        utility; the size guard keeps the cold case O(1).
        """
        from repro.shapley.engine import mask_coalition

        size = 1 << len(ordered)
        if not ordered or len(self._cache) < size - 1:
            return None
        vector = np.empty(size, dtype=np.float64)
        vector[0] = self.empty_value
        for mask in range(1, size):
            value = self._cache.get(mask_coalition(mask, ordered))
            if value is None:
                return None
            vector[mask] = value
        return vector

    def cached_values(self, coalitions: Sequence[tuple[str, ...]]) -> np.ndarray | None:
        """Utilities for ``coalitions`` as one lookup, or None if any is uncached.

        Lets callers (the Monte-Carlo estimators) collapse a permutation's
        marginals into a single vector operation when every prefix coalition
        has already been evaluated.
        """
        values = np.empty(len(coalitions), dtype=np.float64)
        for slot, coalition in enumerate(coalitions):
            key = tuple(sorted(coalition))
            if not key:
                values[slot] = self.empty_value
                continue
            value = self._cache.get(key)
            if value is None:
                return None
            values[slot] = value
        return values

    def evaluate_batch(self, coalitions: Sequence[tuple[str, ...]]) -> np.ndarray:
        """Utilities for several coalitions, batch-evaluating the uncached ones.

        Cached coalitions are plain lookups; the rest go through the inner
        utility's :meth:`~UtilityFunction.evaluate_coalitions` (one batched
        scoring pass when it supports it) and are memoized exactly as scalar
        calls would be.
        """
        keys = [tuple(sorted(coalition)) for coalition in coalitions]
        missing: list[tuple[str, ...]] = []
        for key in keys:
            if key and key not in self._cache and key not in missing:
                missing.append(key)
        if missing:
            batch_hook = getattr(self.inner, "evaluate_coalitions", None)
            if batch_hook is not None:
                values = batch_hook(missing)
            else:
                values = [float(self.inner(key)) for key in missing]
            for key, value in zip(missing, values):
                self._cache[key] = float(value)
        return np.array(
            [self._cache[key] if key else self.empty_value for key in keys], dtype=np.float64
        )
