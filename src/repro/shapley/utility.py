"""Utility functions u(S) over coalitions of participants.

A utility function maps a coalition (a subset of participant identifiers) to a
real number — in the paper, the test accuracy of the model built from that
coalition's data or model updates.  Two families are provided:

* :class:`RetrainUtility` — trains a model from scratch on the pooled data of
  the coalition.  This is how the paper's *ground truth* SV (Fig. 1) is built;
  it requires raw data access and therefore cannot run on chain.
* :class:`CoalitionModelUtility` — evaluates a model obtained by *averaging*
  pre-trained member models (the FL-style aggregation of Song et al. adopted by
  GroupSV, Algorithm 1 line 4).  This only needs model parameters, which is why
  it is compatible with secure aggregation.

Both are wrapped in :class:`CachedUtility` for memoization, since exact SV
evaluates every one of the 2^n coalitions exactly once but approximation
schemes revisit coalitions.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.exceptions import UtilityError, ValidationError
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.metrics import accuracy, macro_f1
from repro.fl.model import ModelParameters
from repro.fl.server import CentralizedTrainer


class UtilityFunction:
    """Interface: ``u(coalition) -> float`` with ``u(()) = empty_value``."""

    empty_value: float = 0.0

    def __call__(self, coalition: tuple[str, ...]) -> float:
        """Evaluate the utility of a coalition of participant ids."""
        raise NotImplementedError

    def evaluations(self) -> int:
        """How many (non-empty) coalition evaluations have been performed."""
        return 0


class AccuracyUtility(UtilityFunction):
    """Utility = accuracy of given model parameters on a held-out test set.

    This is not itself coalition-aware; it is the scoring piece shared by the
    coalition utilities below and by the on-chain contribution contract.
    """

    def __init__(
        self,
        test_features: np.ndarray,
        test_labels: np.ndarray,
        n_classes: int,
        metric: str = "accuracy",
    ) -> None:
        self.test_features = np.asarray(test_features, dtype=np.float64)
        self.test_labels = np.asarray(test_labels).ravel().astype(int)
        if self.test_features.shape[0] != self.test_labels.size:
            raise ValidationError("test features and labels disagree on sample count")
        if self.test_features.shape[0] == 0:
            raise ValidationError("utility requires a non-empty test set")
        if metric not in ("accuracy", "macro_f1"):
            raise ValidationError(f"unknown metric {metric!r}")
        self.n_classes = int(n_classes)
        self.metric = metric

    def score(self, parameters: ModelParameters) -> float:
        """Score model parameters on the held-out set."""
        model = LogisticRegressionModel(self.test_features.shape[1], self.n_classes)
        model.set_parameters(parameters)
        predictions = model.predict(self.test_features)
        if self.metric == "accuracy":
            return accuracy(self.test_labels, predictions)
        return macro_f1(self.test_labels, predictions, self.n_classes)

    def score_vector(self, vector: np.ndarray) -> float:
        """Score a flat parameter vector (the on-chain representation)."""
        model = LogisticRegressionModel(self.test_features.shape[1], self.n_classes)
        model.set_vector(vector)
        predictions = model.predict(self.test_features)
        if self.metric == "accuracy":
            return accuracy(self.test_labels, predictions)
        return macro_f1(self.test_labels, predictions, self.n_classes)

    def __call__(self, coalition: tuple[str, ...]) -> float:  # pragma: no cover - guidance only
        raise UtilityError(
            "AccuracyUtility scores model parameters; wrap it in RetrainUtility or "
            "CoalitionModelUtility to evaluate coalitions"
        )


class RetrainUtility(UtilityFunction):
    """u(S) = test accuracy of a model retrained from scratch on S's pooled data."""

    def __init__(
        self,
        owner_features: Mapping[str, np.ndarray],
        owner_labels: Mapping[str, np.ndarray],
        scorer: AccuracyUtility,
        trainer: CentralizedTrainer | None = None,
        seed: int = 0,
    ) -> None:
        if set(owner_features) != set(owner_labels):
            raise ValidationError("owner_features and owner_labels must cover the same owners")
        if not owner_features:
            raise ValidationError("at least one owner is required")
        self.owner_features = {k: np.asarray(v, dtype=np.float64) for k, v in owner_features.items()}
        self.owner_labels = {k: np.asarray(v).ravel().astype(int) for k, v in owner_labels.items()}
        self.scorer = scorer
        n_features = next(iter(self.owner_features.values())).shape[1]
        self.trainer = trainer or CentralizedTrainer(n_features, scorer.n_classes)
        self.seed = seed
        self._evaluations = 0

    def __call__(self, coalition: tuple[str, ...]) -> float:
        coalition = tuple(sorted(coalition))
        if not coalition:
            return self.empty_value
        unknown = [owner for owner in coalition if owner not in self.owner_features]
        if unknown:
            raise UtilityError(f"coalition names unknown owners: {unknown}")
        self._evaluations += 1
        parameters = self.trainer.train_on_coalition(
            self.owner_features, self.owner_labels, coalition, seed=self.seed
        )
        return self.scorer.score(parameters)

    def evaluations(self) -> int:
        return self._evaluations


class CoalitionModelUtility(UtilityFunction):
    """u(S) = test accuracy of the plain average of S's member models.

    ``member_models`` maps a participant id (an owner, or a GroupSV group label)
    to its model parameters.  This mirrors Algorithm 1 line 4: coalition models
    are aggregated from the already-trained member models, not retrained.
    """

    def __init__(self, member_models: Mapping[str, ModelParameters], scorer: AccuracyUtility) -> None:
        if not member_models:
            raise ValidationError("at least one member model is required")
        self.member_models = dict(member_models)
        self.scorer = scorer
        self._evaluations = 0

    def __call__(self, coalition: tuple[str, ...]) -> float:
        coalition = tuple(sorted(coalition))
        if not coalition:
            return self.empty_value
        unknown = [member for member in coalition if member not in self.member_models]
        if unknown:
            raise UtilityError(f"coalition names unknown members: {unknown}")
        self._evaluations += 1
        averaged = ModelParameters.mean([self.member_models[member] for member in coalition])
        return self.scorer.score(averaged)

    def evaluations(self) -> int:
        return self._evaluations


class CachedUtility(UtilityFunction):
    """Memoizing wrapper around any utility function."""

    def __init__(self, inner: UtilityFunction | Callable[[tuple[str, ...]], float]) -> None:
        self.inner = inner
        self._cache: dict[tuple[str, ...], float] = {}
        if isinstance(inner, UtilityFunction):
            self.empty_value = inner.empty_value

    def __call__(self, coalition: tuple[str, ...]) -> float:
        key = tuple(sorted(coalition))
        if not key:
            return self.empty_value
        if key not in self._cache:
            self._cache[key] = float(self.inner(key))
        return self._cache[key]

    def evaluations(self) -> int:
        """Number of distinct coalitions evaluated (cache size)."""
        return len(self._cache)

    def cache_contents(self) -> dict[tuple[str, ...], float]:
        """A copy of the memo table (useful for audits and tests)."""
        return dict(self._cache)
