"""Shapley-value contribution evaluation.

* :mod:`repro.shapley.engine` — the vectorized bitmask engine: subset-sum
  coalition-model construction, batched scoring, and single-pass exact-SV
  assembly over ``(2^n,)`` utility vectors.
* :mod:`repro.shapley.utility` — utility functions ``u(S)`` over coalitions
  (test accuracy of a coalition model, the paper's choice, plus alternatives).
  :class:`~repro.shapley.utility.AccuracyUtility` exposes both the scalar
  ``score_vector`` and the batched ``score_batch`` (one einsum over a whole
  ``(k, d)`` stack of flat parameter vectors).
* :mod:`repro.shapley.backend` — evaluation backends: the common batched
  interface behind every utility family, including the process-pool parallel
  coalition-retraining path for :class:`~repro.shapley.utility.RetrainUtility`.
* :mod:`repro.shapley.native` — the exact ("native") Shapley value, Eq. (1).
* :mod:`repro.shapley.group` — GroupSV, Algorithm 1 of the paper.
* :mod:`repro.shapley.montecarlo` — permutation-sampling and truncated
  Monte-Carlo approximations (extension baselines).
* :mod:`repro.shapley.metrics` — similarity measures between SV vectors
  (cosine similarity used in Fig. 2, plus rank correlation and L2).
"""

from repro.shapley.backend import (
    EvaluationBackend,
    ProcessPoolEvaluationBackend,
    SerialEvaluationBackend,
    default_backend,
    make_backend,
)
from repro.shapley.engine import (
    BitmaskCoalitionEngine,
    coalition_mask,
    coalition_means,
    coalition_utility_table,
    exact_shapley_from_utility_vector,
    mask_coalition,
    player_bits,
    shapley_weight_table,
    subset_sums,
    utility_table_to_vector,
)
from repro.shapley.group import (
    GroupShapleyResult,
    assemble_group_values,
    compute_group_shapley,
    group_members,
    make_groups,
)
from repro.shapley.metrics import cosine_similarity, l2_distance, max_abs_error, spearman_correlation
from repro.shapley.montecarlo import permutation_sampling_shapley, truncated_monte_carlo_shapley
from repro.shapley.native import exact_shapley_from_utilities, native_shapley
from repro.shapley.utility import (
    AccuracyUtility,
    CachedUtility,
    CoalitionModelUtility,
    RetrainUtility,
    UtilityFunction,
)

__all__ = [
    "EvaluationBackend",
    "SerialEvaluationBackend",
    "ProcessPoolEvaluationBackend",
    "default_backend",
    "make_backend",
    "assemble_group_values",
    "BitmaskCoalitionEngine",
    "coalition_mask",
    "coalition_means",
    "coalition_utility_table",
    "exact_shapley_from_utility_vector",
    "mask_coalition",
    "player_bits",
    "shapley_weight_table",
    "subset_sums",
    "utility_table_to_vector",
    "GroupShapleyResult",
    "compute_group_shapley",
    "group_members",
    "make_groups",
    "cosine_similarity",
    "l2_distance",
    "max_abs_error",
    "spearman_correlation",
    "permutation_sampling_shapley",
    "truncated_monte_carlo_shapley",
    "exact_shapley_from_utilities",
    "native_shapley",
    "AccuracyUtility",
    "CachedUtility",
    "CoalitionModelUtility",
    "RetrainUtility",
    "UtilityFunction",
]
