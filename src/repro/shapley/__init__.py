"""Shapley-value contribution evaluation.

* :mod:`repro.shapley.utility` — utility functions ``u(S)`` over coalitions
  (test accuracy of a coalition model, the paper's choice, plus alternatives).
* :mod:`repro.shapley.native` — the exact ("native") Shapley value, Eq. (1).
* :mod:`repro.shapley.group` — GroupSV, Algorithm 1 of the paper.
* :mod:`repro.shapley.montecarlo` — permutation-sampling and truncated
  Monte-Carlo approximations (extension baselines).
* :mod:`repro.shapley.metrics` — similarity measures between SV vectors
  (cosine similarity used in Fig. 2, plus rank correlation and L2).
"""

from repro.shapley.group import GroupShapleyResult, compute_group_shapley, group_members, make_groups
from repro.shapley.metrics import cosine_similarity, l2_distance, max_abs_error, spearman_correlation
from repro.shapley.montecarlo import permutation_sampling_shapley, truncated_monte_carlo_shapley
from repro.shapley.native import exact_shapley_from_utilities, native_shapley
from repro.shapley.utility import (
    AccuracyUtility,
    CachedUtility,
    CoalitionModelUtility,
    RetrainUtility,
    UtilityFunction,
)

__all__ = [
    "GroupShapleyResult",
    "compute_group_shapley",
    "group_members",
    "make_groups",
    "cosine_similarity",
    "l2_distance",
    "max_abs_error",
    "spearman_correlation",
    "permutation_sampling_shapley",
    "truncated_monte_carlo_shapley",
    "exact_shapley_from_utilities",
    "native_shapley",
    "AccuracyUtility",
    "CachedUtility",
    "CoalitionModelUtility",
    "RetrainUtility",
    "UtilityFunction",
]
