"""The exact ("native") Shapley value, Eq. (1) of the paper.

For player i among n players with utility u(.):

    v_i = (1/n) * sum_{S ⊆ I \\ {i}}  [ u(S ∪ {i}) − u(S) ] / C(n−1, |S|)

The implementation enumerates all coalitions once, caches their utilities, and
then assembles every player's value from the cached table — so the cost is
2^n utility evaluations regardless of n, matching the paper's complexity
discussion (native SV needs 2^n coalition models).

Two execution paths share this module:

* :func:`native_shapley` routes through :mod:`repro.shapley.engine`: utilities
  are gathered into a bitmask-indexed vector (in one batched scoring pass when
  the utility supports it) and the Shapley weighting is applied with
  vectorized reductions.
* :func:`exact_shapley_from_utilities` is the legacy scalar assembly, kept as
  the reference oracle the engine is tested against and as the deterministic
  assembly the on-chain contract replays.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.exceptions import ShapleyError
from repro.shapley.engine import (
    coalition_mask,
    exact_shapley_from_utility_vector,
    player_bits,
)
from repro.shapley.utility import CachedUtility, UtilityFunction


def all_coalitions(players: Iterable[str]) -> list[tuple[str, ...]]:
    """Every subset of ``players`` (including the empty set), in size order."""
    players = sorted(players)
    coalitions: list[tuple[str, ...]] = []
    for size in range(len(players) + 1):
        coalitions.extend(combinations(players, size))
    return coalitions


def native_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
) -> dict[str, float]:
    """Exact Shapley values for every player.

    Args:
        players: participant identifiers.
        utility: coalition utility ``u(S)``; it is wrapped in a cache so each of
            the 2^n coalitions is evaluated exactly once.  Utilities exposing a
            vectorized power-set evaluation (e.g.
            :class:`~repro.shapley.utility.CoalitionModelUtility`) are scored
            in one batched pass instead of 2^n scalar calls.

    Returns:
        Mapping of player id to its Shapley value.
    """
    if not players:
        raise ShapleyError("native_shapley requires at least one player")
    if len(set(players)) != len(players):
        raise ShapleyError("player ids must be unique")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)

    vector = None
    vector_hook = getattr(cached, "coalition_utility_vector", None)
    if vector_hook is not None:
        vector = vector_hook(players)
    if vector is None:
        bits = player_bits(players)
        vector = np.empty(1 << len(players), dtype=np.float64)
        vector[0] = cached(())
        for coalition in all_coalitions(players):
            if coalition:
                vector[coalition_mask(coalition, bits)] = cached(coalition)
    values = exact_shapley_from_utility_vector(vector)
    return {player: float(value) for player, value in zip(players, values)}


def exact_shapley_from_utilities(
    players: list[str],
    utilities: Mapping[tuple[str, ...], float],
    empty_value: float | None = None,
) -> dict[str, float]:
    """Assemble exact Shapley values from a pre-computed coalition-utility table.

    The table must contain every non-empty subset of ``players`` (keys are
    sorted tuples).  Splitting the computation this way lets callers (and the
    on-chain contract) reuse one utility table for every player, and lets tests
    check the combinatorial weighting independently of model training.

    This is the scalar reference implementation; use
    :func:`repro.shapley.engine.exact_shapley_from_utility_vector` for the
    vectorized bitmask path.

    Args:
        players: participant identifiers.
        utilities: coalition -> utility table.
        empty_value: utility of the empty coalition when the table has no
            explicit ``()`` entry.  Defaults to 0.0 — the historical behavior —
            but callers holding a :class:`~repro.shapley.utility.UtilityFunction`
            should pass its ``empty_value`` so a non-zero u(∅) is honored
            consistently instead of being silently replaced.
    """
    players = sorted(players)
    n = len(players)
    if () in utilities:
        empty_utility = float(utilities[()])
    elif empty_value is not None:
        empty_utility = float(empty_value)
    else:
        empty_utility = 0.0
    values: dict[str, float] = {}
    for player in players:
        others = [p for p in players if p != player]
        total = 0.0
        for size in range(n):
            weight = 1.0 / (n * comb(n - 1, size))
            for subset in combinations(others, size):
                without = tuple(sorted(subset))
                with_player = tuple(sorted(subset + (player,)))
                if without not in utilities and without != ():
                    raise ShapleyError(f"utility table is missing coalition {without}")
                if with_player not in utilities:
                    raise ShapleyError(f"utility table is missing coalition {with_player}")
                u_without = utilities[without] if without else empty_utility
                total += weight * (utilities[with_player] - u_without)
        values[player] = total
    return values


def efficiency_gap(values: Mapping[str, float], grand_utility: float, empty_utility: float = 0.0) -> float:
    """|sum_i v_i − (u(I) − u(∅))| — zero for an exact Shapley computation.

    Exposed as a helper because both tests and the on-chain audit use the
    efficiency axiom as a cheap internal-consistency check.
    """
    return abs(sum(values.values()) - (grand_utility - empty_utility))
