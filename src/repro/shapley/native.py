"""The exact ("native") Shapley value, Eq. (1) of the paper.

For player i among n players with utility u(.):

    v_i = (1/n) * sum_{S ⊆ I \\ {i}}  [ u(S ∪ {i}) − u(S) ] / C(n−1, |S|)

The implementation enumerates all coalitions once, caches their utilities, and
then assembles every player's value from the cached table — so the cost is
2^n utility evaluations regardless of n, matching the paper's complexity
discussion (native SV needs 2^n coalition models).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Iterable, Mapping

from repro.exceptions import ShapleyError
from repro.shapley.utility import CachedUtility, UtilityFunction


def all_coalitions(players: Iterable[str]) -> list[tuple[str, ...]]:
    """Every subset of ``players`` (including the empty set), in size order."""
    players = sorted(players)
    coalitions: list[tuple[str, ...]] = []
    for size in range(len(players) + 1):
        coalitions.extend(combinations(players, size))
    return coalitions


def native_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
) -> dict[str, float]:
    """Exact Shapley values for every player.

    Args:
        players: participant identifiers.
        utility: coalition utility ``u(S)``; it is wrapped in a cache so each of
            the 2^n coalitions is evaluated exactly once.

    Returns:
        Mapping of player id to its Shapley value.
    """
    if not players:
        raise ShapleyError("native_shapley requires at least one player")
    if len(set(players)) != len(players):
        raise ShapleyError("player ids must be unique")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)

    utilities = {coalition: cached(coalition) for coalition in all_coalitions(players)}
    return exact_shapley_from_utilities(players, utilities)


def exact_shapley_from_utilities(
    players: list[str],
    utilities: Mapping[tuple[str, ...], float],
) -> dict[str, float]:
    """Assemble exact Shapley values from a pre-computed coalition-utility table.

    The table must contain every subset of ``players`` (keys are sorted tuples).
    Splitting the computation this way lets callers (and the on-chain contract)
    reuse one utility table for every player, and lets tests check the
    combinatorial weighting independently of model training.
    """
    players = sorted(players)
    n = len(players)
    values: dict[str, float] = {}
    for player in players:
        others = [p for p in players if p != player]
        total = 0.0
        for size in range(n):
            weight = 1.0 / (n * comb(n - 1, size))
            for subset in combinations(others, size):
                without = tuple(sorted(subset))
                with_player = tuple(sorted(subset + (player,)))
                if without not in utilities and without != ():
                    raise ShapleyError(f"utility table is missing coalition {without}")
                if with_player not in utilities:
                    raise ShapleyError(f"utility table is missing coalition {with_player}")
                u_without = utilities.get(without, utilities.get((), 0.0))
                total += weight * (utilities[with_player] - u_without)
        values[player] = total
    return values


def efficiency_gap(values: Mapping[str, float], grand_utility: float, empty_utility: float = 0.0) -> float:
    """|sum_i v_i − (u(I) − u(∅))| — zero for an exact Shapley computation.

    Exposed as a helper because both tests and the on-chain audit use the
    efficiency axiom as a cheap internal-consistency check.
    """
    return abs(sum(values.values()) - (grand_utility - empty_utility))
