"""Sampled GroupSV: a stratified + truncated permutation estimator with receipts.

Exact GroupSV enumerates all 2^m group coalitions, which caps the number of
aggregation groups at :data:`repro.shapley.engine.MAX_PLAYERS`.  Cross-device
rounds shard a large cohort into dozens-to-hundreds of committees, so the
contribution contract needs an estimator whose cost is chosen, not exponential
— *and* whose output can still be audited from chain state alone.

This module provides that estimator and the receipt type the contract and
:func:`repro.core.audit.audit_chain` share:

* **Position stratification.**  Permutations are drawn in blocks of ``m``
  cyclic rotations of one uniform permutation, so within every block each
  player occupies each position exactly once.  A cyclic shift of a uniform
  random permutation is itself uniform, so the estimator stays unbiased while
  the across-position component of the marginal variance is removed from each
  block.
* **Truncation.**  Once a permutation's running utility is within
  ``tolerance`` of the grand coalition's utility, the remaining marginals are
  zeroed (Ghorbani & Zou's TMC rule).  Unlike
  :func:`repro.shapley.montecarlo.truncated_monte_carlo_shapley`, all prefixes
  are still *evaluated* — model scoring here is one batched GEMM over flat
  vectors, so skipping rows would save little and would break the one
  ``evaluate_batch`` call per block.  Truncation is applied purely as
  variance reduction on the accumulated marginals.
* **Confidence intervals.**  Per-player marginal samples accumulate sum and
  sum-of-squares, yielding a normal-approximation half-width
  ``z · s / sqrt(N)``.  The half-width is part of the on-chain receipt: the
  audit re-runs the estimator from the recorded seed and checks the stored
  estimate lies within the stored bound, instead of exact equality.

Everything here is deterministic in ``(players, member vectors, n_samples,
seed)`` — the properties the audit relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ShapleyError, UtilityError, ValidationError
from repro.shapley.montecarlo import _prefix_coalitions
from repro.shapley.utility import CachedUtility, UtilityFunction
from repro.utils.rng import spawn_rng

# Normal-quantile table for the supported confidence levels.  Hard-coded so the
# estimator needs no scipy; values are z such that P(|Z| <= z) = confidence.
_Z_SCORES = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}

# Truncation tolerance and confidence level are properties of the estimator
# *code version* (like the assembly algorithm itself), not registry-pinned
# knobs: the chain pins (estimator name, n_samples) and the audit recomputes
# with the constants of the code it runs.
TRUNCATION_TOLERANCE = 1e-3
DEFAULT_CONFIDENCE = 0.95


def estimator_seed_for_round(permutation_seed: int, round_number: int) -> int:
    """The canonical estimator seed for a round — a pure function of chain state.

    Derived from the registry's pinned ``permutation_seed`` and the round
    number, so the proposer has no freedom to shop for a favourable sample and
    the auditor can re-derive the seed without trusting the record.
    """
    return (int(permutation_seed) * 1_000_003 + int(round_number) * 7919) & 0x7FFFFFFF


@dataclass(frozen=True)
class ShapleyEstimate:
    """A sampled-SV result: point estimates plus everything a receipt needs."""

    values: dict[str, float]
    half_widths: dict[str, float]
    n_permutations: int
    seed: int
    confidence: float
    tolerance: float
    grand_utility: float
    evaluations: int = field(default=0, compare=False)

    def within_bounds(self, other: Mapping[str, float]) -> bool:
        """Whether ``other``'s per-player values all lie inside this estimate's CI."""
        if set(other) != set(self.values):
            return False
        return all(
            abs(float(other[player]) - self.values[player]) <= self.half_widths[player]
            for player in self.values
        )


class VectorModelUtility(UtilityFunction):
    """u(S) = score of the plain average of S's member *flat parameter vectors*.

    The contribution contract holds flat vectors (the on-chain representation),
    not :class:`~repro.fl.model.ModelParameters`; this utility works on them
    directly, with the same sorted left-to-right ``fold_mean`` accumulation as
    :class:`~repro.shapley.utility.CoalitionModelUtility` so the two agree bit
    for bit on shared coalitions.  ``evaluate_coalitions`` scores the whole
    batch in one pass, which is what lets the block estimator above evaluate a
    block's m² prefixes with a single GEMM.
    """

    def __init__(self, member_vectors: Mapping[str, np.ndarray], scorer) -> None:
        if not member_vectors:
            raise ValidationError("at least one member vector is required")
        self.member_vectors = {
            member: np.asarray(vector, dtype=np.float64).ravel()
            for member, vector in member_vectors.items()
        }
        dimensions = {vector.size for vector in self.member_vectors.values()}
        if len(dimensions) != 1:
            raise ValidationError("member vectors disagree on dimension")
        self.scorer = scorer
        self._evaluations = 0

    def _check_coalition(self, coalition: tuple[str, ...]) -> tuple[str, ...]:
        coalition = tuple(sorted(coalition))
        unknown = [member for member in coalition if member not in self.member_vectors]
        if unknown:
            raise UtilityError(f"coalition names unknown members: {unknown}")
        return coalition

    def __call__(self, coalition: tuple[str, ...]) -> float:
        from repro.shapley.engine import fold_mean, score_vectors

        coalition = self._check_coalition(coalition)
        if not coalition:
            return self.empty_value
        self._evaluations += 1
        mean = fold_mean(np.stack([self.member_vectors[member] for member in coalition]))
        return float(score_vectors(self.scorer, mean[None, :])[0])

    def evaluations(self) -> int:
        return self._evaluations

    def evaluate_coalitions(self, coalitions: Sequence[tuple[str, ...]]) -> list[float]:
        from repro.shapley.engine import fold_mean, score_vectors

        if not coalitions:
            return []
        keys = [self._check_coalition(coalition) for coalition in coalitions]
        non_empty = [key for key in keys if key]
        if not non_empty:
            return [self.empty_value] * len(keys)
        dimension = next(iter(self.member_vectors.values())).size
        rows = np.empty((len(non_empty), dimension), dtype=np.float64)
        for slot, coalition in enumerate(non_empty):
            rows[slot] = fold_mean(
                np.stack([self.member_vectors[member] for member in coalition])
            )
        self._evaluations += len(non_empty)
        scores = iter(score_vectors(self.scorer, rows))
        return [float(next(scores)) if key else self.empty_value for key in keys]


def stratified_permutation_shapley(
    players: Sequence[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 128,
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    tolerance: float = TRUNCATION_TOLERANCE,
) -> ShapleyEstimate:
    """Position-stratified, truncated permutation sampling with a CI per player.

    Permutations are consumed in blocks of ``m = len(players)`` cyclic
    rotations of one uniform draw; ``n_permutations`` is rounded *up* to a
    whole number of blocks and the actual count is reported in the returned
    estimate (receipts must record the actual count, not the request).  Each
    block's m² prefix coalitions are evaluated in one
    :meth:`~repro.shapley.utility.CachedUtility.evaluate_batch` call.

    Args:
        players: participant identifiers (at least one).
        utility: coalition utility ``u(S)`` (wrapped in a cache if needed).
        n_permutations: requested number of sampled permutations (≥ 2, so the
            sample variance is defined).
        seed: RNG seed; the estimate is a pure function of the arguments.
        confidence: CI level — one of 0.90 / 0.95 / 0.99.
        tolerance: truncation threshold on ``|u(grand) − u(prefix)|``; 0
            disables truncation.
    """
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 2:
        raise ShapleyError("n_permutations must be at least 2 (sample variance needs it)")
    if tolerance < 0:
        raise ShapleyError("tolerance must be non-negative")
    z_score = _Z_SCORES.get(float(confidence))
    if z_score is None:
        raise ShapleyError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence!r}"
        )
    players = sorted(players)
    if len(set(players)) != len(players):
        raise ShapleyError("player ids must be unique")
    m = len(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    empty_value = cached.empty_value
    grand_utility = float(cached(tuple(players)))
    index = {player: position for position, player in enumerate(players)}
    n_blocks = -(-n_permutations // m)
    total = n_blocks * m
    rng = spawn_rng("stratified-shapley", seed, m, n_permutations)
    sums = np.zeros(m, dtype=np.float64)
    sums_of_squares = np.zeros(m, dtype=np.float64)
    for _ in range(n_blocks):
        base = [players[i] for i in rng.permutation(m)]
        orders = [base[rotation:] + base[:rotation] for rotation in range(m)]
        stacked = [prefix for order in orders for prefix in _prefix_coalitions(order)]
        prefix_utilities = cached.evaluate_batch(stacked).reshape(m, m)
        marginals = np.diff(prefix_utilities, axis=1, prepend=empty_value)
        if tolerance > 0:
            within = np.abs(grand_utility - prefix_utilities) <= tolerance
            for row in range(m):
                hits = np.flatnonzero(within[row])
                if hits.size:
                    marginals[row, hits[0] + 1 :] = 0.0
        # Per-permutation accumulation in draw order keeps every player's
        # floating-point summation order independent of batching internals.
        for row, order in enumerate(orders):
            columns = [index[player] for player in order]
            sums[columns] += marginals[row]
            sums_of_squares[columns] += marginals[row] ** 2
    means = sums / total
    # Sample variance with ddof=1; clipped at zero against float cancellation.
    variances = np.maximum(0.0, (sums_of_squares - total * means**2) / (total - 1))
    half_widths = z_score * np.sqrt(variances / total)
    return ShapleyEstimate(
        values={player: float(means[index[player]]) for player in players},
        half_widths={player: float(half_widths[index[player]]) for player in players},
        n_permutations=total,
        seed=int(seed),
        confidence=float(confidence),
        tolerance=float(tolerance),
        grand_utility=grand_utility,
        evaluations=cached.evaluations(),
    )


def sampled_group_shapley(
    group_labels: Sequence[str],
    group_vectors: Mapping[str, np.ndarray],
    scorer,
    n_permutations: int = 128,
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    tolerance: float = TRUNCATION_TOLERANCE,
) -> ShapleyEstimate:
    """Sampled GroupSV over aggregated group models (Algorithm 1, sampled).

    The group game's players are the group labels; utilities average the
    groups' flat model vectors and score the result, exactly as the exact path
    does — only the SV assembly differs.  Deterministic in all arguments.
    """
    if sorted(group_labels) != sorted(group_vectors):
        raise ShapleyError("group_labels and group_vectors must cover the same groups")
    utility = CachedUtility(VectorModelUtility(group_vectors, scorer))
    return stratified_permutation_shapley(
        list(group_labels),
        utility,
        n_permutations=n_permutations,
        seed=seed,
        confidence=confidence,
        tolerance=tolerance,
    )
