"""Sampled GroupSV: a stratified + truncated permutation estimator with receipts.

Exact GroupSV enumerates all 2^m group coalitions, which caps the number of
aggregation groups at :data:`repro.shapley.engine.MAX_PLAYERS`.  Cross-device
rounds shard a large cohort into dozens-to-hundreds of committees, so the
contribution contract needs an estimator whose cost is chosen, not exponential
— *and* whose output can still be audited from chain state alone.

This module provides that estimator and the receipt type the contract and
:func:`repro.core.audit.audit_chain` share:

* **Position stratification.**  Permutations are drawn in blocks of ``m``
  cyclic rotations of one uniform permutation, so within every block each
  player occupies each position exactly once.  A cyclic shift of a uniform
  random permutation is itself uniform, so the estimator stays unbiased while
  the across-position component of the marginal variance is removed from each
  block.
* **Truncation.**  Once a permutation's running utility is within
  ``tolerance`` of the grand coalition's utility, the remaining marginals are
  zeroed (Ghorbani & Zou's TMC rule).  Unlike
  :func:`repro.shapley.montecarlo.truncated_monte_carlo_shapley`, all prefixes
  are still *evaluated* — model scoring here is one batched GEMM over flat
  vectors, so skipping rows would save little and would break the one
  ``evaluate_batch`` call per block.  Truncation is applied purely as
  variance reduction on the accumulated marginals.
* **Confidence intervals.**  Per-player marginal samples accumulate sum and
  sum-of-squares, yielding a normal-approximation half-width
  ``z · s / sqrt(N)``.  The half-width is part of the on-chain receipt: the
  audit re-runs the estimator from the recorded seed and checks the stored
  estimate lies within the stored bound, instead of exact equality.

Everything here is deterministic in ``(players, member vectors, n_samples,
seed)`` — the properties the audit relies on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ShapleyError, UtilityError, ValidationError
from repro.shapley.montecarlo import _prefix_coalitions
from repro.shapley.utility import CachedUtility, UtilityFunction
from repro.utils.rng import spawn_rng

# How the estimator materializes and scores prefix coalitions.  "scalar" is the
# original one-coalition-at-a-time walk through ``CachedUtility`` — kept verbatim
# as the parity-pinned oracle.  "batched" builds each block's prefix rows with
# incremental vector updates, dedupes across strata through a bitmask score
# cache, and scores whole blocks in one GEMM through an ``EvaluationBackend``.
# "auto" picks batched whenever the game is a bare :class:`VectorModelUtility`
# (the contract / cross-device path) and scalar otherwise.  Both paths are
# bit-identical; tests monkeypatch this module default to cross-check audits.
_DEFAULT_METHOD = "auto"
_METHODS = ("auto", "batched", "scalar")

# Normal-quantile table for the supported confidence levels.  Hard-coded so the
# estimator needs no scipy; values are z such that P(|Z| <= z) = confidence.
_Z_SCORES = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}

# Truncation tolerance and confidence level are properties of the estimator
# *code version* (like the assembly algorithm itself), not registry-pinned
# knobs: the chain pins (estimator name, n_samples) and the audit recomputes
# with the constants of the code it runs.
TRUNCATION_TOLERANCE = 1e-3
DEFAULT_CONFIDENCE = 0.95


def estimator_seed_for_round(permutation_seed: int, round_number: int) -> int:
    """The canonical estimator seed for a round — a pure function of chain state.

    Derived from the registry's pinned ``permutation_seed`` and the round
    number, so the proposer has no freedom to shop for a favourable sample and
    the auditor can re-derive the seed without trusting the record.
    """
    return (int(permutation_seed) * 1_000_003 + int(round_number) * 7919) & 0x7FFFFFFF


@dataclass(frozen=True)
class ShapleyEstimate:
    """A sampled-SV result: point estimates plus everything a receipt needs."""

    values: dict[str, float]
    half_widths: dict[str, float]
    n_permutations: int
    seed: int
    confidence: float
    tolerance: float
    grand_utility: float
    evaluations: int = field(default=0, compare=False)
    #: Batched-pipeline telemetry (coalitions scored, cache hits, batch count,
    #: backend identity and wall time).  ``None`` on the scalar oracle path.
    #: Excluded from equality so scalar/batched estimates compare equal.
    telemetry: dict | None = field(default=None, compare=False)

    def within_bounds(self, other: Mapping[str, float]) -> bool:
        """Whether ``other``'s per-player values all lie inside this estimate's CI."""
        if set(other) != set(self.values):
            return False
        return all(
            abs(float(other[player]) - self.values[player]) <= self.half_widths[player]
            for player in self.values
        )


class VectorModelUtility(UtilityFunction):
    """u(S) = score of the plain average of S's member *flat parameter vectors*.

    The contribution contract holds flat vectors (the on-chain representation),
    not :class:`~repro.fl.model.ModelParameters`; this utility works on them
    directly, with the same sorted left-to-right ``fold_mean`` accumulation as
    :class:`~repro.shapley.utility.CoalitionModelUtility` so the two agree bit
    for bit on shared coalitions.  ``evaluate_coalitions`` scores the whole
    batch in one pass, which is what lets the block estimator above evaluate a
    block's m² prefixes with a single GEMM.
    """

    def __init__(self, member_vectors: Mapping[str, np.ndarray], scorer) -> None:
        if not member_vectors:
            raise ValidationError("at least one member vector is required")
        self.member_vectors = {
            member: np.asarray(vector, dtype=np.float64).ravel()
            for member, vector in member_vectors.items()
        }
        dimensions = {vector.size for vector in self.member_vectors.values()}
        if len(dimensions) != 1:
            raise ValidationError("member vectors disagree on dimension")
        self.scorer = scorer
        self._evaluations = 0

    def _check_coalition(self, coalition: tuple[str, ...]) -> tuple[str, ...]:
        coalition = tuple(sorted(coalition))
        unknown = [member for member in coalition if member not in self.member_vectors]
        if unknown:
            raise UtilityError(f"coalition names unknown members: {unknown}")
        return coalition

    def __call__(self, coalition: tuple[str, ...]) -> float:
        from repro.shapley.engine import fold_mean, score_vectors

        coalition = self._check_coalition(coalition)
        if not coalition:
            return self.empty_value
        self._evaluations += 1
        mean = fold_mean(np.stack([self.member_vectors[member] for member in coalition]))
        return float(score_vectors(self.scorer, mean[None, :])[0])

    def evaluations(self) -> int:
        return self._evaluations

    def evaluate_coalitions(self, coalitions: Sequence[tuple[str, ...]]) -> list[float]:
        from repro.shapley.engine import fold_mean, score_vectors

        if not coalitions:
            return []
        keys = [self._check_coalition(coalition) for coalition in coalitions]
        non_empty = [key for key in keys if key]
        if not non_empty:
            return [self.empty_value] * len(keys)
        dimension = next(iter(self.member_vectors.values())).size
        rows = np.empty((len(non_empty), dimension), dtype=np.float64)
        for slot, coalition in enumerate(non_empty):
            rows[slot] = fold_mean(
                np.stack([self.member_vectors[member] for member in coalition])
            )
        self._evaluations += len(non_empty)
        scores = iter(score_vectors(self.scorer, rows))
        return [float(next(scores)) if key else self.empty_value for key in keys]


def _batched_stratified(
    players: list[str],
    utility: VectorModelUtility,
    n_permutations: int,
    seed: int,
    z_score: float,
    confidence: float,
    tolerance: float,
    backend,
) -> ShapleyEstimate:
    """The batched block estimator — bit-identical to the scalar oracle.

    Three restructurings, none of which may change a single output bit:

    * **Incremental prefix rows.**  For one rotation, the m prefix means are
      built in a single ``(m, d)`` matrix by walking the *sorted* players in
      ascending order and slice-assigning / slice-adding each member vector
      into exactly the prefix rows that contain it.  Because the walk is in
      sorted order and the first present member is written by assignment, every
      row reproduces :func:`~repro.shapley.engine.fold_mean`'s left-to-right
      sorted accumulation bit for bit — in ~2m slice ops instead of m full
      coalition folds.
    * **Cross-strata dedupe.**  Coalitions are canonicalized as bitmasks over
      the sorted player positions; a mask→score dict persists across blocks so
      each distinct coalition is folded and scored exactly once, in the same
      first-seen (rotation-major, prefix-minor) order the scalar path's
      ``CachedUtility.evaluate_batch`` discovers misses.
    * **Backend-routed block scoring.**  All of a block's missing rows go to
      :meth:`EvaluationBackend.score_models` in one call — the serial backend
      is exactly ``score_vectors`` (one chunked GEMM), and the process-pool
      backend splits at multiples of the scorer's internal chunk size so the
      parallel reassembly is bitwise identical.
    """
    from repro.shapley.backend import default_backend

    if backend is None:
        backend = default_backend()
    m = len(players)
    vectors = np.stack([utility.member_vectors[player] for player in players])
    dimension = vectors.shape[1]
    empty_value = utility.empty_value
    scorer = utility.scorer
    backend_seconds = 0.0
    started = time.perf_counter()
    # The grand coalition goes through the identical single-row scoring path
    # the scalar oracle uses (fold + one-row batch), then seeds the cache.
    grand_utility = float(utility(tuple(players)))
    backend_seconds += time.perf_counter() - started
    scores_by_mask: dict[int, float] = {(1 << m) - 1: grand_utility}
    bits = [1 << position for position in range(m)]
    n_blocks = -(-n_permutations // m)
    total = n_blocks * m
    rng = spawn_rng("stratified-shapley", seed, m, n_permutations)
    sums = np.zeros(m, dtype=np.float64)
    sums_of_squares = np.zeros(m, dtype=np.float64)
    inverse_sizes = 1.0 / np.arange(1.0, m + 1.0)
    prefix_references = 0
    n_batches = 1  # the grand-coalition scoring call above
    prefix_rows = np.empty((m, dimension), dtype=np.float64)
    for _ in range(n_blocks):
        permutation = rng.permutation(m)
        doubled = np.concatenate([permutation, permutation])
        orders = [doubled[rotation : rotation + m] for rotation in range(m)]
        # First-seen pass: canonical masks for every prefix, recording each
        # uncached coalition once in the scalar oracle's discovery order.
        masks = [[0] * m for _ in range(m)]
        pending: dict[int, int] = {}
        pending_sites: list[tuple[int, int]] = []
        for rotation in range(m):
            mask = 0
            row_masks = masks[rotation]
            order = orders[rotation]
            for prefix in range(m):
                mask |= bits[order[prefix]]
                row_masks[prefix] = mask
                if mask not in scores_by_mask and mask not in pending:
                    pending[mask] = len(pending_sites)
                    pending_sites.append((rotation, prefix))
        prefix_references += m * m
        if pending_sites:
            batch = np.empty((len(pending_sites), dimension), dtype=np.float64)
            by_rotation: dict[int, list[tuple[int, int]]] = {}
            for slot, (rotation, prefix) in enumerate(pending_sites):
                by_rotation.setdefault(rotation, []).append((slot, prefix))
            for rotation, sites in by_rotation.items():
                order = orders[rotation]
                entry = np.empty(m, dtype=np.intp)
                entry[order] = np.arange(m)
                # Ascending-player slice fold: player p enters every prefix row
                # >= entry[p]; rows where p is the smallest present member get
                # an assignment (fold_mean's ``rows[0].copy()``), the rest an
                # in-place add — reproducing the sorted fold bit for bit.
                boundary = int(entry[0])
                prefix_rows[boundary:] = vectors[0]
                for player in range(1, m):
                    position = int(entry[player])
                    if position < boundary:
                        prefix_rows[position:boundary] = vectors[player]
                        prefix_rows[boundary:] += vectors[player]
                        boundary = position
                    else:
                        prefix_rows[position:] += vectors[player]
                for slot, prefix in sites:
                    np.multiply(prefix_rows[prefix], inverse_sizes[prefix], out=batch[slot])
            scoring_started = time.perf_counter()
            scores = backend.score_models(scorer, batch)
            backend_seconds += time.perf_counter() - scoring_started
            n_batches += 1
            utility._evaluations += len(pending_sites)
            for mask, slot in pending.items():
                scores_by_mask[mask] = float(scores[slot])
        prefix_utilities = np.empty((m, m), dtype=np.float64)
        for rotation in range(m):
            prefix_utilities[rotation] = [scores_by_mask[mask] for mask in masks[rotation]]
        marginals = np.diff(prefix_utilities, axis=1, prepend=empty_value)
        if tolerance > 0:
            within = np.abs(grand_utility - prefix_utilities) <= tolerance
            for row in range(m):
                hits = np.flatnonzero(within[row])
                if hits.size:
                    marginals[row, hits[0] + 1 :] = 0.0
        for row in range(m):
            columns = orders[row]
            sums[columns] += marginals[row]
            sums_of_squares[columns] += marginals[row] ** 2
    means = sums / total
    variances = np.maximum(0.0, (sums_of_squares - total * means**2) / (total - 1))
    half_widths = z_score * np.sqrt(variances / total)
    telemetry = {
        "coalitions": len(scores_by_mask),
        "cache_hits": prefix_references - (len(scores_by_mask) - 1),
        "batches": n_batches,
        "backend": backend.name,
        "n_workers": int(backend.n_workers),
        "backend_seconds": backend_seconds,
    }
    return ShapleyEstimate(
        values={player: float(means[position]) for position, player in enumerate(players)},
        half_widths={player: float(half_widths[position]) for position, player in enumerate(players)},
        n_permutations=total,
        seed=int(seed),
        confidence=float(confidence),
        tolerance=float(tolerance),
        grand_utility=grand_utility,
        evaluations=len(scores_by_mask),
        telemetry=telemetry,
    )


def stratified_permutation_shapley(
    players: Sequence[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 128,
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    tolerance: float = TRUNCATION_TOLERANCE,
    backend=None,
    method: str | None = None,
) -> ShapleyEstimate:
    """Position-stratified, truncated permutation sampling with a CI per player.

    Permutations are consumed in blocks of ``m = len(players)`` cyclic
    rotations of one uniform draw; ``n_permutations`` is rounded *up* to a
    whole number of blocks and the actual count is reported in the returned
    estimate (receipts must record the actual count, not the request).  Each
    block's m² prefix coalitions are evaluated in one
    :meth:`~repro.shapley.utility.CachedUtility.evaluate_batch` call.

    Args:
        players: participant identifiers (at least one).
        utility: coalition utility ``u(S)`` (wrapped in a cache if needed).
        n_permutations: requested number of sampled permutations (≥ 2, so the
            sample variance is defined).
        seed: RNG seed; the estimate is a pure function of the arguments.
        confidence: CI level — one of 0.90 / 0.95 / 0.99.
        tolerance: truncation threshold on ``|u(grand) − u(prefix)|``; 0
            disables truncation.
        backend: an :class:`~repro.shapley.backend.EvaluationBackend` for the
            batched path's block scoring (``None`` → the process-wide serial
            backend).  Purely off-chain: it changes wall time, never a bit of
            the estimate.  Ignored on the scalar path.
        method: ``"auto"`` (default), ``"batched"``, or ``"scalar"``.  Batched
            requires a bare :class:`VectorModelUtility` game; auto falls back
            to scalar for any other utility.  Both paths are bit-identical.
    """
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 2:
        raise ShapleyError("n_permutations must be at least 2 (sample variance needs it)")
    if tolerance < 0:
        raise ShapleyError("tolerance must be non-negative")
    z_score = _Z_SCORES.get(float(confidence))
    if z_score is None:
        raise ShapleyError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence!r}"
        )
    players = sorted(players)
    if len(set(players)) != len(players):
        raise ShapleyError("player ids must be unique")
    resolved = _DEFAULT_METHOD if method is None else str(method)
    if resolved not in _METHODS:
        raise ShapleyError(f"method must be one of {_METHODS}, got {method!r}")
    if resolved == "batched" and not isinstance(utility, VectorModelUtility):
        raise ShapleyError("method='batched' requires a VectorModelUtility game")
    if resolved != "scalar" and isinstance(utility, VectorModelUtility):
        return _batched_stratified(
            players, utility, n_permutations, seed, z_score, confidence, tolerance, backend
        )
    m = len(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    empty_value = cached.empty_value
    grand_utility = float(cached(tuple(players)))
    index = {player: position for position, player in enumerate(players)}
    n_blocks = -(-n_permutations // m)
    total = n_blocks * m
    rng = spawn_rng("stratified-shapley", seed, m, n_permutations)
    sums = np.zeros(m, dtype=np.float64)
    sums_of_squares = np.zeros(m, dtype=np.float64)
    for _ in range(n_blocks):
        base = [players[i] for i in rng.permutation(m)]
        orders = [base[rotation:] + base[:rotation] for rotation in range(m)]
        stacked = [prefix for order in orders for prefix in _prefix_coalitions(order)]
        prefix_utilities = cached.evaluate_batch(stacked).reshape(m, m)
        marginals = np.diff(prefix_utilities, axis=1, prepend=empty_value)
        if tolerance > 0:
            within = np.abs(grand_utility - prefix_utilities) <= tolerance
            for row in range(m):
                hits = np.flatnonzero(within[row])
                if hits.size:
                    marginals[row, hits[0] + 1 :] = 0.0
        # Per-permutation accumulation in draw order keeps every player's
        # floating-point summation order independent of batching internals.
        for row, order in enumerate(orders):
            columns = [index[player] for player in order]
            sums[columns] += marginals[row]
            sums_of_squares[columns] += marginals[row] ** 2
    means = sums / total
    # Sample variance with ddof=1; clipped at zero against float cancellation.
    variances = np.maximum(0.0, (sums_of_squares - total * means**2) / (total - 1))
    half_widths = z_score * np.sqrt(variances / total)
    return ShapleyEstimate(
        values={player: float(means[index[player]]) for player in players},
        half_widths={player: float(half_widths[index[player]]) for player in players},
        n_permutations=total,
        seed=int(seed),
        confidence=float(confidence),
        tolerance=float(tolerance),
        grand_utility=grand_utility,
        evaluations=cached.evaluations(),
    )


def sampled_group_shapley(
    group_labels: Sequence[str],
    group_vectors: Mapping[str, np.ndarray],
    scorer,
    n_permutations: int = 128,
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    tolerance: float = TRUNCATION_TOLERANCE,
    backend=None,
    method: str | None = None,
) -> ShapleyEstimate:
    """Sampled GroupSV over aggregated group models (Algorithm 1, sampled).

    The group game's players are the group labels; utilities average the
    groups' flat model vectors and score the result, exactly as the exact path
    does — only the SV assembly differs.  Deterministic in all arguments:
    ``backend`` and ``method`` change wall time only, never an output bit.
    """
    if sorted(group_labels) != sorted(group_vectors):
        raise ShapleyError("group_labels and group_vectors must cover the same groups")
    resolved = _DEFAULT_METHOD if method is None else str(method)
    if resolved not in _METHODS:
        raise ShapleyError(f"method must be one of {_METHODS}, got {method!r}")
    utility: UtilityFunction = VectorModelUtility(group_vectors, scorer)
    if resolved == "scalar":
        utility = CachedUtility(utility)
    return stratified_permutation_shapley(
        list(group_labels),
        utility,
        n_permutations=n_permutations,
        seed=seed,
        confidence=confidence,
        tolerance=tolerance,
        backend=backend,
        method=resolved,
    )
