"""GroupSV — Algorithm 1 of the paper.

Inputs: users I, their (masked) local weights, a shared random seed ``e``, the
round number ``r``, a utility function u(.), and the number of groups ``m``.

1. Permute the users with ``permutation(e, r, I)``.
2. Assign users to ``m`` groups following the permutation.
3. Build one group model per group by (securely) averaging its members' local
   weights.
4. Build coalition models for every subset of groups by *plain* averaging of
   the group models.
5. Compute each group's Shapley value over the m-player group game.
6. Assign each user 1/|G_j| of its group's value.

Steps 1-2 and 4-6 are pure functions implemented here; step 3 is performed by
secure aggregation (or plainly, for the unmasked reference path).  The on-chain
contribution contract calls into these same functions, so the protocol and the
standalone evaluator cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Mapping, Sequence

from repro.exceptions import GroupingError, ShapleyError
from repro.fl.model import ModelParameters
from repro.shapley.engine import (
    coalition_utility_table,
    exact_shapley_from_utility_vector,
    utility_table_to_vector,
)
from repro.shapley.native import exact_shapley_from_utilities
from repro.shapley.utility import AccuracyUtility, CoalitionModelUtility
from repro.utils.rng import spawn_rng


def permute_users(users: Sequence[str], seed: int, round_number: int) -> list[str]:
    """The permutation π = permutation(e, r, I) from Algorithm 1 line 1.

    Deterministic in (seed, round, user set); independent of input order.
    """
    if not users:
        raise GroupingError("cannot permute an empty user list")
    ordered = sorted(users)
    rng = spawn_rng("groupsv-permutation", seed, round_number)
    permutation = rng.permutation(len(ordered))
    return [ordered[i] for i in permutation]


def make_groups(users: Sequence[str], m: int, seed: int, round_number: int) -> list[list[str]]:
    """Partition users into m groups following the round permutation (lines 1-2).

    Users are dealt round-robin along the permutation (user k goes to group
    k mod m), which matches the paper's example where consecutive permutation
    positions land in different groups (π = A,E,H,B,F,I,C,G,D with m = 3 gives
    G1 = [A,E,H]).
    """
    users = list(users)
    if len(set(users)) != len(users):
        raise GroupingError("user ids must be unique")
    if not 1 <= m <= len(users):
        raise GroupingError(f"number of groups m={m} must be in [1, {len(users)}]")
    permuted = permute_users(users, seed, round_number)
    groups: list[list[str]] = [[] for _ in range(m)]
    for position, user in enumerate(permuted):
        groups[position % m].append(user)
    if any(not group for group in groups):
        raise GroupingError("grouping produced an empty group")
    return groups


def group_members(groups: Sequence[Sequence[str]]) -> dict[str, int]:
    """Invert a grouping: map each user to its group index."""
    membership: dict[str, int] = {}
    for group_index, group in enumerate(groups):
        for user in group:
            if user in membership:
                raise GroupingError(f"user {user!r} appears in more than one group")
            membership[user] = group_index
    return membership


def aggregate_group_models(
    groups: Sequence[Sequence[str]],
    local_models: Mapping[str, ModelParameters],
) -> list[ModelParameters]:
    """Algorithm 1 line 3 (plain version): W_j = mean of group j's local weights.

    The blockchain path computes the same quantity through secure aggregation;
    this helper is the reference the integration tests compare against.
    """
    models = []
    for group in groups:
        missing = [user for user in group if user not in local_models]
        if missing:
            raise ShapleyError(f"missing local models for users: {missing}")
        models.append(ModelParameters.mean([local_models[user] for user in group]))
    return models


@dataclass(frozen=True)
class GroupShapleyResult:
    """Everything Algorithm 1 outputs (plus provenance useful for audits).

    Attributes:
        round_number: the round r this evaluation belongs to.
        n_groups: the configured m.
        groups: the user grouping actually used.
        group_values: Shapley value V_j per group index.
        user_values: per-user contributions v_i^r (group value split equally).
        global_model: the aggregation of all group models, W_G.
        coalition_utilities: the utility of every evaluated group coalition.
    """

    round_number: int
    n_groups: int
    groups: tuple[tuple[str, ...], ...]
    group_values: tuple[float, ...]
    user_values: dict[str, float]
    global_model: ModelParameters
    coalition_utilities: dict[tuple[str, ...], float] = field(default_factory=dict)


def assemble_group_values(
    group_labels: Sequence[str],
    utilities: Mapping[tuple[str, ...], float],
    sv_assembly_version: int = 1,
) -> dict[str, float]:
    """Assemble the group game's exact Shapley values from its utility table.

    ``sv_assembly_version`` selects the protocol-versioned assembly (see
    :attr:`repro.core.config.ProtocolConfig.sv_assembly_version`): version 1
    is the scalar reference formula whose receipts are bit-for-bit identical
    to the historical implementation; version 2 is the vectorized bitmask
    assembly — mathematically identical, O(2^m) vectorized work instead of
    O(m·2^m) Python loops, with a different floating-point summation order.
    """
    version = int(sv_assembly_version)
    if version == 1:
        return exact_shapley_from_utilities(list(group_labels), utilities)
    if version == 2:
        vector = utility_table_to_vector(group_labels, utilities)
        values = exact_shapley_from_utility_vector(vector)
        return {label: float(value) for label, value in zip(sorted(group_labels), values)}
    raise ShapleyError(f"unknown sv_assembly_version {sv_assembly_version!r} (supported: 1, 2)")


def compute_group_shapley(
    group_models: Sequence[ModelParameters],
    groups: Sequence[Sequence[str]],
    scorer: AccuracyUtility,
    round_number: int = 0,
    sv_assembly_version: int = 1,
) -> GroupShapleyResult:
    """Algorithm 1 lines 4-7: group-level SV from per-group models.

    Args:
        group_models: W_j for each group (from secure or plain aggregation).
        groups: the user grouping (same order as ``group_models``).
        scorer: the utility scorer u(.) applied to coalition models.
        round_number: recorded in the result for bookkeeping.
        sv_assembly_version: 1 for the scalar reference assembly (historical
            receipts), 2 for the vectorized bitmask assembly.
    """
    if len(group_models) != len(groups):
        raise ShapleyError("one group model per group is required")
    if not groups:
        raise ShapleyError("at least one group is required")
    m = len(groups)
    group_labels = [f"group-{j}" for j in range(m)]

    # Lines 4-6: coalition models are plain averages of group models; the
    # bitmask engine builds all 2^m of them with one subset-sum DP and scores
    # them in a single batched pass (falling back to a constant-memory scalar
    # walk past the engine's budgets).  Scorers exposing only the legacy
    # ``score(ModelParameters)`` interface take the per-coalition scalar path.
    # The group game's Shapley values are then assembled with the
    # protocol-versioned assembly: version 1 (default) keeps on-chain receipts
    # bit-for-bit identical to the pre-engine implementation.
    if hasattr(scorer, "score_batch") or hasattr(scorer, "score_vector"):
        utilities: dict[tuple[str, ...], float] = coalition_utility_table(
            {label: model.to_vector() for label, model in zip(group_labels, group_models)},
            scorer,
        )
    else:
        scalar_utility = CoalitionModelUtility(dict(zip(group_labels, group_models)), scorer)
        utilities = {(): 0.0}
        for size in range(1, m + 1):
            for coalition in combinations(sorted(group_labels), size):
                utilities[coalition] = scalar_utility(coalition)
    group_value_map = assemble_group_values(group_labels, utilities, sv_assembly_version)
    group_values = tuple(group_value_map[label] for label in group_labels)

    # Line 7: each user inherits an equal share of its group's value.
    user_values: dict[str, float] = {}
    for group, value in zip(groups, group_values):
        share = value / len(group)
        for user in group:
            user_values[user] = share

    global_model = ModelParameters.mean(list(group_models))
    coalition_utilities = {k: v for k, v in utilities.items() if k}
    return GroupShapleyResult(
        round_number=round_number,
        n_groups=m,
        groups=tuple(tuple(group) for group in groups),
        group_values=group_values,
        user_values=user_values,
        global_model=global_model,
        coalition_utilities=coalition_utilities,
    )


def group_shapley_round(
    local_models: Mapping[str, ModelParameters],
    m: int,
    seed: int,
    round_number: int,
    scorer: AccuracyUtility,
    sv_assembly_version: int = 1,
) -> GroupShapleyResult:
    """Run the full Algorithm 1 for one round on *plain* local models.

    This is the unmasked reference path used by Fig. 2's similarity sweep and
    by tests; the blockchain protocol reproduces it with masked updates.
    """
    users = sorted(local_models)
    groups = make_groups(users, m, seed, round_number)
    group_models = aggregate_group_models(groups, local_models)
    return compute_group_shapley(
        group_models, groups, scorer, round_number=round_number,
        sv_assembly_version=sv_assembly_version,
    )


def accumulate_user_values(results: Sequence[GroupShapleyResult]) -> dict[str, float]:
    """Total contribution per user across rounds: v_i = sum_r v_i^r."""
    totals: dict[str, float] = {}
    for result in results:
        for user, value in result.user_values.items():
            totals[user] = totals.get(user, 0.0) + value
    return totals
