"""Monte-Carlo Shapley approximations (extension baselines).

The paper's related-work section cites Ghorbani & Zou and Jia et al., whose
main concern is reducing the 2^n cost of exact SV by sampling.  We implement
the two standard estimators so the benchmark suite can compare GroupSV against
them on accuracy and runtime:

* permutation sampling: average marginal contributions over random permutations;
* truncated Monte-Carlo (TMC): permutation sampling that stops scanning a
  permutation once the running utility is within a tolerance of the grand
  coalition's utility (later marginals are ~0).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ShapleyError
from repro.shapley.utility import CachedUtility, UtilityFunction
from repro.utils.rng import spawn_rng


def permutation_sampling_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 100,
    seed: int = 0,
) -> dict[str, float]:
    """Estimate Shapley values by averaging marginal contributions over permutations."""
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 1:
        raise ShapleyError("n_permutations must be positive")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    rng = spawn_rng("permutation-shapley", seed, len(players), n_permutations)
    totals = {player: 0.0 for player in players}
    empty_value = cached.empty_value
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        previous_utility = empty_value
        coalition: list[str] = []
        for player in order:
            coalition.append(player)
            current_utility = cached(tuple(coalition))
            totals[player] += current_utility - previous_utility
            previous_utility = current_utility
    return {player: total / n_permutations for player, total in totals.items()}


def truncated_monte_carlo_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 100,
    tolerance: float = 0.01,
    seed: int = 0,
) -> dict[str, float]:
    """TMC-Shapley: permutation sampling with early truncation.

    Once the running coalition's utility is within ``tolerance`` of the grand
    coalition's utility, the remaining players in the permutation are assigned
    zero marginal contribution for that permutation.
    """
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 1:
        raise ShapleyError("n_permutations must be positive")
    if tolerance < 0:
        raise ShapleyError("tolerance must be non-negative")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    grand_utility = cached(tuple(players))
    rng = spawn_rng("tmc-shapley", seed, len(players), n_permutations)
    totals = {player: 0.0 for player in players}
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        previous_utility = cached.empty_value
        coalition: list[str] = []
        truncated = False
        for player in order:
            if truncated:
                # Remaining players contribute nothing in this permutation.
                continue
            coalition.append(player)
            current_utility = cached(tuple(coalition))
            totals[player] += current_utility - previous_utility
            previous_utility = current_utility
            if abs(grand_utility - current_utility) <= tolerance:
                truncated = True
    return {player: total / n_permutations for player, total in totals.items()}
