"""Monte-Carlo Shapley approximations (extension baselines).

The paper's related-work section cites Ghorbani & Zou and Jia et al., whose
main concern is reducing the 2^n cost of exact SV by sampling.  We implement
the two standard estimators so the benchmark suite can compare GroupSV against
them on accuracy and runtime:

* permutation sampling: average marginal contributions over random permutations;
* truncated Monte-Carlo (TMC): permutation sampling that stops scanning a
  permutation once the running utility is within a tolerance of the grand
  coalition's utility (later marginals are ~0).

Both estimators batch their work through the bitmask engine's utility plumbing:
all marginals of a permutation reduce to one utility-vector lookup over the
permutation's prefix coalitions.  Uncached prefixes are evaluated with a single
batched scoring call when the utility supports it
(:meth:`~repro.shapley.utility.UtilityFunction.evaluate_coalitions`), and
cached prefixes never touch Python-level model code at all.  The sampled
values match the historical scalar loops (regression-tested bit-for-bit on
the seeded workloads): the same utilities are combined by the same
per-player accumulation order, and the batched scorer resolves argmax ties
exactly as the scalar one does.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ShapleyError
from repro.shapley.utility import CachedUtility, UtilityFunction
from repro.utils.rng import spawn_rng


def _prefix_coalitions(order: list[str]) -> list[tuple[str, ...]]:
    """The n growing prefix coalitions of a permutation, as sorted tuples."""
    prefixes: list[tuple[str, ...]] = []
    coalition: list[str] = []
    for player in order:
        coalition.append(player)
        prefixes.append(tuple(sorted(coalition)))
    return prefixes


def permutation_sampling_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 100,
    seed: int = 0,
) -> dict[str, float]:
    """Estimate Shapley values by averaging marginal contributions over permutations."""
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 1:
        raise ShapleyError("n_permutations must be positive")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    rng = spawn_rng("permutation-shapley", seed, len(players), n_permutations)
    index = {player: position for position, player in enumerate(players)}
    totals = np.zeros(len(players), dtype=np.float64)
    empty_value = cached.empty_value
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        prefix_utilities = cached.evaluate_batch(_prefix_coalitions(order))
        marginals = np.diff(prefix_utilities, prepend=empty_value)
        totals[[index[player] for player in order]] += marginals
    return {player: float(totals[index[player]] / n_permutations) for player in players}


def truncated_monte_carlo_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 100,
    tolerance: float = 0.01,
    seed: int = 0,
) -> dict[str, float]:
    """TMC-Shapley: permutation sampling with early truncation.

    Once the running coalition's utility is within ``tolerance`` of the grand
    coalition's utility, the remaining players in the permutation are assigned
    zero marginal contribution for that permutation.  Prefixes that are already
    cached are consumed as one vectorized utility-vector lookup; a permutation
    only falls back to the scalar walk while it still has to *evaluate* new
    coalitions (evaluating past the truncation point would defeat TMC's
    purpose, so the evaluation pattern matches the historical implementation
    exactly).
    """
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 1:
        raise ShapleyError("n_permutations must be positive")
    if tolerance < 0:
        raise ShapleyError("tolerance must be non-negative")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    grand_utility = cached(tuple(players))
    rng = spawn_rng("tmc-shapley", seed, len(players), n_permutations)
    index = {player: position for position, player in enumerate(players)}
    totals = np.zeros(len(players), dtype=np.float64)
    empty_value = cached.empty_value
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        prefixes = _prefix_coalitions(order)
        known = cached.cached_values(prefixes)
        if known is not None:
            # All prefixes cached: one vectorized pass.  Marginal k is counted
            # for positions up to and including the first prefix within
            # tolerance of the grand utility; the rest contribute nothing.
            marginals = np.diff(known, prepend=empty_value)
            within = np.abs(grand_utility - known) <= tolerance
            if within.any():
                marginals[int(np.argmax(within)) + 1 :] = 0.0
            totals[[index[player] for player in order]] += marginals
            continue
        previous_utility = empty_value
        for position, player in enumerate(order):
            current_utility = cached(prefixes[position])
            totals[index[player]] += current_utility - previous_utility
            previous_utility = current_utility
            if abs(grand_utility - current_utility) <= tolerance:
                break
    return {player: float(totals[index[player]] / n_permutations) for player in players}
