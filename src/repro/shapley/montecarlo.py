"""Monte-Carlo Shapley approximations (extension baselines).

The paper's related-work section cites Ghorbani & Zou and Jia et al., whose
main concern is reducing the 2^n cost of exact SV by sampling.  We implement
the two standard estimators so the benchmark suite can compare GroupSV against
them on accuracy and runtime:

* permutation sampling: average marginal contributions over random permutations;
* truncated Monte-Carlo (TMC): permutation sampling that stops scanning a
  permutation once the running utility is within a tolerance of the grand
  coalition's utility (later marginals are ~0).

Both estimators batch their work through the bitmask engine's utility plumbing:
all marginals of a permutation reduce to one utility-vector lookup over the
permutation's prefix coalitions.  The permutation-sampling estimator batches
*across* permutations as well: the prefix coalitions of a whole round of
``permutation_batch`` permutations are stacked into one
:meth:`~repro.shapley.utility.CachedUtility.evaluate_batch` call (and thus one
``score_batch`` pass over every distinct uncached prefix), cutting the
remaining per-permutation Python overhead for large ``n_permutations``.
Cached prefixes never touch Python-level model code at all.  The sampled
values match the historical scalar loops (regression-tested bit-for-bit on
the seeded workloads): permutations are drawn in the same RNG sequence, the
same utilities are combined by the same per-player accumulation order, and
the batched scorer resolves argmax ties exactly as the scalar one does —
``permutation_batch=1`` *is* the historical evaluation pattern.

TMC is deliberately not batched across permutations: which prefixes it
evaluates depends on where each permutation truncates, so stacking rounds of
permutations would evaluate coalitions past the truncation point and defeat
the estimator's purpose.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ShapleyError
from repro.shapley.utility import CachedUtility, UtilityFunction
from repro.utils.rng import spawn_rng


def _prefix_coalitions(order: list[str]) -> list[tuple[str, ...]]:
    """The n growing prefix coalitions of a permutation, as sorted tuples."""
    prefixes: list[tuple[str, ...]] = []
    coalition: list[str] = []
    for player in order:
        coalition.append(player)
        prefixes.append(tuple(sorted(coalition)))
    return prefixes


def permutation_sampling_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 100,
    seed: int = 0,
    permutation_batch: int | None = 64,
) -> dict[str, float]:
    """Estimate Shapley values by averaging marginal contributions over permutations.

    Args:
        players: participant identifiers.
        utility: coalition utility ``u(S)`` (wrapped in a cache if needed).
        n_permutations: number of sampled permutations.
        seed: RNG seed; the permutation sequence is independent of batching.
        permutation_batch: how many permutations' prefix coalitions are
            stacked into one batched utility evaluation.  ``None`` stacks all
            of them; ``1`` reproduces the historical one-permutation-at-a-time
            evaluation pattern.  The estimate itself is identical for every
            batch size — only the evaluation grouping changes.
    """
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 1:
        raise ShapleyError("n_permutations must be positive")
    if permutation_batch is not None and permutation_batch < 1:
        raise ShapleyError("permutation_batch must be positive (or None for one batch)")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    rng = spawn_rng("permutation-shapley", seed, len(players), n_permutations)
    index = {player: position for position, player in enumerate(players)}
    totals = np.zeros(len(players), dtype=np.float64)
    empty_value = cached.empty_value
    # All permutations are drawn upfront (same RNG sequence as drawing one per
    # loop iteration) so rounds of them can share one batched evaluation.
    orders = [[players[i] for i in rng.permutation(len(players))] for _ in range(n_permutations)]
    batch = n_permutations if permutation_batch is None else int(permutation_batch)
    for start in range(0, n_permutations, batch):
        round_orders = orders[start : start + batch]
        stacked = [prefix for order in round_orders for prefix in _prefix_coalitions(order)]
        prefix_utilities = cached.evaluate_batch(stacked).reshape(len(round_orders), len(players))
        marginals = np.diff(prefix_utilities, axis=1, prepend=empty_value)
        # Per-permutation accumulation in draw order keeps every player's
        # floating-point summation order identical to the unbatched loop.
        for row, order in enumerate(round_orders):
            totals[[index[player] for player in order]] += marginals[row]
    return {player: float(totals[index[player]] / n_permutations) for player in players}


def truncated_monte_carlo_shapley(
    players: list[str],
    utility: UtilityFunction | Callable[[tuple[str, ...]], float],
    n_permutations: int = 100,
    tolerance: float = 0.01,
    seed: int = 0,
) -> dict[str, float]:
    """TMC-Shapley: permutation sampling with early truncation.

    Once the running coalition's utility is within ``tolerance`` of the grand
    coalition's utility, the remaining players in the permutation are assigned
    zero marginal contribution for that permutation.  Prefixes that are already
    cached are consumed as one vectorized utility-vector lookup; a permutation
    only falls back to the scalar walk while it still has to *evaluate* new
    coalitions (evaluating past the truncation point would defeat TMC's
    purpose, so the evaluation pattern matches the historical implementation
    exactly).
    """
    if not players:
        raise ShapleyError("at least one player is required")
    if n_permutations < 1:
        raise ShapleyError("n_permutations must be positive")
    if tolerance < 0:
        raise ShapleyError("tolerance must be non-negative")
    players = sorted(players)
    cached = utility if isinstance(utility, CachedUtility) else CachedUtility(utility)
    grand_utility = cached(tuple(players))
    rng = spawn_rng("tmc-shapley", seed, len(players), n_permutations)
    index = {player: position for position, player in enumerate(players)}
    totals = np.zeros(len(players), dtype=np.float64)
    empty_value = cached.empty_value
    for _ in range(n_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        prefixes = _prefix_coalitions(order)
        known = cached.cached_values(prefixes)
        if known is not None:
            # All prefixes cached: one vectorized pass.  Marginal k is counted
            # for positions up to and including the first prefix within
            # tolerance of the grand utility; the rest contribute nothing.
            marginals = np.diff(known, prepend=empty_value)
            within = np.abs(grand_utility - known) <= tolerance
            if within.any():
                marginals[int(np.argmax(within)) + 1 :] = 0.0
            totals[[index[player] for player in order]] += marginals
            continue
        previous_utility = empty_value
        for position, player in enumerate(order):
            current_utility = cached(prefixes[position])
            totals[index[player]] += current_utility - previous_utility
            previous_utility = current_utility
            if abs(grand_utility - current_utility) <= tolerance:
                break
    return {player: float(totals[index[player]] / n_permutations) for player in players}
