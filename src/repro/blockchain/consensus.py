"""Consensus: leader selection and majority re-execution verification.

The paper's protocol (Section III) needs two things from the blockchain layer:

1. a *leader selection protocol* that periodically selects a leader to propose
   a set of transactions, and
2. a *verification protocol* in which all other miners re-execute the proposed
   transactions and accept the block only if their results match; otherwise
   they wait for another leader.

We implement leader selection as deterministic round-robin over the authority
set (proof-of-authority), with a pluggable interface so a randomized selector
can be swapped in, and verification as majority voting over re-execution
outcomes.  The chain makes progress as long as a majority of miners are honest,
matching the paper's trust model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.block import Block
from repro.exceptions import ConsensusError, ValidationError
from repro.utils.rng import spawn_rng


class LeaderSelector:
    """Interface for leader-selection policies."""

    def select(self, round_index: int, authorities: list[str]) -> str:
        """Return the leader for the given consensus round."""
        raise NotImplementedError


class RoundRobinLeaderSelector(LeaderSelector):
    """Deterministic rotation through the sorted authority set."""

    def select(self, round_index: int, authorities: list[str]) -> str:
        if not authorities:
            raise ConsensusError("cannot select a leader from an empty authority set")
        ordered = sorted(authorities)
        return ordered[round_index % len(ordered)]


class SeededRandomLeaderSelector(LeaderSelector):
    """Pseudo-random leader selection seeded by (seed, round), still deterministic."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def select(self, round_index: int, authorities: list[str]) -> str:
        if not authorities:
            raise ConsensusError("cannot select a leader from an empty authority set")
        ordered = sorted(authorities)
        rng = spawn_rng("leader-selection", self.seed, round_index)
        return ordered[int(rng.integers(0, len(ordered)))]


@dataclass
class VerificationResult:
    """Outcome of putting a proposed block to the miner vote.

    Attributes:
        block_hash: hash of the proposed block.
        accepted: whether a strict majority of miners accepted it.
        votes: per-miner boolean votes.
        rejections: per-miner error messages for rejecting miners.
    """

    block_hash: str
    accepted: bool
    votes: dict[str, bool] = field(default_factory=dict)
    rejections: dict[str, str] = field(default_factory=dict)

    @property
    def accept_count(self) -> int:
        """Number of accepting miners."""
        return sum(1 for vote in self.votes.values() if vote)

    @property
    def reject_count(self) -> int:
        """Number of rejecting miners."""
        return sum(1 for vote in self.votes.values() if not vote)


class ConsensusEngine:
    """Coordinates one consensus round among a set of miner nodes.

    The engine itself holds no secret authority: it simply sequences the steps
    a real P2P protocol would perform (select leader, leader proposes, everyone
    verifies, majority decides) in a deterministic, observable way.
    """

    def __init__(self, selector: LeaderSelector | None = None) -> None:
        self.selector = selector or RoundRobinLeaderSelector()
        self.round_index = 0

    def select_leader(self, authorities: list[str]) -> str:
        """Pick the leader for the current round and advance the round counter."""
        if not authorities:
            raise ValidationError("authority set must be non-empty")
        leader = self.selector.select(self.round_index, authorities)
        self.round_index += 1
        return leader

    @staticmethod
    def tally(block: Block, votes: dict[str, bool], rejections: dict[str, str] | None = None) -> VerificationResult:
        """Apply the strict-majority rule to a set of verification votes."""
        if not votes:
            raise ConsensusError("no votes were cast")
        accepted = sum(1 for vote in votes.values() if vote) * 2 > len(votes)
        return VerificationResult(
            block_hash=block.block_hash,
            accepted=accepted,
            votes=dict(votes),
            rejections=dict(rejections or {}),
        )
