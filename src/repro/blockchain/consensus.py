"""Consensus: leader selection, authority rotation, and re-execution verification.

The paper's protocol (Section III) needs two things from the blockchain layer:

1. a *leader selection protocol* that periodically selects a leader to propose
   a set of transactions, and
2. a *verification protocol* in which all other miners re-execute the proposed
   transactions and accept the block only if their results match; otherwise
   they wait for another leader.

We implement leader selection as deterministic round-robin over the authority
set (proof-of-authority), with a pluggable interface so a randomized selector
can be swapped in, and verification as majority voting over re-execution
outcomes.  The chain makes progress as long as a majority of miners are honest,
matching the paper's trust model.

**Epoch-authority rotation.**  With ``ProtocolConfig.authority_rotation``
enabled, training-round blocks are no longer proposed by a static rotation
over the full replica set: the eligible proposers of FL round ``r`` are
exactly the registry's ``active_cohort(r)`` — pure chain state — rotated
deterministically from the start of the round's cohort epoch.  When a
scheduled proposer is silent, or its proposal is rejected by the miner vote,
the proposal right falls through a *view change* to the next owner in the
rotation; the winning view number is hashed into the block header so any
replica (or :func:`repro.core.audit.audit_chain`) can recompute the proposer
schedule for every committed round.  :class:`EpochAuthoritySchedule` holds
the schedule, :func:`scheduled_proposer` is the pure recomputation, and
:func:`verify_block_authority` is the check every miner runs before voting —
and every syncing replica runs during replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.blockchain.block import Block
from repro.exceptions import ConsensusError, ValidationError
from repro.utils.rng import spawn_rng


class LeaderSelector:
    """Interface for leader-selection policies."""

    def select(self, round_index: int, authorities: list[str]) -> str:
        """Return the leader for the given consensus round."""
        raise NotImplementedError


class RoundRobinLeaderSelector(LeaderSelector):
    """Deterministic rotation through the sorted authority set."""

    def select(self, round_index: int, authorities: list[str]) -> str:
        if not authorities:
            raise ConsensusError("cannot select a leader from an empty authority set")
        ordered = sorted(authorities)
        return ordered[round_index % len(ordered)]


class SeededRandomLeaderSelector(LeaderSelector):
    """Pseudo-random leader selection seeded by (seed, round), still deterministic."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def select(self, round_index: int, authorities: list[str]) -> str:
        if not authorities:
            raise ConsensusError("cannot select a leader from an empty authority set")
        ordered = sorted(authorities)
        rng = spawn_rng("leader-selection", self.seed, round_index)
        return ordered[int(rng.integers(0, len(ordered)))]


# ----------------------------------------------------------------------
# Epoch-authority rotation (pure chain-state schedule + view changes)
# ----------------------------------------------------------------------

def rotation_index(round_number: int, epoch_start: int, view: int, cohort_size: int) -> int:
    """Position of the view-``view`` proposer of a round within its sorted cohort.

    The rotation restarts at every cohort epoch: the first round of an epoch
    is proposed (at view 0) by the cohort's first owner, the next round by the
    second, and so on; each view change advances one more step.  The function
    is pure arithmetic, which is what lets a miner — or an auditor holding
    nothing but chain state — recompute the proposer of any committed round.

    >>> rotation_index(round_number=0, epoch_start=0, view=0, cohort_size=4)
    0
    >>> rotation_index(round_number=5, epoch_start=3, view=0, cohort_size=4)
    2
    >>> # two view changes skip two silent proposers and wrap around
    >>> rotation_index(round_number=5, epoch_start=3, view=2, cohort_size=4)
    0
    """
    if cohort_size < 1:
        raise ConsensusError("cannot rotate over an empty proposer cohort")
    if round_number < epoch_start:
        raise ConsensusError(
            f"round {round_number} precedes its epoch start {epoch_start}"
        )
    return (round_number - epoch_start + view) % cohort_size


def authority_schedule_from_state(state, round_number: int) -> tuple[list[str], int]:
    """The (sorted proposer cohort, epoch start) of an FL round, from chain state.

    The eligible proposers of round ``r`` are the registry's active cohort for
    ``r`` — owners whose membership interval covers the round — restricted to
    registered replicas by construction (every cohort member registered its
    key on chain).  Departed owners keep mining and voting but lose the right
    to propose: trust rotates across the *active* participant set.
    """
    from repro.blockchain.contracts.registry import (
        cohort_for_round_from_state,
        epoch_start_for_round_from_state,
    )

    proposers = cohort_for_round_from_state(state, round_number)
    if not proposers:
        raise ConsensusError(f"no owners are active for round {round_number}")
    return proposers, epoch_start_for_round_from_state(state, round_number)


def scheduled_proposer(state, round_number: int, view: int) -> str:
    """Recompute the proposer of FL round ``round_number`` at view ``view``.

    Pure function of chain state: any replica and any auditor derives the same
    answer, which is what makes the consensus authority verifiable after the
    fact.  The view is bounded to ``[0, cohort size)`` — a round whose every
    view fails aborts instead of wrapping, so no committed block may carry a
    wrapped view that would let a proposer re-schedule itself.
    """
    proposers, epoch_start = authority_schedule_from_state(state, round_number)
    view = int(view)
    if not 0 <= view < len(proposers):
        raise ConsensusError(
            f"view {view} is outside [0, {len(proposers)}) for round {round_number}: "
            "a round exhausts its views and aborts rather than wrapping the rotation"
        )
    return proposers[rotation_index(int(round_number), epoch_start, view, len(proposers))]


def committed_round_of_block(block: Block) -> int | None:
    """The FL round a block commits, or ``None`` for setup/settlement blocks.

    The round's single block carries its ``finalize_round`` call; scanning for
    it is how both miners and auditors map block heights back to FL rounds
    without any off-chain index.
    """
    for tx in block.transactions:
        if tx.contract == "fl_training" and tx.method == "finalize_round":
            return int(tx.args["round_number"])
    return None


def verify_block_authority(state, block: Block) -> None:
    """Reject a proposal whose proposer/view disagree with the on-chain schedule.

    ``state`` is the verifying replica's state *before* executing the block
    (the schedule of round ``r`` only depends on membership boundaries at or
    below ``r``, which are all committed before round ``r``'s block, so every
    replica derives the same schedule).  On chains without
    ``authority_rotation`` the check degenerates to "no block claims a view":
    pre-rotation chains verify unchanged.

    Raises :class:`ConsensusError` on any mismatch.
    """
    params = state.get("registry", "protocol_params") or {}
    fl_round = committed_round_of_block(block)
    if params.get("authority_rotation") and fl_round is not None:
        view = block.header.view
        if view is None:
            raise ConsensusError(
                f"block {block.height} commits round {fl_round} without a view number "
                "on an authority-rotation chain"
            )
        expected = scheduled_proposer(state, fl_round, view)
        if block.header.proposer != expected:
            raise ConsensusError(
                f"block {block.height} (round {fl_round}, view {view}) was proposed by "
                f"{block.header.proposer} but the epoch-authority schedule assigns {expected}"
            )
    elif block.header.view is not None:
        raise ConsensusError(
            f"block {block.height} carries view {block.header.view} but no "
            "epoch-authority schedule applies to it (the chain does not run "
            "authority rotation, or the block commits no training round)"
        )


class EpochAuthoritySchedule(LeaderSelector):
    """Chain-state-derived proposer rotation with view-change fallback.

    Unlike the static selectors above, this schedule owns no authority list:
    it reads the registry's cohort epochs through ``state_reader`` (a zero-
    argument callable returning the current world state) at selection time, so
    membership transactions committed in earlier blocks change who may propose
    from their effective round on.

    Args:
        state_reader: callable returning a replica's current
            :class:`~repro.blockchain.state.WorldState` (any honest replica —
            the schedule is pure chain state, so they all agree).
    """

    def __init__(self, state_reader: Callable[[], Any]) -> None:
        self.state_reader = state_reader

    def proposers_for_round(self, round_number: int) -> list[str]:
        """The round's proposers in view order (view 0 first, then fallbacks)."""
        proposers, epoch_start = authority_schedule_from_state(self.state_reader(), round_number)
        base = rotation_index(int(round_number), epoch_start, 0, len(proposers))
        return [proposers[(base + view) % len(proposers)] for view in range(len(proposers))]

    def select_view(self, round_number: int, view: int) -> str:
        """The proposer of ``round_number`` at ``view`` (view changes increment it)."""
        return scheduled_proposer(self.state_reader(), round_number, view)

    def select(self, round_index: int, authorities: list[str]) -> str:
        """Refuse the generic :class:`LeaderSelector` entry point.

        The engine's ``round_index`` counts *blocks* (setup, rounds,
        settlement), not FL rounds, so mapping it onto the epoch schedule
        would select against an empty registry at setup and be off by one
        afterwards.  Wire the schedule through
        ``ConsensusEngine(schedule=...)`` and :meth:`select_view` /
        ``select_round_leader`` instead, which take a real FL round number.
        """
        raise ConsensusError(
            "EpochAuthoritySchedule cannot serve as a generic LeaderSelector: "
            "pass it as ConsensusEngine(schedule=...) and select per FL round "
            "via select_view(round_number, view)"
        )


@dataclass
class VerificationResult:
    """Outcome of putting a proposed block to the miner vote.

    Attributes:
        block_hash: hash of the proposed block.
        accepted: whether a strict majority of miners accepted it.
        votes: per-miner boolean votes.
        rejections: per-miner error messages for rejecting miners.
        unreachable: miners whose vote never arrived (delivery status per
            miner); they abstain, which counts as a rejection in the quorum.
    """

    block_hash: str
    accepted: bool
    votes: dict[str, bool] = field(default_factory=dict)
    rejections: dict[str, str] = field(default_factory=dict)
    unreachable: dict[str, str] = field(default_factory=dict)

    @property
    def accept_count(self) -> int:
        """Number of accepting miners."""
        return sum(1 for vote in self.votes.values() if vote)

    @property
    def reject_count(self) -> int:
        """Number of rejecting miners."""
        return sum(1 for vote in self.votes.values() if not vote)

    @property
    def abstain_count(self) -> int:
        """Number of miners whose vote never arrived (counted as rejections)."""
        return len(self.unreachable)


class ConsensusEngine:
    """Coordinates one consensus round among a set of miner nodes.

    The engine itself holds no secret authority: it simply sequences the steps
    a real P2P protocol would perform (select leader, leader proposes, everyone
    verifies, majority decides) in a deterministic, observable way.
    """

    def __init__(
        self,
        selector: LeaderSelector | None = None,
        schedule: EpochAuthoritySchedule | None = None,
    ) -> None:
        self.selector = selector or RoundRobinLeaderSelector()
        self.schedule = schedule
        self.round_index = 0

    def select_leader(self, authorities: list[str]) -> str:
        """Pick the leader for the current round and advance the round counter."""
        if not authorities:
            raise ValidationError("authority set must be non-empty")
        leader = self.selector.select(self.round_index, authorities)
        self.round_index += 1
        return leader

    def select_round_leader(self, round_number: int, view: int) -> str:
        """Pick the FL round's proposer under the epoch-authority schedule.

        Unlike :meth:`select_leader`, this does not advance the internal
        counter: the caller owns the view-change loop and may probe several
        views of the same round before one leader's block commits.
        """
        if self.schedule is None:
            raise ConsensusError("the engine has no epoch-authority schedule configured")
        return self.schedule.select_view(round_number, view)

    @staticmethod
    def tally(
        block: Block,
        votes: dict[str, bool],
        rejections: dict[str, str] | None = None,
        unreachable: dict[str, str] | None = None,
    ) -> VerificationResult:
        """Apply the strict-majority rule to a set of verification votes.

        Miners listed in ``unreachable`` (vote lost or peer partitioned away)
        abstain: they are folded into the tally as ``False`` votes so the
        quorum denominator still counts them — a proposer cut off from the
        swarm cannot manufacture a 1/1 "majority" out of silence.
        """
        votes = dict(votes)
        rejections = dict(rejections or {})
        unreachable = dict(unreachable or {})
        for node_id, status in unreachable.items():
            votes.setdefault(node_id, False)
            rejections.setdefault(node_id, f"no vote received ({status})")
        if not votes:
            raise ConsensusError("no votes were cast")
        accepted = sum(1 for vote in votes.values() if vote) * 2 > len(votes)
        return VerificationResult(
            block_hash=block.block_hash,
            accepted=accepted,
            votes=votes,
            rejections=rejections,
            unreachable=unreachable,
        )
