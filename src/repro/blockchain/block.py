"""Blocks: batches of transactions committed to the chain by a leader."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.blockchain.merkle import MerkleTree
from repro.blockchain.transaction import Transaction, TransactionReceipt
from repro.exceptions import InvalidBlockError, ValidationError
from repro.utils.hashing import hash_payload

GENESIS_PARENT_HASH = "0" * 64


@dataclass(frozen=True)
class BlockHeader:
    """The hashed header committing to a block's contents.

    Attributes:
        height: block number (0 for genesis).
        parent_hash: hash of the previous block header.
        proposer: identity of the leader that proposed the block.
        tx_root: Merkle root of the transaction hashes.
        receipt_root: Merkle root of the receipt hashes.
        state_root: hash of the world state *after* executing the block.
        timestamp: logical timestamp (simulation tick, not wall clock).
        view: consensus view number under epoch-authority rotation (``None``
            on chains without rotation).  View 0 is the round's scheduled
            proposer; each view change hands the proposal to the next owner in
            the rotation.  The view is hashed into the block identity so an
            auditor can recompute the proposer schedule, but it is *omitted*
            from the hash payload when ``None`` — pre-rotation chains keep
            their historical block hashes byte for byte.
    """

    height: int
    parent_hash: str
    proposer: str
    tx_root: str
    receipt_root: str
    state_root: str
    timestamp: int = 0
    view: int | None = None

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValidationError("block height must be non-negative")
        if len(self.parent_hash) != 64:
            raise ValidationError("parent_hash must be a 64-char hex digest")
        if self.view is not None and self.view < 0:
            raise ValidationError("view number must be non-negative")

    @property
    def block_hash(self) -> str:
        """The hash identifying this block."""
        payload = {
            "height": self.height,
            "parent_hash": self.parent_hash,
            "proposer": self.proposer,
            "tx_root": self.tx_root,
            "receipt_root": self.receipt_root,
            "state_root": self.state_root,
            "timestamp": self.timestamp,
        }
        if self.view is not None:
            payload["view"] = self.view
        return hash_payload(payload)


@dataclass(frozen=True)
class Block:
    """A block: header plus the full transaction and receipt lists."""

    header: BlockHeader
    transactions: tuple[Transaction, ...] = ()
    receipts: tuple[TransactionReceipt, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "transactions", tuple(self.transactions))
        object.__setattr__(self, "receipts", tuple(self.receipts))
        if len(self.transactions) != len(self.receipts):
            raise ValidationError("block must carry one receipt per transaction")

    @property
    def block_hash(self) -> str:
        """Hash of the block header."""
        return self.header.block_hash

    @property
    def height(self) -> int:
        """Block number."""
        return self.header.height

    def tx_hashes(self) -> list[str]:
        """Hashes of the block's transactions, in order."""
        return [tx.tx_hash for tx in self.transactions]

    def receipt_hashes(self) -> list[str]:
        """Hashes of the block's receipts, in order."""
        return [hash_payload(receipt.to_dict()) for receipt in self.receipts]

    def verify_roots(self) -> None:
        """Check the header's Merkle roots match the carried transactions/receipts."""
        expected_tx_root = MerkleTree.root_of(self.tx_hashes())
        if expected_tx_root != self.header.tx_root:
            raise InvalidBlockError(
                f"block {self.height}: tx root mismatch ({expected_tx_root[:12]} != {self.header.tx_root[:12]})"
            )
        expected_receipt_root = MerkleTree.root_of(self.receipt_hashes())
        if expected_receipt_root != self.header.receipt_root:
            raise InvalidBlockError(f"block {self.height}: receipt root mismatch")

    def total_gas(self) -> int:
        """Sum of abstract gas used by the block's transactions."""
        return sum(receipt.gas_used for receipt in self.receipts)

    @staticmethod
    def build(
        height: int,
        parent_hash: str,
        proposer: str,
        transactions: list[Transaction],
        receipts: list[TransactionReceipt],
        state_root: str,
        timestamp: int = 0,
        view: int | None = None,
    ) -> "Block":
        """Assemble a block, computing the Merkle roots from the given lists."""
        tx_root = MerkleTree.root_of([tx.tx_hash for tx in transactions])
        receipt_root = MerkleTree.root_of([hash_payload(r.to_dict()) for r in receipts])
        header = BlockHeader(
            height=height,
            parent_hash=parent_hash,
            proposer=proposer,
            tx_root=tx_root,
            receipt_root=receipt_root,
            state_root=state_root,
            timestamp=timestamp,
            view=view,
        )
        return Block(header=header, transactions=tuple(transactions), receipts=tuple(receipts))
