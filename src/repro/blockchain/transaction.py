"""Transactions: the unit of on-chain activity.

Every interaction with the chain — registering a public key, submitting a
masked update, triggering the contribution evaluation — is a transaction that
names a contract, a method, and arguments.  Transactions are hashed over their
canonical serialization and carry a lightweight HMAC-style signature binding
them to the sender (sufficient for a simulation; a deployment would use ECDSA).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import InvalidTransactionError, ValidationError
from repro.utils.hashing import hash_payload
from repro.utils.serialization import canonical_dumps


def _signing_key(sender: str) -> bytes:
    """Derive the simulation signing key for a sender identity.

    In this in-process simulation identities are not adversarially forgeable at
    the cryptographic level; the signature exists so that tampering with a
    transaction after creation is detected during verification.
    """
    return hashlib.sha256(f"repro-signing-key/{sender}".encode("utf-8")).digest()


@dataclass(frozen=True)
class Transaction:
    """A contract call submitted by a participant.

    Attributes:
        sender: the identity submitting the transaction.
        contract: name of the target contract (e.g. ``"fl_training"``).
        method: contract method to invoke.
        args: method arguments; must be canonically serializable.
        nonce: per-sender sequence number preventing replay.
        signature: hex HMAC over the canonical body.
    """

    sender: str
    contract: str
    method: str
    args: dict[str, Any] = field(default_factory=dict)
    nonce: int = 0
    signature: str = ""

    def __post_init__(self) -> None:
        if not self.sender:
            raise ValidationError("transaction sender must be non-empty")
        if not self.contract or not self.method:
            raise ValidationError("transaction must name a contract and method")
        if self.nonce < 0:
            raise ValidationError("nonce must be non-negative")
        if not self.signature:
            object.__setattr__(self, "signature", self._compute_signature())

    def body(self) -> dict[str, Any]:
        """The signed portion of the transaction."""
        return {
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "nonce": self.nonce,
        }

    def _compute_signature(self) -> str:
        message = canonical_dumps(self.body()).encode("utf-8")
        return hmac.new(_signing_key(self.sender), message, hashlib.sha256).hexdigest()

    @property
    def tx_hash(self) -> str:
        """Content hash identifying this transaction."""
        return hash_payload({**self.body(), "signature": self.signature})

    def verify_signature(self) -> bool:
        """Check the signature matches the body and claimed sender."""
        return hmac.compare_digest(self.signature, self._compute_signature())

    def validate(self) -> None:
        """Raise :class:`InvalidTransactionError` if the transaction is malformed."""
        if not self.verify_signature():
            raise InvalidTransactionError(
                f"bad signature on transaction {self.tx_hash[:12]} from {self.sender}"
            )
        try:
            canonical_dumps(self.args)
        except ValidationError as exc:
            raise InvalidTransactionError(f"arguments are not serializable: {exc}") from exc


@dataclass(frozen=True)
class TransactionReceipt:
    """The outcome of executing a transaction inside a block.

    Attributes:
        tx_hash: hash of the executed transaction.
        success: whether the contract call committed.
        result: the contract return value (canonically serializable) or ``None``.
        error: error message when ``success`` is ``False``.
        events: contract-emitted events, each ``{"name": ..., "data": {...}}``.
        gas_used: abstract execution cost (used by the throughput analysis).
    """

    tx_hash: str
    success: bool
    result: Any = None
    error: str = ""
    events: tuple = ()
    gas_used: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Serializable view used when hashing a block's receipts root."""
        return {
            "tx_hash": self.tx_hash,
            "success": self.success,
            "result": self.result,
            "error": self.error,
            "events": list(self.events),
            "gas_used": self.gas_used,
        }
