"""Pluggable message transports: deterministic delivery and seeded fault injection.

The :class:`~repro.blockchain.network.Network` owns the membership and topic
tables; *how* a payload crosses the wire is delegated to a :class:`Transport`.
Two implementations ship:

* :class:`DeterministicTransport` — today's synchronous, sorted-order,
  loss-free delivery, byte-for-byte identical to the historical network loop
  (pinned by the transport-parity tests against pre-transport chain hashes).
* :class:`FaultInjectingTransport` — delivery driven by a seeded, declarative
  :class:`FaultPlan`: per-link drop probability, duplication, latency with a
  reordering window, per-broadcast response timeouts, and named partitions
  (full or directional) that can heal mid-run.

Determinism is the design invariant: the simulation is single-threaded, so a
fixed plan (seed included) consumes its RNG in one reproducible sequence and
two runs of the same faulty scenario produce identical chains, delivery
reports, and settlement tables.  Simulated time advances in *ticks* — one per
round attempt (``Network.begin_round``) — which is what partition windows and
retry backoff schedules are expressed in.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import pickle
import random
import socket
import struct
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from repro.exceptions import BlockchainError

# Delivery outcome statuses.
DELIVERED = "delivered"
DROPPED = "dropped"
PARTITIONED = "partitioned"
TIMEOUT = "timeout"
ERROR = "error"

#: Statuses for which the message never reached (or never answered) — the
#: sender may retry these; a handler *error* did reach and must not be retried
#: blindly.
UNDELIVERED_STATUSES = (DROPPED, PARTITIONED, TIMEOUT)

PARTITION_DIRECTIONS = ("both", "inbound", "outbound")


@dataclass
class Delivery:
    """The outcome of delivering one payload to one recipient.

    Attributes:
        recipient: the receiving node id.
        status: one of ``delivered`` / ``dropped`` / ``partitioned`` /
            ``timeout`` (the handler ran but its response was lost to the
            sender) / ``error`` (the handler raised).
        result: the handler's return value (``delivered`` only).
        error: human-readable failure description for non-delivered statuses.
        exception: the raised exception object for ``error`` deliveries (kept
            so :meth:`Network.send` can preserve raise-through semantics).
        attempts: total send attempts for this recipient (1 + retries).
        duplicates: extra copies the transport delivered (handler re-invoked).
        latency: simulated delivery latency in ticks.
    """

    recipient: str
    status: str
    result: Any = None
    error: str = ""
    exception: Exception | None = None
    attempts: int = 1
    duplicates: int = 0
    latency: int = 0

    @property
    def delivered(self) -> bool:
        return self.status == DELIVERED


@dataclass(frozen=True)
class HandlerFailure:
    """Recorded in a broadcast's result map when a recipient's handler raised.

    Pre-transport, a raising handler aborted the delivery loop mid-way:
    earlier recipients had applied the message, later ones never saw it, and
    nothing recorded the failure.  Now every recipient is attempted and the
    failure is first-class data in the result map.
    """

    recipient: str
    error: str


@dataclass
class BroadcastReport:
    """Everything one broadcast produced: per-recipient deliveries + retries."""

    topic: str
    sender: str
    deliveries: dict[str, Delivery] = field(default_factory=dict)
    #: Simulated exponential-backoff waits (in ticks) the sender sat through
    #: between retry sweeps; accounting only — the simulation does not sleep.
    retry_backoffs: list[int] = field(default_factory=list)

    def results(self) -> dict[str, Any]:
        """The legacy result map: handler results, plus recorded handler failures."""
        results: dict[str, Any] = {}
        for recipient, delivery in self.deliveries.items():
            if delivery.status == DELIVERED:
                results[recipient] = delivery.result
            elif delivery.status == ERROR:
                results[recipient] = HandlerFailure(recipient, delivery.error)
        return results

    def undelivered(self) -> list[str]:
        """Recipients the message never (confirmably) reached, sorted."""
        return sorted(
            recipient
            for recipient, delivery in self.deliveries.items()
            if delivery.status in UNDELIVERED_STATUSES
        )


# ----------------------------------------------------------------------
# Declarative fault plans
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkFault:
    """Fault overrides for one directed link (``sender -> recipient``).

    ``topics`` scopes the fault to specific topics (empty = all).
    ``response_timeout`` forces the *response-lost* path: the payload is
    delivered and the handler runs, but the sender never sees the return
    value — exactly how a vote is lost without the proposal being lost.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    latency_ticks: int = 0
    response_timeout: bool = False
    topics: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BlockchainError(f"LinkFault.{name} must be in [0, 1], got {value}")
        if self.latency_ticks < 0:
            raise BlockchainError("LinkFault.latency_ticks must be non-negative")
        object.__setattr__(self, "topics", tuple(self.topics))

    def applies_to(self, topic: str) -> bool:
        return not self.topics or topic in self.topics

    def to_dict(self) -> dict[str, Any]:
        return {
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "latency_ticks": self.latency_ticks,
            "response_timeout": self.response_timeout,
            "topics": list(self.topics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LinkFault":
        return cls(
            drop_probability=float(payload.get("drop_probability", 0.0)),
            duplicate_probability=float(payload.get("duplicate_probability", 0.0)),
            latency_ticks=int(payload.get("latency_ticks", 0)),
            response_timeout=bool(payload.get("response_timeout", False)),
            topics=tuple(payload.get("topics", ())),
        )


@dataclass(frozen=True)
class PartitionSpec:
    """A named network partition over explicit cells of nodes.

    Nodes not listed in any cell form one implicit cell of their own; traffic
    between different cells is blocked.  ``direction`` refines the block for
    eclipse-style attacks: ``inbound`` only blocks messages *into* explicit
    cells (an eclipsed victim can still talk out), ``outbound`` only messages
    *out of* them.  ``start_tick`` / ``heal_tick`` bound the partition's
    lifetime on the transport's tick clock (``heal_tick=None`` = never heals
    by schedule; scenarios may still heal it explicitly).
    """

    name: str
    cells: tuple[tuple[str, ...], ...]
    direction: str = "both"
    start_tick: int = 0
    heal_tick: int | None = None

    def __post_init__(self) -> None:
        cells = tuple(tuple(cell) for cell in self.cells)
        if not cells or any(not cell for cell in cells):
            raise BlockchainError(f"partition {self.name!r} needs at least one non-empty cell")
        seen: set[str] = set()
        for cell in cells:
            for node in cell:
                if node in seen:
                    raise BlockchainError(
                        f"partition {self.name!r}: node {node!r} appears in two cells"
                    )
                seen.add(node)
        if self.direction not in PARTITION_DIRECTIONS:
            raise BlockchainError(
                f"partition {self.name!r}: direction must be one of {PARTITION_DIRECTIONS}"
            )
        if self.heal_tick is not None and self.heal_tick <= self.start_tick:
            raise BlockchainError(f"partition {self.name!r}: heal_tick must follow start_tick")
        object.__setattr__(self, "cells", cells)

    def active_at(self, tick: int) -> bool:
        if tick < self.start_tick:
            return False
        return self.heal_tick is None or tick < self.heal_tick

    def cell_of(self, node_id: str) -> int | None:
        """Index of the explicit cell holding ``node_id`` (None = implicit cell)."""
        for index, cell in enumerate(self.cells):
            if node_id in cell:
                return index
        return None

    def blocks(self, sender: str, recipient: str) -> bool:
        """Whether this partition blocks a ``sender -> recipient`` delivery."""
        sender_cell = self.cell_of(sender)
        recipient_cell = self.cell_of(recipient)
        if sender_cell == recipient_cell:
            # Same explicit cell, or both in the implicit cell: no boundary.
            return False
        if self.direction == "inbound":
            return recipient_cell is not None
        if self.direction == "outbound":
            return sender_cell is not None
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "cells": [list(cell) for cell in self.cells],
            "direction": self.direction,
            "start_tick": self.start_tick,
            "heal_tick": self.heal_tick,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionSpec":
        return cls(
            name=str(payload["name"]),
            cells=tuple(tuple(cell) for cell in payload["cells"]),
            direction=str(payload.get("direction", "both")),
            start_tick=int(payload.get("start_tick", 0)),
            heal_tick=None if payload.get("heal_tick") is None else int(payload["heal_tick"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of everything that goes wrong.

    Plan-wide defaults apply to every delivery; ``links`` overrides them per
    directed link, keyed ``"sender->recipient"`` with ``*`` wildcards on
    either side (most specific match wins: exact, then ``sender->*``, then
    ``*->recipient``).  ``timeout_ticks`` is the per-broadcast response
    window: a delivery whose drawn latency exceeds it still runs the
    recipient's handler, but the sender records a ``timeout`` instead of the
    response.  Deliveries of one broadcast are applied in ``(latency,
    recipient)`` order — the reordering window.

    The plan (seed included) fully determines the fault sequence: the
    simulation is single-threaded and draws from one ``random.Random(seed)``
    stream, so identical plans yield identical runs.
    """

    seed: int = 0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    latency_ticks: int = 0
    timeout_ticks: int = 2
    partitions: tuple[PartitionSpec, ...] = ()
    links: tuple[tuple[str, LinkFault], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BlockchainError(f"FaultPlan.{name} must be in [0, 1], got {value}")
        if self.latency_ticks < 0 or self.timeout_ticks < 0:
            raise BlockchainError("FaultPlan tick parameters must be non-negative")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        links = self.links.items() if isinstance(self.links, Mapping) else self.links
        normalized = []
        for key, fault in links:
            if "->" not in key:
                raise BlockchainError(f"link key {key!r} must look like 'sender->recipient'")
            normalized.append((str(key), fault))
        object.__setattr__(self, "links", tuple(normalized))

    def link_fault(self, sender: str, recipient: str, topic: str) -> LinkFault | None:
        """The most specific link override matching a delivery, if any."""
        table = dict(self.links)
        for key in (f"{sender}->{recipient}", f"{sender}->*", f"*->{recipient}"):
            fault = table.get(key)
            if fault is not None and fault.applies_to(topic):
                return fault
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "latency_ticks": self.latency_ticks,
            "timeout_ticks": self.timeout_ticks,
            "partitions": [spec.to_dict() for spec in self.partitions],
            "links": {key: fault.to_dict() for key, fault in self.links},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        links = payload.get("links", {})
        link_items = links.items() if isinstance(links, Mapping) else links
        return cls(
            seed=int(payload.get("seed", 0)),
            drop_probability=float(payload.get("drop_probability", 0.0)),
            duplicate_probability=float(payload.get("duplicate_probability", 0.0)),
            latency_ticks=int(payload.get("latency_ticks", 0)),
            timeout_ticks=int(payload.get("timeout_ticks", 2)),
            partitions=tuple(
                PartitionSpec.from_dict(spec) for spec in payload.get("partitions", ())
            ),
            links=tuple((str(key), LinkFault.from_dict(fault)) for key, fault in link_items),
        )


# ----------------------------------------------------------------------
# Per-link fault decisions (shared by the sim and the async transport)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultDecision:
    """One delivery's drawn fate: drop / extra copies / latency / lost response."""

    dropped: bool = False
    latency: int = 0
    duplicates: int = 0
    response_lost: bool = False


def _uniform_draw(seed: int, link: str, index: int, label: str) -> float:
    """A deterministic uniform in [0, 1) derived by hashing, not by RNG state.

    Hash-derived draws make each link's decision sequence a pure function of
    ``(seed, link, per-link message index)`` — two transports consuming links
    in completely different global interleavings (a sorted single-threaded
    sweep vs concurrent asyncio sends) still agree on every decision.
    """
    digest = hashlib.sha256(f"fault-draw|{seed}|{link}|{index}|{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


class LinkFaultDecider:
    """Seed-stable per-link fault decisions, independent of global draw order.

    The historical :class:`FaultInjectingTransport` draws every decision from
    one shared ``random.Random`` stream, which makes the sequence depend on
    the global delivery order — fine for the single-threaded simulation,
    useless under real concurrency where sends interleave nondeterministically.
    The decider instead keeps one message counter per directed link and hashes
    ``(seed, link, index)`` into the draws, so the same plan and seed yield
    identical per-link drop/duplicate/latency sequences on the deterministic
    *and* the async transport.  Thread-safe; every decision is appended to
    :attr:`log` for the seed-stability property tests.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Decision log: (link key, per-link index, FaultDecision).
        self.log: list[tuple[str, int, FaultDecision]] = []

    def decide(
        self, sender: str, recipient: str, fault: LinkFault, timeout_ticks: int
    ) -> FaultDecision:
        """Draw the fate of the next message on ``sender -> recipient``."""
        link = f"{sender}->{recipient}"
        with self._lock:
            index = self._counters.get(link, 0)
            self._counters[link] = index + 1
        dropped = bool(
            fault.drop_probability
            and _uniform_draw(self.seed, link, index, "drop") < fault.drop_probability
        )
        latency = (
            int(_uniform_draw(self.seed, link, index, "latency") * (fault.latency_ticks + 1))
            if fault.latency_ticks
            else 0
        )
        duplicates = int(
            bool(fault.duplicate_probability)
            and _uniform_draw(self.seed, link, index, "duplicate") < fault.duplicate_probability
        )
        decision = FaultDecision(
            dropped=dropped,
            latency=latency,
            duplicates=duplicates,
            response_lost=fault.response_timeout or latency > timeout_ticks,
        )
        with self._lock:
            self.log.append((link, index, decision))
        return decision


def blocking_partition(
    partitions: Iterable[PartitionSpec], sender: str, recipient: str
) -> str | None:
    """The name of the first partition blocking ``sender -> recipient``, if any."""
    for spec in partitions:
        if spec.blocks(sender, recipient):
            return spec.name
    return None


class FaultScheduleMixin:
    """Shared fault-plan scheduling: the tick clock plus dynamic fault control.

    Both the single-threaded :class:`FaultInjectingTransport` and the socket
    :class:`AsyncTransport` carry the same scheduled state — a plan, a tick
    clock advanced by ``begin_round``, and dynamic partitions / link faults a
    scenario can steer imperatively — so the fault scenarios drive either
    transport through one control surface.
    """

    plan: FaultPlan

    def _init_fault_schedule(self, plan: FaultPlan | None) -> None:
        self.plan = plan or FaultPlan()
        self.tick = 0
        self.phase: Any = None
        self._dynamic_partitions: dict[str, PartitionSpec] = {}
        self._dynamic_links: dict[str, LinkFault] = {}
        #: Heal log: partition name -> tick it was healed at (reporting only).
        self.healed: dict[str, int] = {}

    def begin_round(self, label: Any) -> None:
        self.tick += 1
        self.phase = label

    def set_partition(self, spec: PartitionSpec) -> None:
        """Activate (or replace) a named partition immediately."""
        self._dynamic_partitions[spec.name] = replace(spec, start_tick=0, heal_tick=None)
        self.healed.pop(spec.name, None)

    def heal(self, name: str) -> None:
        """Remove a dynamically set partition (no-op if absent)."""
        if self._dynamic_partitions.pop(name, None) is not None:
            self.healed[name] = self.tick

    def heal_all(self) -> None:
        for name in list(self._dynamic_partitions):
            self.heal(name)

    def add_link_fault(self, key: str, fault: LinkFault) -> None:
        if "->" not in key:
            raise BlockchainError(f"link key {key!r} must look like 'sender->recipient'")
        self._dynamic_links[key] = fault

    def remove_link_fault(self, key: str) -> None:
        self._dynamic_links.pop(key, None)

    def active_partitions(self) -> list[PartitionSpec]:
        active = [spec for spec in self.plan.partitions if spec.active_at(self.tick)]
        active.extend(self._dynamic_partitions.values())
        return active

    def _blocking_partition(self, sender: str, recipient: str) -> str | None:
        return blocking_partition(self.active_partitions(), sender, recipient)

    def _effective_fault(self, sender: str, recipient: str, topic: str) -> LinkFault:
        for key in (f"{sender}->{recipient}", f"{sender}->*", f"*->{recipient}"):
            fault = self._dynamic_links.get(key)
            if fault is not None and fault.applies_to(topic):
                return fault
        override = self.plan.link_fault(sender, recipient, topic)
        if override is not None:
            return override
        return LinkFault(
            drop_probability=self.plan.drop_probability,
            duplicate_probability=self.plan.duplicate_probability,
            latency_ticks=self.plan.latency_ticks,
        )


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------

class Transport:
    """How payloads cross the simulated wire.

    The :class:`~repro.blockchain.network.Network` resolves membership and
    handler tables, then hands each broadcast/send to the transport, which
    decides per-recipient outcomes and records them on the shared
    :class:`~repro.blockchain.network.NetworkStats`.
    """

    name = "transport"
    #: Whether deliveries can fail; retry/failover paths key off this so the
    #: deterministic transport stays byte-identical to the historical network.
    faulty = False

    def begin_round(self, label: Any) -> None:
        """Advance the transport's simulated clock (one tick per round attempt)."""

    def deliver_broadcast(
        self,
        sender_id: str,
        topic: str,
        payload: Any,
        handlers: Mapping[str, Callable[[str, Any], Any]],
        stats: "NetworkStats",
    ) -> BroadcastReport:
        raise NotImplementedError

    def deliver_send(
        self,
        sender_id: str,
        recipient_id: str,
        topic: str,
        payload: Any,
        handler: Callable[[str, Any], Any],
        stats: "NetworkStats",
    ) -> Delivery:
        raise NotImplementedError


def _invoke(recipient_id: str, handler, sender_id: str, payload: Any) -> Delivery:
    """Run one handler, capturing an exception as an ``error`` delivery."""
    try:
        return Delivery(recipient_id, DELIVERED, result=handler(sender_id, payload))
    except Exception as exc:  # noqa: BLE001 - a raising handler must not abort the sweep
        return Delivery(recipient_id, ERROR, error=str(exc), exception=exc)


class DeterministicTransport(Transport):
    """Synchronous, loss-free, sorted-order delivery — the historical semantics.

    Every recipient is attempted (a raising handler no longer aborts the loop
    mid-way; the failure is captured per recipient instead), delivery order is
    sorted node id, and nothing is ever dropped, duplicated, or delayed.
    Chains produced under this transport are byte-identical to pre-transport
    runs, which the parity tests pin against recorded head hashes.
    """

    name = "deterministic"
    faulty = False

    def deliver_broadcast(self, sender_id, topic, payload, handlers, stats) -> BroadcastReport:
        report = BroadcastReport(topic=topic, sender=sender_id)
        for recipient_id in sorted(handlers):
            delivery = _invoke(recipient_id, handlers[recipient_id], sender_id, payload)
            report.deliveries[recipient_id] = delivery
            stats.record_outcome(topic, delivery, peer=sender_id)
        return report

    def deliver_send(self, sender_id, recipient_id, topic, payload, handler, stats) -> Delivery:
        delivery = _invoke(recipient_id, handler, sender_id, payload)
        stats.record_outcome(topic, delivery, peer=sender_id)
        return delivery


class FaultInjectingTransport(FaultScheduleMixin, Transport):
    """Delivery under a seeded :class:`FaultPlan`, plus scenario-driven faults.

    Scheduled faults come from the plan (tick-windowed partitions, plan-wide
    and per-link probabilities); scenarios can additionally steer the
    transport imperatively — :meth:`set_partition` / :meth:`heal` for named
    partitions and :meth:`add_link_fault` / :meth:`remove_link_fault` for
    link overrides — which keeps fault windows aligned with protocol rounds
    rather than guessing tick numbers.
    """

    name = "faulty"
    faulty = True

    def __init__(self, plan: FaultPlan | None = None, per_link_rng: bool = False) -> None:
        self._init_fault_schedule(plan)
        self._rng = random.Random(int(self.plan.seed))
        #: Optional order-independent decision mode: draws come from a
        #: :class:`LinkFaultDecider` (per-link hash-derived streams) instead of
        #: the shared RNG, so decision sequences match the async transport's.
        #: Off by default — the shared stream is what the historical fault
        #: parity pins were recorded under.
        self.decider = LinkFaultDecider(int(self.plan.seed)) if per_link_rng else None

    # -- per-delivery decisions -----------------------------------------

    def _plan_delivery(self, sender: str, recipient: str, topic: str):
        """Draw one recipient's fate: a failed Delivery, or (latency, dup, lost)."""
        blocked = self._blocking_partition(sender, recipient)
        if blocked is not None:
            return Delivery(recipient, PARTITIONED, error=f"partitioned by {blocked!r}"), None
        fault = self._effective_fault(sender, recipient, topic)
        if self.decider is not None:
            decision = self.decider.decide(sender, recipient, fault, self.plan.timeout_ticks)
            if decision.dropped:
                return Delivery(recipient, DROPPED, error="dropped in transit"), None
            return None, (decision.latency, decision.duplicates, decision.response_lost)
        if fault.drop_probability and self._rng.random() < fault.drop_probability:
            return Delivery(recipient, DROPPED, error="dropped in transit"), None
        latency = self._rng.randint(0, fault.latency_ticks) if fault.latency_ticks else 0
        duplicates = (
            1
            if fault.duplicate_probability and self._rng.random() < fault.duplicate_probability
            else 0
        )
        response_lost = fault.response_timeout or latency > self.plan.timeout_ticks
        return None, (latency, duplicates, response_lost)

    def _deliver_one(
        self, sender, recipient, topic, payload, handler, latency, duplicates, response_lost
    ) -> Delivery:
        delivery = _invoke(recipient, handler, sender, payload)
        for _ in range(duplicates):
            # Duplicate copies re-invoke the handler; their results are
            # discarded, exactly like redundant gossip on a real network.
            _invoke(recipient, handler, sender, payload)
        delivery.latency = latency
        delivery.duplicates = duplicates
        if response_lost and delivery.status == DELIVERED:
            delivery = Delivery(
                recipient,
                TIMEOUT,
                error=f"response lost after {latency} tick(s) (> timeout "
                f"{self.plan.timeout_ticks})",
                latency=latency,
                duplicates=duplicates,
            )
        return delivery

    # -- Transport interface --------------------------------------------

    def deliver_broadcast(self, sender_id, topic, payload, handlers, stats) -> BroadcastReport:
        report = BroadcastReport(topic=topic, sender=sender_id)
        failed: list[Delivery] = []
        queued: list[tuple[int, str, tuple[int, int, bool]]] = []
        for recipient_id in sorted(handlers):
            failure, outcome = self._plan_delivery(sender_id, recipient_id, topic)
            if failure is not None:
                failed.append(failure)
            else:
                latency, duplicates, response_lost = outcome
                queued.append((latency, recipient_id, (latency, duplicates, response_lost)))
        for delivery in failed:
            report.deliveries[delivery.recipient] = delivery
            stats.record_outcome(topic, delivery, peer=sender_id)
        # The reordering window: deliveries land in (latency, recipient) order,
        # so a slow link really does apply the message after a faster peer's.
        for _, recipient_id, (latency, duplicates, response_lost) in sorted(
            queued, key=lambda item: (item[0], item[1])
        ):
            delivery = self._deliver_one(
                sender_id, recipient_id, topic, payload,
                handlers[recipient_id], latency, duplicates, response_lost,
            )
            report.deliveries[recipient_id] = delivery
            stats.record_outcome(topic, delivery, peer=sender_id)
        return report

    def deliver_send(self, sender_id, recipient_id, topic, payload, handler, stats) -> Delivery:
        failure, outcome = self._plan_delivery(sender_id, recipient_id, topic)
        if failure is not None:
            stats.record_outcome(topic, failure, peer=sender_id)
            return failure
        latency, duplicates, response_lost = outcome
        delivery = self._deliver_one(
            sender_id, recipient_id, topic, payload, handler, latency, duplicates, response_lost
        )
        stats.record_outcome(topic, delivery, peer=sender_id)
        return delivery


# ----------------------------------------------------------------------
# Wire framing (shared by the async transport and the swarm supervisor)
# ----------------------------------------------------------------------

#: Frame length prefix: 4-byte big-endian payload size.
_FRAME_HEADER = struct.Struct(">I")
#: Upper bound on one frame — a corrupt length prefix must not allocate GiBs.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(message: Any) -> bytes:
    """Pickle ``message`` and prepend the length header."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise BlockchainError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _FRAME_HEADER.pack(len(body)) + body


async def read_frame(reader: "asyncio.StreamReader") -> Any | None:
    """Read one length-prefixed frame; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BlockchainError(f"incoming frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = await reader.readexactly(length)
    return pickle.loads(body)


def write_frame_sync(sock: "socket.socket", message: Any) -> None:
    """Blocking-socket counterpart of :func:`encode_frame` + write."""
    sock.sendall(encode_frame(message))


def read_frame_sync(sock: "socket.socket") -> Any | None:
    """Blocking-socket counterpart of :func:`read_frame`; ``None`` on EOF."""

    def _read_exact(count: int) -> bytes | None:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    header = _read_exact(_FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BlockchainError(f"incoming frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _read_exact(length)
    if body is None:
        return None
    return pickle.loads(body)


# ----------------------------------------------------------------------
# Asyncio socket transport
# ----------------------------------------------------------------------

class _BackPressureDrop(Exception):
    """Raised when a peer link's bounded outbound queue stays full."""


class _PeerLink:
    """One directed outbound link: bounded queue + writer worker + reader.

    The queue is the gossip-storm valve: when a peer cannot drain its socket
    fast enough the queue fills, and after a short grace wait the sender
    *drops* the frame instead of buffering without bound.  All methods run on
    the transport's event loop.
    """

    def __init__(self, transport: "AsyncTransport", peer_id: str, path: str) -> None:
        self.transport = transport
        self.peer_id = peer_id
        self.path = path
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=transport.queue_size)
        #: In-flight requests awaiting a response, by message id.
        self.pending: dict[int, asyncio.Future] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._worker_task: asyncio.Task | None = None
        self._reader_task: asyncio.Task | None = None
        #: Fail-fast window after a connect failure (loop-clock deadline).
        self._down_until = 0.0

    # -- connection management (loop thread) ----------------------------

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        loop = asyncio.get_running_loop()
        if loop.time() < self._down_until:
            raise ConnectionError(f"peer {self.peer_id!r} marked down (recent connect failure)")
        last_error: Exception | None = None
        for attempt in range(self.transport.connect_attempts):
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(self.path)
                self._down_until = 0.0
                self._reader_task = loop.create_task(self._read_responses())
                if attempt:
                    self.transport.counters["reconnects"] += 1
                return
            except OSError as exc:
                last_error = exc
                await asyncio.sleep(min(0.05 * (attempt + 1), 0.5))
        self._down_until = loop.time() + self.transport.down_window
        raise ConnectionError(f"peer {self.peer_id!r} unreachable: {last_error}")

    def _reset_connection(self, error: Exception) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None
        if self._reader_task is not None:
            self._reader_task = None
        for future in self.pending.values():
            if not future.done():
                future.set_exception(ConnectionError(f"link to {self.peer_id!r} lost: {error}"))
        self.pending.clear()

    async def _read_responses(self) -> None:
        reader = self._reader
        try:
            while reader is not None:
                frame = await read_frame(reader)
                if frame is None:
                    break
                future = self.pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except Exception as exc:  # noqa: BLE001 - a broken link fails pending requests
            self._reset_connection(exc)
            return
        self._reset_connection(ConnectionError("peer closed connection"))

    async def _drain_queue(self) -> None:
        while True:
            frame_bytes, msg_id = await self.queue.get()
            try:
                await self._connect()
                assert self._writer is not None
                self._writer.write(frame_bytes)
                await self._writer.drain()
                self.transport.counters["frames_sent"] += 1
            except Exception as exc:  # noqa: BLE001 - fail this frame, keep the link alive
                future = self.pending.pop(msg_id, None)
                if future is not None and not future.done():
                    future.set_exception(
                        ConnectionError(f"send to {self.peer_id!r} failed: {exc}")
                    )
                if self._writer is not None:
                    self._reset_connection(exc)

    # -- sending (loop thread) ------------------------------------------

    def ensure_worker(self) -> None:
        if self._worker_task is None or self._worker_task.done():
            self._worker_task = asyncio.get_running_loop().create_task(self._drain_queue())

    async def submit(self, frame: dict[str, Any], expect_response: bool) -> asyncio.Future | None:
        """Enqueue one frame; back-pressure drop if the queue stays full."""
        self.ensure_worker()
        msg_id = frame["id"]
        future: asyncio.Future | None = None
        if expect_response:
            future = asyncio.get_running_loop().create_future()
            self.pending[msg_id] = future
        item = (encode_frame(frame), msg_id)
        try:
            self.queue.put_nowait(item)
        except asyncio.QueueFull:
            try:
                await asyncio.wait_for(
                    self.queue.put(item), self.transport.backpressure_wait
                )
            except asyncio.TimeoutError:
                self.pending.pop(msg_id, None)
                self.transport.counters["backpressure_drops"] += 1
                raise _BackPressureDrop(
                    f"outbound queue to {self.peer_id!r} full "
                    f"({self.transport.queue_size} frames)"
                ) from None
        return future

    async def close(self) -> None:
        for task in (self._worker_task, self._reader_task):
            if task is not None:
                task.cancel()
        if self._writer is not None:
            self._writer.close()
        self._reset_connection(ConnectionError("transport stopped"))


class AsyncTransport(FaultScheduleMixin, Transport):
    """Real-socket delivery: length-prefixed pickled frames over Unix sockets.

    Implements the same :meth:`deliver_broadcast` / :meth:`deliver_send`
    contract as the simulated transports, but each recipient delivery is a
    framed request/response over an asyncio connection, sent concurrently and
    bounded by a *wall-clock* response timeout.  A recipient that does not
    answer in time yields a ``timeout`` delivery — exactly the signal the
    timeout-as-abstain quorum path consumes — and a dead peer degrades to
    timeouts instead of hanging the round.

    One transport instance lives inside each swarm peer process and owns:

    * a background event loop thread (all socket I/O),
    * per-peer outbound :class:`_PeerLink` queues with bounded back-pressure,
    * the peer's own frame server (started by :meth:`serve`), which runs
      incoming handlers on a thread pool so a handler may itself use the
      network (resync inside a proposal handler) without deadlocking the loop,
    * an optional :class:`FaultPlan` gate, evaluated sender-side with
      :class:`LinkFaultDecider` so fault decisions are seed-stable per link
      even though sends interleave nondeterministically.

    Simulated-latency ticks are scaled by ``tick_seconds`` into real sleeps,
    which preserves the plan's reordering behaviour on the wire.
    """

    name = "async"
    faulty = True

    def __init__(
        self,
        node_id: str,
        peers: Mapping[str, str],
        plan: FaultPlan | None = None,
        request_timeout: float = 5.0,
        queue_size: int = 32,
        tick_seconds: float = 0.01,
        connect_attempts: int = 10,
        backpressure_wait: float = 0.25,
        down_window: float = 1.0,
        handler_threads: int = 8,
    ) -> None:
        if node_id not in peers:
            raise BlockchainError(f"peer table must include the local node {node_id!r}")
        self._init_fault_schedule(plan)
        self.node_id = node_id
        self.peers = dict(peers)
        self.decider = LinkFaultDecider(int(self.plan.seed)) if plan is not None else None
        self.request_timeout = float(request_timeout)
        self.queue_size = int(queue_size)
        self.tick_seconds = float(tick_seconds)
        self.connect_attempts = int(connect_attempts)
        self.backpressure_wait = float(backpressure_wait)
        self.down_window = float(down_window)
        #: Link/frame counters for the per-peer delivery report.
        self.counters: dict[str, int] = {
            "frames_sent": 0,
            "frames_served": 0,
            "reconnects": 0,
            "backpressure_drops": 0,
            "fault_drops": 0,
            "partitioned": 0,
            "timeouts": 0,
        }
        self._links: dict[str, _PeerLink] = {}
        self._next_id = 0
        self._server: asyncio.AbstractServer | None = None
        self._dispatch: Callable[[str, str, Any], Any] | None = None
        self._ctrl: Callable[[str, Any], Any] | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix=f"{node_id}-handler"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the background event loop thread (idempotent)."""
        if self._loop is not None:
            return
        ready = threading.Event()
        loop_holder: list[asyncio.AbstractEventLoop] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop_holder.append(loop)
            ready.set()
            loop.run_forever()
            # Drain cancelled tasks so their teardown runs before close.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
            loop.close()

        self._thread = threading.Thread(
            target=_run, name=f"{self.node_id}-transport-loop", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=10):
            raise BlockchainError(f"transport loop for {self.node_id!r} failed to start")
        self._loop = loop_holder[0]
        # Tag the loop with its thread so _deliver can refuse loop-thread calls
        # (a blocking wait there would deadlock the transport).
        self._loop._thread_ref = self._thread  # type: ignore[attr-defined]

    def serve(
        self,
        dispatch: Callable[[str, str, Any], Any],
        ctrl: Callable[[str, Any], Any] | None = None,
    ) -> None:
        """Start this peer's frame server on its own socket path.

        ``dispatch(sender_id, topic, payload)`` handles peer messages and
        ``ctrl(command, args)`` supervisor control frames; both run on the
        handler thread pool, never on the event loop.
        """
        self.start()
        self._dispatch = dispatch
        self._ctrl = ctrl
        future = asyncio.run_coroutine_threadsafe(self._start_server(), self._require_loop())
        future.result(timeout=10)

    async def _start_server(self) -> None:
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.peers[self.node_id]
        )

    def stop(self) -> None:
        """Tear down the server, all links, and the loop thread."""
        loop = self._loop
        if loop is None:
            return

        async def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for link in self._links.values():
                await link.close()

        try:
            asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(timeout=10)
        except Exception:  # noqa: BLE001 - teardown must not mask the caller's exit
            pass
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._executor.shutdown(wait=False)
        self._loop = None
        self._thread = None

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise BlockchainError(f"transport for {self.node_id!r} is not started")
        return self._loop

    # -- server side (loop thread) --------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                task = loop.create_task(self._handle_frame(frame, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # transport teardown closes the server mid-read
        finally:
            writer.close()

    async def _handle_frame(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        loop = asyncio.get_running_loop()
        kind = frame.get("kind")
        try:
            if kind == "msg":
                if self._dispatch is None:
                    raise BlockchainError("no message dispatcher installed")
                result = await loop.run_in_executor(
                    self._executor,
                    self._dispatch,
                    frame["sender"],
                    frame["topic"],
                    frame["payload"],
                )
            elif kind == "ctrl":
                if self._ctrl is None:
                    raise BlockchainError("no ctrl dispatcher installed")
                result = await loop.run_in_executor(
                    self._executor, self._ctrl, frame["command"], frame.get("args")
                )
            else:
                raise BlockchainError(f"unknown frame kind {kind!r}")
            response = {"kind": "resp", "id": frame.get("id"), "status": "ok", "result": result}
        except Exception as exc:  # noqa: BLE001 - a raising handler answers with an error frame
            response = {
                "kind": "resp", "id": frame.get("id"), "status": "error", "error": str(exc),
            }
        self.counters["frames_served"] += 1
        try:
            async with write_lock:
                writer.write(encode_frame(response))
                await writer.drain()
        except Exception:  # noqa: BLE001 - requester gone; nothing to answer
            pass

    # -- client side -----------------------------------------------------

    def _link(self, peer_id: str) -> _PeerLink:
        link = self._links.get(peer_id)
        if link is None:
            path = self.peers.get(peer_id)
            if path is None:
                raise BlockchainError(f"no socket path registered for peer {peer_id!r}")
            link = _PeerLink(self, peer_id, path)
            self._links[peer_id] = link
        return link

    async def _send_one(self, sender: str, recipient: str, topic: str, payload: Any) -> Delivery:
        blocked = blocking_partition(self.active_partitions(), sender, recipient)
        if blocked is not None:
            self.counters["partitioned"] += 1
            return Delivery(recipient, PARTITIONED, error=f"partitioned by {blocked!r}")
        decision = FaultDecision()
        if self.decider is not None:
            fault = self._effective_fault(sender, recipient, topic)
            decision = self.decider.decide(sender, recipient, fault, self.plan.timeout_ticks)
        if decision.dropped:
            self.counters["fault_drops"] += 1
            return Delivery(recipient, DROPPED, error="dropped in transit")
        if decision.latency and self.tick_seconds:
            await asyncio.sleep(decision.latency * self.tick_seconds)
        link = self._link(recipient)
        self._next_id += 1
        frame = {
            "kind": "msg", "id": self._next_id,
            "sender": sender, "topic": topic, "payload": payload,
        }
        try:
            for _ in range(decision.duplicates):
                # Duplicate copies re-invoke the remote handler; their
                # responses are discarded, like redundant gossip.
                self._next_id += 1
                await link.submit({**frame, "id": self._next_id}, expect_response=False)
            future = await link.submit(frame, expect_response=True)
        except _BackPressureDrop as exc:
            return Delivery(
                recipient, DROPPED,
                error=str(exc), latency=decision.latency, duplicates=decision.duplicates,
            )
        assert future is not None
        if decision.response_lost:
            # The frame is on the wire and the remote handler will run, but
            # this sender deliberately abandons the response — the simulated
            # transports' "response lost" semantics, now over a real socket.
            future.add_done_callback(lambda f: f.exception() if not f.cancelled() else None)
            self.counters["timeouts"] += 1
            return Delivery(
                recipient, TIMEOUT,
                error=f"response lost after {decision.latency} tick(s) "
                f"(> timeout {self.plan.timeout_ticks})",
                latency=decision.latency, duplicates=decision.duplicates,
            )
        try:
            response = await asyncio.wait_for(future, self.request_timeout)
        except asyncio.TimeoutError:
            link.pending.pop(frame["id"], None)
            self.counters["timeouts"] += 1
            return Delivery(
                recipient, TIMEOUT,
                error=f"no response within {self.request_timeout}s",
                latency=decision.latency, duplicates=decision.duplicates,
            )
        except (ConnectionError, OSError) as exc:
            # An unreachable peer is indistinguishable from a slow one at the
            # protocol level: record a timeout so the quorum counts an abstain.
            self.counters["timeouts"] += 1
            return Delivery(
                recipient, TIMEOUT, error=str(exc),
                latency=decision.latency, duplicates=decision.duplicates,
            )
        if response.get("status") != "ok":
            return Delivery(
                recipient, ERROR, error=str(response.get("error", "remote handler failed")),
                latency=decision.latency, duplicates=decision.duplicates,
            )
        return Delivery(
            recipient, DELIVERED, result=response.get("result"),
            latency=decision.latency, duplicates=decision.duplicates,
        )

    def _deliver(self, sender_id: str, recipient_id: str, topic: str, payload: Any,
                 handler: Callable[[str, Any], Any]) -> "concurrent.futures.Future":
        if recipient_id == self.node_id:
            # Local loopback: invoke directly, no socket round-trip.
            local: concurrent.futures.Future = concurrent.futures.Future()
            local.set_result(_invoke(recipient_id, handler, sender_id, payload))
            return local
        loop = self._require_loop()
        if threading.current_thread() is getattr(loop, "_thread_ref", None):
            raise BlockchainError("transport deliver called from its own event loop thread")
        return asyncio.run_coroutine_threadsafe(
            self._send_one(sender_id, recipient_id, topic, payload), loop
        )

    def _await_delivery(
        self, future: "concurrent.futures.Future", recipient_id: str
    ) -> Delivery:
        # _send_one bounds every wait internally; this outer deadline is a
        # last-resort guard so a transport bug cannot hang a consensus round.
        try:
            return future.result(timeout=self.request_timeout * 2 + 30)
        except concurrent.futures.TimeoutError:
            future.cancel()
            self.counters["timeouts"] += 1
            return Delivery(recipient_id, TIMEOUT, error="transport deadline exceeded")
        except Exception as exc:  # noqa: BLE001 - a failed send is an abstain, not a crash
            return Delivery(recipient_id, TIMEOUT, error=str(exc))

    # -- Transport interface --------------------------------------------

    def deliver_broadcast(self, sender_id, topic, payload, handlers, stats) -> BroadcastReport:
        report = BroadcastReport(topic=topic, sender=sender_id)
        in_flight = [
            (recipient_id, self._deliver(sender_id, recipient_id, topic, payload,
                                         handlers[recipient_id]))
            for recipient_id in sorted(handlers)
        ]
        for recipient_id, future in in_flight:
            delivery = self._await_delivery(future, recipient_id)
            report.deliveries[recipient_id] = delivery
            stats.record_outcome(topic, delivery, peer=sender_id)
        return report

    def deliver_send(self, sender_id, recipient_id, topic, payload, handler, stats) -> Delivery:
        future = self._deliver(sender_id, recipient_id, topic, payload, handler)
        delivery = self._await_delivery(future, recipient_id)
        stats.record_outcome(topic, delivery, peer=sender_id)
        return delivery

    def transport_report(self) -> dict[str, Any]:
        """Link counters + fault-decision log size (per-peer delivery report)."""
        report: dict[str, Any] = dict(self.counters)
        report["peers"] = sorted(self.peers)
        report["decisions"] = 0 if self.decider is None else len(self.decider.log)
        return report
