"""Pluggable message transports: deterministic delivery and seeded fault injection.

The :class:`~repro.blockchain.network.Network` owns the membership and topic
tables; *how* a payload crosses the wire is delegated to a :class:`Transport`.
Two implementations ship:

* :class:`DeterministicTransport` — today's synchronous, sorted-order,
  loss-free delivery, byte-for-byte identical to the historical network loop
  (pinned by the transport-parity tests against pre-transport chain hashes).
* :class:`FaultInjectingTransport` — delivery driven by a seeded, declarative
  :class:`FaultPlan`: per-link drop probability, duplication, latency with a
  reordering window, per-broadcast response timeouts, and named partitions
  (full or directional) that can heal mid-run.

Determinism is the design invariant: the simulation is single-threaded, so a
fixed plan (seed included) consumes its RNG in one reproducible sequence and
two runs of the same faulty scenario produce identical chains, delivery
reports, and settlement tables.  Simulated time advances in *ticks* — one per
round attempt (``Network.begin_round``) — which is what partition windows and
retry backoff schedules are expressed in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.exceptions import BlockchainError

# Delivery outcome statuses.
DELIVERED = "delivered"
DROPPED = "dropped"
PARTITIONED = "partitioned"
TIMEOUT = "timeout"
ERROR = "error"

#: Statuses for which the message never reached (or never answered) — the
#: sender may retry these; a handler *error* did reach and must not be retried
#: blindly.
UNDELIVERED_STATUSES = (DROPPED, PARTITIONED, TIMEOUT)

PARTITION_DIRECTIONS = ("both", "inbound", "outbound")


@dataclass
class Delivery:
    """The outcome of delivering one payload to one recipient.

    Attributes:
        recipient: the receiving node id.
        status: one of ``delivered`` / ``dropped`` / ``partitioned`` /
            ``timeout`` (the handler ran but its response was lost to the
            sender) / ``error`` (the handler raised).
        result: the handler's return value (``delivered`` only).
        error: human-readable failure description for non-delivered statuses.
        exception: the raised exception object for ``error`` deliveries (kept
            so :meth:`Network.send` can preserve raise-through semantics).
        attempts: total send attempts for this recipient (1 + retries).
        duplicates: extra copies the transport delivered (handler re-invoked).
        latency: simulated delivery latency in ticks.
    """

    recipient: str
    status: str
    result: Any = None
    error: str = ""
    exception: Exception | None = None
    attempts: int = 1
    duplicates: int = 0
    latency: int = 0

    @property
    def delivered(self) -> bool:
        return self.status == DELIVERED


@dataclass(frozen=True)
class HandlerFailure:
    """Recorded in a broadcast's result map when a recipient's handler raised.

    Pre-transport, a raising handler aborted the delivery loop mid-way:
    earlier recipients had applied the message, later ones never saw it, and
    nothing recorded the failure.  Now every recipient is attempted and the
    failure is first-class data in the result map.
    """

    recipient: str
    error: str


@dataclass
class BroadcastReport:
    """Everything one broadcast produced: per-recipient deliveries + retries."""

    topic: str
    sender: str
    deliveries: dict[str, Delivery] = field(default_factory=dict)
    #: Simulated exponential-backoff waits (in ticks) the sender sat through
    #: between retry sweeps; accounting only — the simulation does not sleep.
    retry_backoffs: list[int] = field(default_factory=list)

    def results(self) -> dict[str, Any]:
        """The legacy result map: handler results, plus recorded handler failures."""
        results: dict[str, Any] = {}
        for recipient, delivery in self.deliveries.items():
            if delivery.status == DELIVERED:
                results[recipient] = delivery.result
            elif delivery.status == ERROR:
                results[recipient] = HandlerFailure(recipient, delivery.error)
        return results

    def undelivered(self) -> list[str]:
        """Recipients the message never (confirmably) reached, sorted."""
        return sorted(
            recipient
            for recipient, delivery in self.deliveries.items()
            if delivery.status in UNDELIVERED_STATUSES
        )


# ----------------------------------------------------------------------
# Declarative fault plans
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkFault:
    """Fault overrides for one directed link (``sender -> recipient``).

    ``topics`` scopes the fault to specific topics (empty = all).
    ``response_timeout`` forces the *response-lost* path: the payload is
    delivered and the handler runs, but the sender never sees the return
    value — exactly how a vote is lost without the proposal being lost.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    latency_ticks: int = 0
    response_timeout: bool = False
    topics: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BlockchainError(f"LinkFault.{name} must be in [0, 1], got {value}")
        if self.latency_ticks < 0:
            raise BlockchainError("LinkFault.latency_ticks must be non-negative")
        object.__setattr__(self, "topics", tuple(self.topics))

    def applies_to(self, topic: str) -> bool:
        return not self.topics or topic in self.topics

    def to_dict(self) -> dict[str, Any]:
        return {
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "latency_ticks": self.latency_ticks,
            "response_timeout": self.response_timeout,
            "topics": list(self.topics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LinkFault":
        return cls(
            drop_probability=float(payload.get("drop_probability", 0.0)),
            duplicate_probability=float(payload.get("duplicate_probability", 0.0)),
            latency_ticks=int(payload.get("latency_ticks", 0)),
            response_timeout=bool(payload.get("response_timeout", False)),
            topics=tuple(payload.get("topics", ())),
        )


@dataclass(frozen=True)
class PartitionSpec:
    """A named network partition over explicit cells of nodes.

    Nodes not listed in any cell form one implicit cell of their own; traffic
    between different cells is blocked.  ``direction`` refines the block for
    eclipse-style attacks: ``inbound`` only blocks messages *into* explicit
    cells (an eclipsed victim can still talk out), ``outbound`` only messages
    *out of* them.  ``start_tick`` / ``heal_tick`` bound the partition's
    lifetime on the transport's tick clock (``heal_tick=None`` = never heals
    by schedule; scenarios may still heal it explicitly).
    """

    name: str
    cells: tuple[tuple[str, ...], ...]
    direction: str = "both"
    start_tick: int = 0
    heal_tick: int | None = None

    def __post_init__(self) -> None:
        cells = tuple(tuple(cell) for cell in self.cells)
        if not cells or any(not cell for cell in cells):
            raise BlockchainError(f"partition {self.name!r} needs at least one non-empty cell")
        seen: set[str] = set()
        for cell in cells:
            for node in cell:
                if node in seen:
                    raise BlockchainError(
                        f"partition {self.name!r}: node {node!r} appears in two cells"
                    )
                seen.add(node)
        if self.direction not in PARTITION_DIRECTIONS:
            raise BlockchainError(
                f"partition {self.name!r}: direction must be one of {PARTITION_DIRECTIONS}"
            )
        if self.heal_tick is not None and self.heal_tick <= self.start_tick:
            raise BlockchainError(f"partition {self.name!r}: heal_tick must follow start_tick")
        object.__setattr__(self, "cells", cells)

    def active_at(self, tick: int) -> bool:
        if tick < self.start_tick:
            return False
        return self.heal_tick is None or tick < self.heal_tick

    def cell_of(self, node_id: str) -> int | None:
        """Index of the explicit cell holding ``node_id`` (None = implicit cell)."""
        for index, cell in enumerate(self.cells):
            if node_id in cell:
                return index
        return None

    def blocks(self, sender: str, recipient: str) -> bool:
        """Whether this partition blocks a ``sender -> recipient`` delivery."""
        sender_cell = self.cell_of(sender)
        recipient_cell = self.cell_of(recipient)
        if sender_cell == recipient_cell:
            # Same explicit cell, or both in the implicit cell: no boundary.
            return False
        if self.direction == "inbound":
            return recipient_cell is not None
        if self.direction == "outbound":
            return sender_cell is not None
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "cells": [list(cell) for cell in self.cells],
            "direction": self.direction,
            "start_tick": self.start_tick,
            "heal_tick": self.heal_tick,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionSpec":
        return cls(
            name=str(payload["name"]),
            cells=tuple(tuple(cell) for cell in payload["cells"]),
            direction=str(payload.get("direction", "both")),
            start_tick=int(payload.get("start_tick", 0)),
            heal_tick=None if payload.get("heal_tick") is None else int(payload["heal_tick"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of everything that goes wrong.

    Plan-wide defaults apply to every delivery; ``links`` overrides them per
    directed link, keyed ``"sender->recipient"`` with ``*`` wildcards on
    either side (most specific match wins: exact, then ``sender->*``, then
    ``*->recipient``).  ``timeout_ticks`` is the per-broadcast response
    window: a delivery whose drawn latency exceeds it still runs the
    recipient's handler, but the sender records a ``timeout`` instead of the
    response.  Deliveries of one broadcast are applied in ``(latency,
    recipient)`` order — the reordering window.

    The plan (seed included) fully determines the fault sequence: the
    simulation is single-threaded and draws from one ``random.Random(seed)``
    stream, so identical plans yield identical runs.
    """

    seed: int = 0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    latency_ticks: int = 0
    timeout_ticks: int = 2
    partitions: tuple[PartitionSpec, ...] = ()
    links: tuple[tuple[str, LinkFault], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BlockchainError(f"FaultPlan.{name} must be in [0, 1], got {value}")
        if self.latency_ticks < 0 or self.timeout_ticks < 0:
            raise BlockchainError("FaultPlan tick parameters must be non-negative")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        links = self.links.items() if isinstance(self.links, Mapping) else self.links
        normalized = []
        for key, fault in links:
            if "->" not in key:
                raise BlockchainError(f"link key {key!r} must look like 'sender->recipient'")
            normalized.append((str(key), fault))
        object.__setattr__(self, "links", tuple(normalized))

    def link_fault(self, sender: str, recipient: str, topic: str) -> LinkFault | None:
        """The most specific link override matching a delivery, if any."""
        table = dict(self.links)
        for key in (f"{sender}->{recipient}", f"{sender}->*", f"*->{recipient}"):
            fault = table.get(key)
            if fault is not None and fault.applies_to(topic):
                return fault
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "latency_ticks": self.latency_ticks,
            "timeout_ticks": self.timeout_ticks,
            "partitions": [spec.to_dict() for spec in self.partitions],
            "links": {key: fault.to_dict() for key, fault in self.links},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        links = payload.get("links", {})
        link_items = links.items() if isinstance(links, Mapping) else links
        return cls(
            seed=int(payload.get("seed", 0)),
            drop_probability=float(payload.get("drop_probability", 0.0)),
            duplicate_probability=float(payload.get("duplicate_probability", 0.0)),
            latency_ticks=int(payload.get("latency_ticks", 0)),
            timeout_ticks=int(payload.get("timeout_ticks", 2)),
            partitions=tuple(
                PartitionSpec.from_dict(spec) for spec in payload.get("partitions", ())
            ),
            links=tuple((str(key), LinkFault.from_dict(fault)) for key, fault in link_items),
        )


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------

class Transport:
    """How payloads cross the simulated wire.

    The :class:`~repro.blockchain.network.Network` resolves membership and
    handler tables, then hands each broadcast/send to the transport, which
    decides per-recipient outcomes and records them on the shared
    :class:`~repro.blockchain.network.NetworkStats`.
    """

    name = "transport"
    #: Whether deliveries can fail; retry/failover paths key off this so the
    #: deterministic transport stays byte-identical to the historical network.
    faulty = False

    def begin_round(self, label: Any) -> None:
        """Advance the transport's simulated clock (one tick per round attempt)."""

    def deliver_broadcast(
        self,
        sender_id: str,
        topic: str,
        payload: Any,
        handlers: Mapping[str, Callable[[str, Any], Any]],
        stats: "NetworkStats",
    ) -> BroadcastReport:
        raise NotImplementedError

    def deliver_send(
        self,
        sender_id: str,
        recipient_id: str,
        topic: str,
        payload: Any,
        handler: Callable[[str, Any], Any],
        stats: "NetworkStats",
    ) -> Delivery:
        raise NotImplementedError


def _invoke(recipient_id: str, handler, sender_id: str, payload: Any) -> Delivery:
    """Run one handler, capturing an exception as an ``error`` delivery."""
    try:
        return Delivery(recipient_id, DELIVERED, result=handler(sender_id, payload))
    except Exception as exc:  # noqa: BLE001 - a raising handler must not abort the sweep
        return Delivery(recipient_id, ERROR, error=str(exc), exception=exc)


class DeterministicTransport(Transport):
    """Synchronous, loss-free, sorted-order delivery — the historical semantics.

    Every recipient is attempted (a raising handler no longer aborts the loop
    mid-way; the failure is captured per recipient instead), delivery order is
    sorted node id, and nothing is ever dropped, duplicated, or delayed.
    Chains produced under this transport are byte-identical to pre-transport
    runs, which the parity tests pin against recorded head hashes.
    """

    name = "deterministic"
    faulty = False

    def deliver_broadcast(self, sender_id, topic, payload, handlers, stats) -> BroadcastReport:
        report = BroadcastReport(topic=topic, sender=sender_id)
        for recipient_id in sorted(handlers):
            delivery = _invoke(recipient_id, handlers[recipient_id], sender_id, payload)
            report.deliveries[recipient_id] = delivery
            stats.record_outcome(topic, delivery)
        return report

    def deliver_send(self, sender_id, recipient_id, topic, payload, handler, stats) -> Delivery:
        delivery = _invoke(recipient_id, handler, sender_id, payload)
        stats.record_outcome(topic, delivery)
        return delivery


class FaultInjectingTransport(Transport):
    """Delivery under a seeded :class:`FaultPlan`, plus scenario-driven faults.

    Scheduled faults come from the plan (tick-windowed partitions, plan-wide
    and per-link probabilities); scenarios can additionally steer the
    transport imperatively — :meth:`set_partition` / :meth:`heal` for named
    partitions and :meth:`add_link_fault` / :meth:`remove_link_fault` for
    link overrides — which keeps fault windows aligned with protocol rounds
    rather than guessing tick numbers.
    """

    name = "faulty"
    faulty = True

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._rng = random.Random(int(self.plan.seed))
        self.tick = 0
        self.phase: Any = None
        self._dynamic_partitions: dict[str, PartitionSpec] = {}
        self._dynamic_links: dict[str, LinkFault] = {}
        #: Heal log: partition name -> tick it was healed at (reporting only).
        self.healed: dict[str, int] = {}

    # -- clock and dynamic fault control --------------------------------

    def begin_round(self, label: Any) -> None:
        self.tick += 1
        self.phase = label

    def set_partition(self, spec: PartitionSpec) -> None:
        """Activate (or replace) a named partition immediately."""
        self._dynamic_partitions[spec.name] = replace(spec, start_tick=0, heal_tick=None)
        self.healed.pop(spec.name, None)

    def heal(self, name: str) -> None:
        """Remove a dynamically set partition (no-op if absent)."""
        if self._dynamic_partitions.pop(name, None) is not None:
            self.healed[name] = self.tick

    def heal_all(self) -> None:
        for name in list(self._dynamic_partitions):
            self.heal(name)

    def add_link_fault(self, key: str, fault: LinkFault) -> None:
        if "->" not in key:
            raise BlockchainError(f"link key {key!r} must look like 'sender->recipient'")
        self._dynamic_links[key] = fault

    def remove_link_fault(self, key: str) -> None:
        self._dynamic_links.pop(key, None)

    def active_partitions(self) -> list[PartitionSpec]:
        active = [spec for spec in self.plan.partitions if spec.active_at(self.tick)]
        active.extend(self._dynamic_partitions.values())
        return active

    # -- per-delivery decisions -----------------------------------------

    def _blocking_partition(self, sender: str, recipient: str) -> str | None:
        for spec in self.active_partitions():
            if spec.blocks(sender, recipient):
                return spec.name
        return None

    def _effective_fault(self, sender: str, recipient: str, topic: str) -> LinkFault:
        for key in (f"{sender}->{recipient}", f"{sender}->*", f"*->{recipient}"):
            fault = self._dynamic_links.get(key)
            if fault is not None and fault.applies_to(topic):
                return fault
        override = self.plan.link_fault(sender, recipient, topic)
        if override is not None:
            return override
        return LinkFault(
            drop_probability=self.plan.drop_probability,
            duplicate_probability=self.plan.duplicate_probability,
            latency_ticks=self.plan.latency_ticks,
        )

    def _plan_delivery(self, sender: str, recipient: str, topic: str):
        """Draw one recipient's fate: a failed Delivery, or (latency, dup, lost)."""
        blocked = self._blocking_partition(sender, recipient)
        if blocked is not None:
            return Delivery(recipient, PARTITIONED, error=f"partitioned by {blocked!r}"), None
        fault = self._effective_fault(sender, recipient, topic)
        if fault.drop_probability and self._rng.random() < fault.drop_probability:
            return Delivery(recipient, DROPPED, error="dropped in transit"), None
        latency = self._rng.randint(0, fault.latency_ticks) if fault.latency_ticks else 0
        duplicates = (
            1
            if fault.duplicate_probability and self._rng.random() < fault.duplicate_probability
            else 0
        )
        response_lost = fault.response_timeout or latency > self.plan.timeout_ticks
        return None, (latency, duplicates, response_lost)

    def _deliver_one(
        self, sender, recipient, topic, payload, handler, latency, duplicates, response_lost
    ) -> Delivery:
        delivery = _invoke(recipient, handler, sender, payload)
        for _ in range(duplicates):
            # Duplicate copies re-invoke the handler; their results are
            # discarded, exactly like redundant gossip on a real network.
            _invoke(recipient, handler, sender, payload)
        delivery.latency = latency
        delivery.duplicates = duplicates
        if response_lost and delivery.status == DELIVERED:
            delivery = Delivery(
                recipient,
                TIMEOUT,
                error=f"response lost after {latency} tick(s) (> timeout "
                f"{self.plan.timeout_ticks})",
                latency=latency,
                duplicates=duplicates,
            )
        return delivery

    # -- Transport interface --------------------------------------------

    def deliver_broadcast(self, sender_id, topic, payload, handlers, stats) -> BroadcastReport:
        report = BroadcastReport(topic=topic, sender=sender_id)
        failed: list[Delivery] = []
        queued: list[tuple[int, str, tuple[int, int, bool]]] = []
        for recipient_id in sorted(handlers):
            failure, outcome = self._plan_delivery(sender_id, recipient_id, topic)
            if failure is not None:
                failed.append(failure)
            else:
                latency, duplicates, response_lost = outcome
                queued.append((latency, recipient_id, (latency, duplicates, response_lost)))
        for delivery in failed:
            report.deliveries[delivery.recipient] = delivery
            stats.record_outcome(topic, delivery)
        # The reordering window: deliveries land in (latency, recipient) order,
        # so a slow link really does apply the message after a faster peer's.
        for _, recipient_id, (latency, duplicates, response_lost) in sorted(
            queued, key=lambda item: (item[0], item[1])
        ):
            delivery = self._deliver_one(
                sender_id, recipient_id, topic, payload,
                handlers[recipient_id], latency, duplicates, response_lost,
            )
            report.deliveries[recipient_id] = delivery
            stats.record_outcome(topic, delivery)
        return report

    def deliver_send(self, sender_id, recipient_id, topic, payload, handler, stats) -> Delivery:
        failure, outcome = self._plan_delivery(sender_id, recipient_id, topic)
        if failure is not None:
            stats.record_outcome(topic, failure)
            return failure
        latency, duplicates, response_lost = outcome
        delivery = self._deliver_one(
            sender_id, recipient_id, topic, payload, handler, latency, duplicates, response_lost
        )
        stats.record_outcome(topic, delivery)
        return delivery
