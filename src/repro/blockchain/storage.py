"""Pluggable persistence under the chain: the storage-backend layer.

A :class:`~repro.blockchain.chain.Blockchain` is a pure in-memory replica; a
:class:`StorageBackend` attached to it mirrors every sealed block to durable
storage and can restore a replica from that storage after a restart.  The
backend is strictly *under* the chain: it never changes what gets committed,
so backend choice is off-chain configuration (never part of
``ProtocolConfig.on_chain_params()``) and in-memory chains stay byte-identical
whether or not a backend is attached.

Two backends ship here:

* :class:`InMemoryBackend` — the default no-op; the chain behaves exactly as
  before this layer existed.
* :class:`SQLiteBackend` — an append-only block log (write-ahead, one
  canonical JSON line per block) plus a SQLite database holding the block
  records, the live key-value state, the per-block reverse deltas, the nonce
  counters, and a ``committed_height`` watermark.  Every sealed block is one
  SQLite transaction, so a crash at *any* write boundary reopens to the last
  sealed block: either the transaction committed (the block is fully durable)
  or it rolled back (the store is exactly the pre-commit state).  The block
  log is advisory redundancy — a torn tail line is ignored because the SQLite
  watermark is authoritative — kept because a plain-text, append-only record
  of every block is the cheapest possible audit trail to ship to cold storage.

Crash-safety is testable, not asserted: :attr:`SQLiteBackend.crash_hook` is a
fault-injection point fired immediately *before* each named write boundary
(see :data:`WRITE_BOUNDARIES`); raising from it simulates the process dying
mid-commit, and the property tests reopen the file and check the invariant at
every single boundary.
"""

from __future__ import annotations

import os
import sqlite3
from typing import TYPE_CHECKING, Any, Callable

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.state import WorldState
from repro.blockchain.transaction import Transaction, TransactionReceipt
from repro.exceptions import StorageError
from repro.utils.hashing import sha256_hex
from repro.utils.serialization import canonical_dumps, canonical_loads

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.blockchain.chain import Blockchain

SCHEMA_VERSION = 1

# The named write boundaries of one SQLiteBackend.commit_block, in order.
# The crash hook fires immediately before each one; a crash at boundary i
# means boundaries 0..i-1 executed and i..end did not.
WRITE_BOUNDARIES = (
    "block-log",
    "begin",
    "blocks",
    "kv",
    "deltas",
    "nonces",
    "meta",
    "commit",
)


# ---------------------------------------------------------------------------
# Block (de)serialization
# ---------------------------------------------------------------------------


def block_to_record(block: Block) -> dict[str, Any]:
    """A canonical-serializable record of one block (inverse of :func:`block_from_record`)."""
    header: dict[str, Any] = {
        "height": block.header.height,
        "parent_hash": block.header.parent_hash,
        "proposer": block.header.proposer,
        "tx_root": block.header.tx_root,
        "receipt_root": block.header.receipt_root,
        "state_root": block.header.state_root,
        "timestamp": block.header.timestamp,
    }
    if block.header.view is not None:
        header["view"] = block.header.view
    return {
        "block_hash": block.block_hash,
        "header": header,
        "transactions": [
            {**tx.body(), "signature": tx.signature} for tx in block.transactions
        ],
        "receipts": [receipt.to_dict() for receipt in block.receipts],
    }


def block_from_record(record: dict[str, Any]) -> Block:
    """Rebuild a block from its stored record, verifying hash and Merkle roots."""
    try:
        header = BlockHeader(
            height=int(record["header"]["height"]),
            parent_hash=str(record["header"]["parent_hash"]),
            proposer=str(record["header"]["proposer"]),
            tx_root=str(record["header"]["tx_root"]),
            receipt_root=str(record["header"]["receipt_root"]),
            state_root=str(record["header"]["state_root"]),
            timestamp=int(record["header"]["timestamp"]),
            view=record["header"].get("view"),
        )
        transactions = tuple(
            Transaction(
                sender=tx["sender"],
                contract=tx["contract"],
                method=tx["method"],
                args=tx["args"],
                nonce=int(tx["nonce"]),
                signature=tx["signature"],
            )
            for tx in record["transactions"]
        )
        receipts = tuple(
            TransactionReceipt(
                tx_hash=receipt["tx_hash"],
                success=bool(receipt["success"]),
                result=receipt["result"],
                error=receipt["error"],
                events=tuple(receipt["events"]),
                gas_used=int(receipt["gas_used"]),
            )
            for receipt in record["receipts"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed stored block record: {exc}") from exc
    block = Block(header=header, transactions=transactions, receipts=receipts)
    if block.block_hash != record.get("block_hash"):
        raise StorageError(
            f"stored block {header.height} does not hash to its recorded identity "
            f"({block.block_hash[:12]} != {str(record.get('block_hash'))[:12]})"
        )
    block.verify_roots()
    return block


def _encode_delta(delta: dict[str, tuple[bool, Any, str | None]]) -> str:
    """Canonical encoding of one reverse delta (value hashes are recomputed on load)."""
    return canonical_dumps(
        [[full, had, value] for full, (had, value, _) in sorted(delta.items())]
    )


def _decode_delta(encoded: str, merkle: bool) -> dict[str, tuple[bool, Any, str | None]]:
    delta: dict[str, tuple[bool, Any, str | None]] = {}
    for full, had, value in canonical_loads(encoded):
        value_hash = sha256_hex(canonical_dumps(value)) if (had and merkle) else None
        delta[str(full)] = (bool(had), value, value_hash)
    return delta


# ---------------------------------------------------------------------------
# Backend interface and the in-memory default
# ---------------------------------------------------------------------------


class StorageBackend:
    """What a chain needs from its persistence layer.

    ``attach`` is called exactly once, by ``Blockchain.attach_storage``, with
    the chain at genesis; it either restores an existing store into the
    replica (returning ``True``) or initializes the store from the replica
    (returning ``False``).  After that the chain calls ``commit_block`` once
    per sealed block, ``rewrite`` whenever it adopts a whole chain at once
    (fast sync / catch-up), and ``prune`` when reverse deltas are dropped.
    """

    name = "abstract"
    #: Whether data survives ``close()`` — drives open/resume semantics upstream.
    persistent = False

    def attach(self, chain: "Blockchain") -> bool:
        raise NotImplementedError

    def commit_block(
        self,
        block: Block,
        touched: dict[str, tuple[bool, Any]],
        delta: dict[str, tuple[bool, Any, str | None]],
        nonces: dict[str, int],
    ) -> None:
        raise NotImplementedError

    def rewrite(self, chain: "Blockchain") -> None:
        raise NotImplementedError

    def prune(self, heights: list[int]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; the backend must not be used afterwards."""


class InMemoryBackend(StorageBackend):
    """The default backend: the chain itself *is* the store; nothing to do."""

    name = "memory"

    def attach(self, chain: "Blockchain") -> bool:
        return False

    def commit_block(self, block, touched, delta, nonces) -> None:
        pass

    def rewrite(self, chain: "Blockchain") -> None:
        pass

    def prune(self, heights: list[int]) -> None:
        pass


# ---------------------------------------------------------------------------
# SQLite backend
# ---------------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS blocks (height INTEGER PRIMARY KEY, record TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS kv (full_key TEXT PRIMARY KEY, encoded TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS deltas (height INTEGER PRIMARY KEY, record TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS nonces (sender TEXT PRIMARY KEY, nonce INTEGER NOT NULL);
"""


class SQLiteBackend(StorageBackend):
    """Append-only block log + SQLite key-value store (see module docstring).

    Args:
        path: database file path (created if missing); the block log lives
            next to it at ``<path>.blocklog``.
        crash_hook: optional fault-injection callable fired with the boundary
            name immediately before each write step of ``commit_block``.
            Raising from it aborts (and rolls back) the commit — used by the
            crash-safety property tests, never in production paths.
    """

    name = "sqlite"
    persistent = True

    def __init__(self, path: str, crash_hook: Callable[[str], None] | None = None) -> None:
        self.path = str(path)
        self.log_path = self.path + ".blocklog"
        self.crash_hook = crash_hook
        self._closed = False
        try:
            # check_same_thread=False: a swarm peer commits from whichever
            # handler thread runs the round; callers serialize access (the
            # chain mutates under the peer's node lock, never concurrently).
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open sqlite store at {self.path}: {exc}") from exc
        # Explicit transaction control: commit_block brackets its own
        # BEGIN IMMEDIATE ... COMMIT so atomicity is ours, not the driver's.
        self._conn.isolation_level = None
        self._conn.executescript(_SCHEMA)
        stored_schema = self._get_meta("schema_version")
        if stored_schema is None:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(stored_schema) != SCHEMA_VERSION:
            raise StorageError(
                f"sqlite store at {self.path} has schema version {stored_schema}, "
                f"this build expects {SCHEMA_VERSION}"
            )

    # -- small helpers ---------------------------------------------------

    def _guard(self) -> None:
        if self._closed:
            raise StorageError("storage backend is closed")

    def _fire(self, boundary: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(boundary)

    def _get_meta(self, key: str) -> str | None:
        row = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else str(row[0])

    def committed_height(self) -> int | None:
        """The height of the last durably committed block (None for a fresh store)."""
        self._guard()
        value = self._get_meta("committed_height")
        return None if value is None else int(value)

    def oldest_retained_delta(self) -> int | None:
        """The lowest height with a retained reverse delta (None when empty)."""
        self._guard()
        row = self._conn.execute("SELECT MIN(height) FROM deltas").fetchone()
        return None if row is None or row[0] is None else int(row[0])

    # -- StorageBackend interface ----------------------------------------

    def attach(self, chain: "Blockchain") -> bool:
        self._guard()
        height = self.committed_height()
        if height is None:
            self.rewrite(chain)
            return False
        stored_version = self._get_meta("state_root_version")
        if stored_version is not None and int(stored_version) != chain.state_root_version:
            raise StorageError(
                f"store at {self.path} was written with state_root_version "
                f"{stored_version}, the chain is configured for {chain.state_root_version}"
            )
        if chain.height != 0 or chain.blocks[0].transactions:
            raise StorageError("restoring a store requires a fresh replica at genesis")
        self._restore(chain, height)
        return True

    def commit_block(self, block, touched, delta, nonces) -> None:
        self._guard()
        record = canonical_dumps(block_to_record(block))
        try:
            # Write-ahead: the block line lands in the append-only log before
            # the transaction.  If we die right after, the sqlite watermark
            # still says the previous height — the torn log tail is ignored.
            self._fire("block-log")
            with open(self.log_path, "a", encoding="utf-8") as log:
                log.write(record + "\n")
                log.flush()
                os.fsync(log.fileno())
            self._fire("begin")
            self._conn.execute("BEGIN IMMEDIATE")
            self._fire("blocks")
            self._conn.execute(
                "INSERT OR REPLACE INTO blocks (height, record) VALUES (?, ?)",
                (block.height, record),
            )
            self._fire("kv")
            for full, (present, value) in sorted(touched.items()):
                if present:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO kv (full_key, encoded) VALUES (?, ?)",
                        (full, canonical_dumps(value)),
                    )
                else:
                    self._conn.execute("DELETE FROM kv WHERE full_key = ?", (full,))
            self._fire("deltas")
            self._conn.execute(
                "INSERT OR REPLACE INTO deltas (height, record) VALUES (?, ?)",
                (block.height, _encode_delta(delta)),
            )
            self._fire("nonces")
            self._conn.execute("DELETE FROM nonces")
            self._conn.executemany(
                "INSERT INTO nonces (sender, nonce) VALUES (?, ?)",
                sorted(nonces.items()),
            )
            self._fire("meta")
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('committed_height', ?)",
                (str(block.height),),
            )
            self._fire("commit")
            self._conn.execute("COMMIT")
        except Exception:
            self._rollback()
            raise

    def rewrite(self, chain: "Blockchain") -> None:
        """Replace the whole store with the chain's current contents (one transaction)."""
        self._guard()
        records = [canonical_dumps(block_to_record(block)) for block in chain.blocks]
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            for table in ("blocks", "kv", "deltas", "nonces"):
                self._conn.execute(f"DELETE FROM {table}")
            self._conn.executemany(
                "INSERT INTO blocks (height, record) VALUES (?, ?)",
                [(block.height, record) for block, record in zip(chain.blocks, records)],
            )
            self._conn.executemany(
                "INSERT INTO kv (full_key, encoded) VALUES (?, ?)",
                [(full, canonical_dumps(value)) for full, value in sorted(chain.state._data.items())],
            )
            self._conn.executemany(
                "INSERT INTO deltas (height, record) VALUES (?, ?)",
                [(height, _encode_delta(delta)) for height, delta in sorted(chain.state._versions.items())],
            )
            self._conn.executemany(
                "INSERT INTO nonces (sender, nonce) VALUES (?, ?)",
                sorted(chain._nonces.items()),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('committed_height', ?)",
                (str(chain.height),),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('state_root_version', ?)",
                (str(chain.state_root_version),),
            )
            self._conn.execute("COMMIT")
        except Exception:
            self._rollback()
            raise
        with open(self.log_path, "w", encoding="utf-8") as log:
            for record in records:
                log.write(record + "\n")

    def prune(self, heights: list[int]) -> None:
        self._guard()
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            self._conn.executemany(
                "DELETE FROM deltas WHERE height = ?", [(int(h),) for h in heights]
            )
            self._conn.execute("COMMIT")
        except Exception:
            self._rollback()
            raise

    def prune_to(self, keep_last: int) -> list[int]:
        """Standalone pruning (CLI ``prune``): drop delta rows below the horizon.

        Works directly on the store without rebuilding a chain; returns the
        pruned heights.
        """
        self._guard()
        head = self.committed_height()
        if head is None:
            raise StorageError(f"store at {self.path} holds no committed chain to prune")
        if int(keep_last) < 1:
            raise StorageError("prune horizon must keep at least the latest version")
        horizon = head - int(keep_last) + 1
        rows = self._conn.execute(
            "SELECT height FROM deltas WHERE height < ? ORDER BY height", (horizon,)
        ).fetchall()
        pruned = [int(row[0]) for row in rows]
        self.prune(pruned)
        return pruned

    def stored_state_root_version(self) -> int | None:
        """The state-commitment version this store was written with.

        ``None`` on a fresh store; otherwise the version every replica of the
        persisted chain must be configured with (``attach`` enforces it).
        Lets standalone tooling (CLI ``audit``) rebuild a compatible replica
        without asking the operator to repeat the original flag.
        """
        self._guard()
        version = self._get_meta("state_root_version")
        return None if version is None else int(version)

    def close(self) -> None:
        if not self._closed:
            self._rollback()
            self._conn.close()
            self._closed = True

    # -- restore ---------------------------------------------------------

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass  # no transaction in flight

    def _restore(self, chain: "Blockchain", height: int) -> None:
        """Rebuild blocks, state (with Merkle indexes), deltas, and nonces into ``chain``."""
        rows = self._conn.execute("SELECT height, record FROM blocks ORDER BY height").fetchall()
        if not rows or [int(r[0]) for r in rows] != list(range(height + 1)):
            raise StorageError(
                f"store at {self.path} is missing block records "
                f"(committed height {height}, {len(rows)} record(s) present)"
            )
        blocks = [block_from_record(canonical_loads(record)) for _, record in rows]
        if blocks[0].block_hash != chain.blocks[0].block_hash:
            raise StorageError(
                "stored genesis does not match this replica's genesis — the store "
                "was written under a different protocol configuration or runtime"
            )
        merkle = chain.state_root_version >= 2
        state = WorldState(root_version=chain.state_root_version)
        for full, encoded in self._conn.execute("SELECT full_key, encoded FROM kv"):
            namespace, _, key = str(full).partition("/")
            state.set(namespace, key, canonical_loads(encoded), encoded=encoded)
        state._journal.clear()
        state._versions = {
            int(h): _decode_delta(record, merkle)
            for h, record in self._conn.execute("SELECT height, record FROM deltas")
        }
        state._latest_version = height
        if state.state_root() != blocks[-1].header.state_root:
            raise StorageError(
                "reopened state does not hash to the committed head's state root — "
                "the store is corrupt or was written by an incompatible build"
            )
        nonces = {
            str(sender): int(nonce)
            for sender, nonce in self._conn.execute("SELECT sender, nonce FROM nonces")
        }
        chain.blocks = blocks
        chain.state = state
        chain._nonces = nonces
        chain.validate_chain()
        chain.verify_version_roots()


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def open_backend(spec: str | StorageBackend) -> StorageBackend:
    """Resolve a ``--store`` spec: ``"memory"`` or ``"sqlite:PATH"``.

    An already-constructed backend passes through unchanged, so programmatic
    callers can inject e.g. a crash-hooked :class:`SQLiteBackend`.
    """
    if isinstance(spec, StorageBackend):
        return spec
    text = str(spec)
    if text == "memory":
        return InMemoryBackend()
    if text.startswith("sqlite:"):
        path = text[len("sqlite:"):]
        if not path:
            raise StorageError("sqlite store spec needs a path: sqlite:PATH")
        return SQLiteBackend(path)
    raise StorageError(f"unknown store spec {text!r} (expected 'memory' or 'sqlite:PATH')")
