"""Versioned, Merkle-ized world state: the store contracts read and write.

State keys are namespaced per contract (``"<contract>/<key>"``).  Three layers
sit on top of the flat key-value map:

* **Write journal** — every mutation appends an O(1) undo record, so
  transaction rollback (:meth:`WorldState.snapshot` / :meth:`restore`) and
  block-proposal staging cost O(keys changed) instead of a deep copy of the
  whole world.
* **Block versions** — :meth:`seal_version` compresses the journal of one
  block into a reverse delta.  Retained deltas give O(Δ)-overlay *historical
  views*: :meth:`view_at` (surfaced as ``Blockchain.state_at``) reads the
  state as of any committed height without re-executing from genesis.
* **Merkle state root** — with ``root_version=2`` the state root is a Merkle
  commitment maintained incrementally: per-namespace bucket trees roll into a
  namespace root, namespace roots roll into the state root, and only buckets
  touched since the last :meth:`state_root` call are re-hashed.  The same
  structure yields :meth:`prove` / :func:`verify_state_proof` — compact
  inclusion proofs that tie a single entry (a contribution record, a
  settlement payout) to a block header's ``state_root``.  ``root_version=1``
  keeps the historical flat hash byte for byte.

Values are deep-copied on the way in and on the way out, so objects held in
``_data`` are never mutated in place — the invariant that lets copies, journal
records, and version deltas share references instead of deep-copying.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Iterator

from repro.blockchain.merkle import EMPTY_ROOT, MerkleTree, fold_proof_path
from repro.exceptions import ValidationError
from repro.utils.hashing import hash_concat, hash_payload, sha256_hex
from repro.utils.serialization import canonical_dumps

STATE_ROOT_V1 = 1
STATE_ROOT_V2 = 2
STATE_ROOT_V3 = 3

# Buckets per namespace subtree (power of two).  Each key maps to one bucket
# by key-hash prefix; a dirty key only re-hashes its bucket plus one
# O(log N_STATE_BUCKETS) path in the namespace tree, which is what makes the
# incremental root O(keys changed) rather than O(all keys).
N_STATE_BUCKETS = 1024
_BUCKET_DEPTH = N_STATE_BUCKETS.bit_length() - 1

# Version-3 adaptive bucketing: a namespace's bucket count grows (in powers of
# two, never below the fixed v2 layout) to keep expected occupancy at or below
# this many keys per bucket, so incremental re-hash cost per touched key stays
# flat at six-figure key counts instead of degrading with bucket size.
TARGET_KEYS_PER_BUCKET = 4

# Hash cascade of an all-empty namespace tree, one entry per level: level 0 is
# the empty-bucket root, level d+1 hashes two level-d defaults together.
# Extended lazily by `_default_level` when adaptive trees grow deeper.
_DEFAULT_LEVEL: list[str] = [EMPTY_ROOT]
for _ in range(_BUCKET_DEPTH):
    _DEFAULT_LEVEL.append(hash_concat([_DEFAULT_LEVEL[-1], _DEFAULT_LEVEL[-1]]))


def _default_level(depth: int) -> str:
    """The root of an all-empty subtree of the given depth (memoized)."""
    while len(_DEFAULT_LEVEL) <= depth:
        _DEFAULT_LEVEL.append(hash_concat([_DEFAULT_LEVEL[-1], _DEFAULT_LEVEL[-1]]))
    return _DEFAULT_LEVEL[depth]


def _bucket_count_for(size: int) -> int:
    """The v3 bucket count for a namespace of ``size`` keys.

    A pure function of the key count (no hysteresis), so the committed root is
    a function of state *content* alone — any replica arriving at the same
    keys by any op sequence lands on the same layout, and rebuilds amortize to
    O(1) per write because thresholds double.
    """
    if size <= N_STATE_BUCKETS * TARGET_KEYS_PER_BUCKET:
        return N_STATE_BUCKETS
    need = (size + TARGET_KEYS_PER_BUCKET - 1) // TARGET_KEYS_PER_BUCKET
    return 1 << (need - 1).bit_length()


_MISSING = object()


@dataclass(frozen=True)
class StateSnapshot:
    """An O(1) rollback marker into the write journal (see :meth:`WorldState.snapshot`)."""

    position: int
    generation: int


@dataclass(frozen=True)
class StateProof:
    """Merkle inclusion proof tying one state entry to a v2 state root.

    The proof folds bottom-up through three trees: the entry's bucket tree
    (``bucket_siblings``), the namespace's fixed bucket tree
    (``namespace_siblings``), and the top-level tree over namespace roots
    (``top_siblings``).  ``value_hash`` is the SHA-256 of the value's
    canonical serialization, so a verifier holding the claimed value can
    recompute it independently (see :func:`verify_state_proof`).

    ``n_buckets`` records the namespace's bucket-tree width: always 1024 on
    v2 roots, a power of two >= 1024 under v3 adaptive bucketing.  It is
    serialized only when it differs from the fixed v2 layout, so v2 proof
    files keep their historical byte shape.
    """

    namespace: str
    key: str
    value_hash: str
    bucket_index: int
    leaf_index: int
    bucket_siblings: tuple[str, ...]
    namespace_siblings: tuple[str, ...]
    top_index: int
    top_siblings: tuple[str, ...]
    root: str
    n_buckets: int = N_STATE_BUCKETS

    def to_dict(self) -> dict[str, Any]:
        """A canonical-serializable form (for files, transactions, or CLIs)."""
        payload = {
            "namespace": self.namespace,
            "key": self.key,
            "value_hash": self.value_hash,
            "bucket_index": self.bucket_index,
            "leaf_index": self.leaf_index,
            "bucket_siblings": list(self.bucket_siblings),
            "namespace_siblings": list(self.namespace_siblings),
            "top_index": self.top_index,
            "top_siblings": list(self.top_siblings),
            "root": self.root,
        }
        if self.n_buckets != N_STATE_BUCKETS:
            payload["n_buckets"] = self.n_buckets
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StateProof":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                namespace=str(payload["namespace"]),
                key=str(payload["key"]),
                value_hash=str(payload["value_hash"]),
                bucket_index=int(payload["bucket_index"]),
                leaf_index=int(payload["leaf_index"]),
                bucket_siblings=tuple(str(s) for s in payload["bucket_siblings"]),
                namespace_siblings=tuple(str(s) for s in payload["namespace_siblings"]),
                top_index=int(payload["top_index"]),
                top_siblings=tuple(str(s) for s in payload["top_siblings"]),
                root=str(payload["root"]),
                n_buckets=int(payload.get("n_buckets", N_STATE_BUCKETS)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed state proof payload: {exc}") from exc


def _leaf_for(full_key: str, value_hash: str) -> str:
    """The Merkle leaf of one entry: H(H(key) || H(canonical(value)))."""
    return hash_concat([sha256_hex(full_key), value_hash])


def _namespace_leaf(namespace: str, namespace_root: str) -> str:
    """The top-level leaf of a namespace: H(H(name) || subtree root)."""
    return hash_concat([sha256_hex(namespace), namespace_root])


def verify_state_proof(root: str, proof: StateProof, value: Any = _MISSING) -> bool:
    """Check a :class:`StateProof` against a block header's ``state_root``.

    When ``value`` is given, the leaf is recomputed from the value's canonical
    serialization — a verifier holding its published contribution/settlement
    entry and a trusted header needs nothing else.  Without ``value``, the
    proof's own ``value_hash`` is used (proving the key is committed, with the
    value pinned by whoever compares ``value_hash`` out of band).
    """
    try:
        full_key = WorldState._full_key(proof.namespace, proof.key)
    except ValidationError:
        return False
    n_buckets = proof.n_buckets
    # The claimed layout must be a valid one (power of two, at least the fixed
    # v2 width); a forged layout cannot fold to a committed root anyway, this
    # just fails fast with a clear structural reason.
    if n_buckets < N_STATE_BUCKETS or n_buckets & (n_buckets - 1):
        return False
    if proof.bucket_index != _bucket_of(sha256_hex(full_key), n_buckets):
        return False
    if value is _MISSING:
        value_hash = proof.value_hash
    else:
        try:
            value_hash = sha256_hex(canonical_dumps(value))
        except ValidationError:
            return False
        if value_hash != proof.value_hash:
            return False
    current = fold_proof_path(_leaf_for(full_key, value_hash), proof.leaf_index, proof.bucket_siblings)
    if len(proof.namespace_siblings) != n_buckets.bit_length() - 1:
        return False
    current = fold_proof_path(current, proof.bucket_index, proof.namespace_siblings)
    current = fold_proof_path(_namespace_leaf(proof.namespace, current), proof.top_index, proof.top_siblings)
    return current == root


def _bucket_of(key_hash: str, n_buckets: int = N_STATE_BUCKETS) -> int:
    """Deterministic bucket assignment from a key's hex hash prefix.

    The 8-hex-digit prefix is uniform over ``2**32``, so the modulus is
    unbiased for any power-of-two bucket count up to ``2**32`` — and the v3
    adaptive layout at 1024 buckets assigns exactly like the fixed v2 layout.
    """
    return int(key_hash[:8], 16) % n_buckets


class _NamespaceTree:
    """A fixed-shape (power-of-two) Merkle tree over a namespace's bucket roots.

    The shape only changes through an explicit rebuild (v3 adaptive growth),
    so one bucket-root update re-hashes only its O(log n_buckets) path — the
    namespace root stays warm across blocks that touch a handful of keys.
    """

    __slots__ = ("n_buckets", "depth", "levels")

    def __init__(self, n_buckets: int = N_STATE_BUCKETS, levels: list[list[str]] | None = None) -> None:
        self.n_buckets = n_buckets
        self.depth = n_buckets.bit_length() - 1
        if levels is not None:
            self.levels = levels
        else:
            self.levels = [
                [_default_level(depth)] * (n_buckets >> depth)
                for depth in range(self.depth + 1)
            ]

    @property
    def root(self) -> str:
        return self.levels[-1][0]

    def update(self, index: int, bucket_root: str) -> None:
        """Set one bucket root and re-hash its path to the namespace root."""
        self.levels[0][index] = bucket_root
        position = index
        for depth in range(self.depth):
            parent = position // 2
            level = self.levels[depth]
            self.levels[depth + 1][parent] = hash_concat([level[parent * 2], level[parent * 2 + 1]])
            position = parent

    def path(self, index: int) -> list[str]:
        """Sibling hashes from the bucket at ``index`` up to the namespace root."""
        siblings = []
        position = index
        for depth in range(self.depth):
            siblings.append(self.levels[depth][position ^ 1])
            position //= 2
        return siblings

    def copy(self) -> "_NamespaceTree":
        return _NamespaceTree(self.n_buckets, [list(level) for level in self.levels])


class StateView:
    """A read-only view of the world state as of one sealed block height.

    Reads go to the live store through an O(Δ) overlay of the reverse deltas
    of every later block — no genesis re-execution, no state copy.  The view
    borrows the live store's data: it is valid until the next mutation of the
    underlying state (read it and let it go; take a fresh view per use).
    """

    def __init__(self, base: "WorldState", height: int, overlay: dict[str, tuple[bool, Any]]) -> None:
        self._base = base
        self._height = int(height)
        self._overlay = overlay

    @property
    def height(self) -> int:
        """The block height this view reads as of."""
        return self._height

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Read a value as of the view's height (deep-copied, like the live store)."""
        full = WorldState._full_key(namespace, key)
        if full in self._overlay:
            had, value = self._overlay[full]
            return copy.deepcopy(value) if had else copy.deepcopy(default)
        return self._base.get(namespace, key, default)

    def contains(self, namespace: str, key: str) -> bool:
        """Whether the key existed at the view's height."""
        full = WorldState._full_key(namespace, key)
        if full in self._overlay:
            return self._overlay[full][0]
        return self._base.contains(namespace, key)

    def keys(self, namespace: str) -> list[str]:
        """All keys within a namespace at the view's height, sorted."""
        prefix = WorldState._namespace_prefix(namespace)
        present = {
            full for full in self._base._data if full.startswith(prefix) and full not in self._overlay
        }
        for full, (had, _) in self._overlay.items():
            if had and full.startswith(prefix):
                present.add(full)
        return sorted(full[len(prefix):] for full in present)

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs of a namespace in sorted key order."""
        for key in self.keys(namespace):
            yield key, self.get(namespace, key)

    def raw(self) -> dict[str, Any]:
        """A deep copy of the full state dict as of the view's height."""
        data = {
            full: value for full, value in self._base._data.items() if full not in self._overlay
        }
        for full, (had, value) in self._overlay.items():
            if had:
                data[full] = value
        return copy.deepcopy(data)

    def state_root(self) -> str:
        """Recompute the state root of the viewed height from scratch.

        This is the O(view) transparency fallback; block headers already carry
        the committed root, and ``Blockchain.verify_version_roots`` checks all
        of them with incremental updates instead.
        """
        return WorldState(self.raw(), root_version=self._base.root_version).state_root()

    def __len__(self) -> int:
        count = sum(1 for full in self._base._data if full not in self._overlay)
        return count + sum(1 for had, _ in self._overlay.values() if had)


class WorldState:
    """A namespaced key-value store with journaled rollback, block versions,
    and (``root_version=2``) an incrementally maintained Merkle state root."""

    def __init__(self, initial: dict[str, Any] | None = None, root_version: int = STATE_ROOT_V1) -> None:
        if root_version not in (STATE_ROOT_V1, STATE_ROOT_V2, STATE_ROOT_V3):
            raise ValidationError(f"unknown state root version {root_version!r}")
        self._root_version = int(root_version)
        self._data: dict[str, Any] = {}
        # Write journal: (full_key, had_previous, previous_value, previous_value_hash).
        self._journal: list[tuple[str, bool, Any, str | None]] = []
        self._generation = 0
        # Sealed block versions: height -> reverse delta
        # {full_key: (had, previous_value, previous_value_hash)}.
        self._versions: dict[int, dict[str, tuple[bool, Any, str | None]]] = {}
        self._latest_version: int | None = None
        # Merkle caches (root_version >= 2 only).
        self._value_hashes: dict[str, str] = {}
        self._key_hashes: dict[str, str] = {}  # pure memo, safely shared across copies
        self._ns_trees: dict[str, _NamespaceTree] = {}
        self._ns_buckets: dict[str, dict[int, set[str]]] = {}
        self._ns_sizes: dict[str, int] = {}
        self._ns_nbuckets: dict[str, int] = {}
        self._dirty: dict[str, set[int]] = {}
        self._top_tree: MerkleTree | None = None
        self._top_namespaces: list[str] = []
        if initial:
            for full, value in initial.items():
                namespace, _, key = full.partition("/")
                self.set(namespace, key, value)
            self._journal.clear()

    # ------------------------------------------------------------------
    # Key validation
    # ------------------------------------------------------------------

    @staticmethod
    def _namespace_prefix(namespace: str) -> str:
        if not namespace:
            raise ValidationError("state namespace must be non-empty")
        if "/" in namespace:
            raise ValidationError("state namespace must not contain '/'")
        return f"{namespace}/"

    @staticmethod
    def _full_key(namespace: str, key: str) -> str:
        prefix = WorldState._namespace_prefix(namespace)
        if not key:
            raise ValidationError("state key must be non-empty")
        return f"{prefix}{key}"

    @property
    def root_version(self) -> int:
        """Which state-root commitment this store maintains (1 flat, 2 Merkle,
        3 Merkle with adaptive bucketing)."""
        return self._root_version

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Read a value; returns a deep copy so callers cannot mutate state in place."""
        value = self._data.get(self._full_key(namespace, key), default)
        return copy.deepcopy(value)

    def contains(self, namespace: str, key: str) -> bool:
        """Whether the key exists."""
        return self._full_key(namespace, key) in self._data

    def keys(self, namespace: str) -> list[str]:
        """All keys within a namespace (without the namespace prefix), sorted.

        The namespace is validated exactly like in :meth:`get`/:meth:`set`: a
        namespace containing ``/`` would otherwise silently read *another*
        namespace's keys (``keys("a/b")`` would match ``a``'s ``b/...`` keys).
        """
        prefix = self._namespace_prefix(namespace)
        return sorted(k[len(prefix):] for k in self._data if k.startswith(prefix))

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs of a namespace in sorted key order."""
        for key in self.keys(namespace):
            yield key, self.get(namespace, key)

    def raw(self) -> dict[str, Any]:
        """A deep copy of the underlying dict (for audits and debugging)."""
        return copy.deepcopy(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Writes (journaled)
    # ------------------------------------------------------------------

    def set(self, namespace: str, key: str, value: Any, *, encoded: str | None = None) -> None:
        """Write a value (deep-copied on the way in).

        ``encoded`` optionally carries the value's canonical serialization when
        the caller already produced it (the contract runtime serializes every
        write for gas metering) so the Merkle leaf hash does not re-serialize.
        """
        full = self._full_key(namespace, key)
        stored = copy.deepcopy(value)
        value_hash = None
        if self._root_version >= STATE_ROOT_V2:
            value_hash = sha256_hex(encoded if encoded is not None else canonical_dumps(stored))
        self._journal.append((full, full in self._data, self._data.get(full), self._value_hashes.get(full)))
        self._write(full, stored, value_hash)

    def delete(self, namespace: str, key: str) -> None:
        """Remove a key if present."""
        full = self._full_key(namespace, key)
        if full not in self._data:
            return
        self._journal.append((full, True, self._data[full], self._value_hashes.get(full)))
        self._erase(full)

    def _write(self, full: str, value: Any, value_hash: str | None) -> None:
        """Raw write: no journaling, keeps the Merkle indexes in sync."""
        new_key = full not in self._data
        self._data[full] = value
        if self._root_version < STATE_ROOT_V2:
            return
        self._value_hashes[full] = value_hash if value_hash is not None else sha256_hex(canonical_dumps(value))
        self._touch(full, added=new_key)

    def _erase(self, full: str) -> None:
        """Raw delete: no journaling, keeps the Merkle indexes in sync."""
        if full not in self._data:
            return
        del self._data[full]
        if self._root_version < STATE_ROOT_V2:
            return
        self._value_hashes.pop(full, None)
        namespace = full.partition("/")[0]
        bucket = _bucket_of(self._key_hash(full), self._ns_nbuckets[namespace])
        buckets = self._ns_buckets[namespace]
        buckets.get(bucket, set()).discard(full)
        self._ns_sizes[namespace] -= 1
        self._top_tree = None
        if self._ns_sizes[namespace] == 0:
            # Drop the empty namespace entirely so the root matches a fresh
            # store holding the same data.
            del self._ns_trees[namespace]
            del self._ns_buckets[namespace]
            del self._ns_sizes[namespace]
            del self._ns_nbuckets[namespace]
            self._dirty.pop(namespace, None)
        else:
            self._dirty.setdefault(namespace, set()).add(bucket)
            self._maybe_resize(namespace)

    def _key_hash(self, full: str) -> str:
        cached = self._key_hashes.get(full)
        if cached is None:
            cached = sha256_hex(full)
            self._key_hashes[full] = cached
        return cached

    def _touch(self, full: str, added: bool) -> None:
        """Mark a written key's bucket dirty (creating namespace structures lazily)."""
        namespace = full.partition("/")[0]
        if namespace not in self._ns_trees:
            self._ns_trees[namespace] = _NamespaceTree()
            self._ns_buckets[namespace] = {}
            self._ns_sizes[namespace] = 0
            self._ns_nbuckets[namespace] = N_STATE_BUCKETS
        bucket = _bucket_of(self._key_hash(full), self._ns_nbuckets[namespace])
        if added:
            self._ns_buckets[namespace].setdefault(bucket, set()).add(full)
            self._ns_sizes[namespace] += 1
        self._dirty.setdefault(namespace, set()).add(bucket)
        self._top_tree = None
        if added:
            self._maybe_resize(namespace)

    def _maybe_resize(self, namespace: str) -> None:
        """Re-bucket a namespace when its v3 adaptive layout crosses a threshold.

        No-op on v2 stores: their layout is pinned at ``N_STATE_BUCKETS`` so
        historical roots stay byte-identical.  Under v3 the target count is a
        pure function of the namespace's size, so every replica re-buckets at
        the same write regardless of how it arrived at that state (live
        execution, restore from disk, rollback, or unwind — all mutations
        funnel through :meth:`_write`/:meth:`_erase`).
        """
        if self._root_version < STATE_ROOT_V3:
            return
        wanted = _bucket_count_for(self._ns_sizes[namespace])
        if wanted == self._ns_nbuckets[namespace]:
            return
        keys = [full for bucket in self._ns_buckets[namespace].values() for full in bucket]
        buckets: dict[int, set[str]] = {}
        for full in keys:
            buckets.setdefault(_bucket_of(self._key_hash(full), wanted), set()).add(full)
        self._ns_buckets[namespace] = buckets
        self._ns_nbuckets[namespace] = wanted
        self._ns_trees[namespace] = _NamespaceTree(wanted)
        self._dirty[namespace] = set(buckets)
        self._top_tree = None

    # ------------------------------------------------------------------
    # Snapshots and rollback (O(keys changed))
    # ------------------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """An O(1) rollback marker; undone changes are replayed from the journal."""
        return StateSnapshot(position=len(self._journal), generation=self._generation)

    def restore(self, snapshot: StateSnapshot) -> None:
        """Roll back every change made since ``snapshot`` was taken.

        Markers are positional: restoring is only valid within the same block
        execution (sealing a version clears the journal and invalidates older
        markers), and restoring to a marker discards any markers taken after it.
        """
        if not isinstance(snapshot, StateSnapshot):
            raise ValidationError("restore() takes a StateSnapshot from snapshot()")
        if snapshot.generation != self._generation or snapshot.position > len(self._journal):
            raise ValidationError("stale state snapshot: the journal it points into was sealed")
        while len(self._journal) > snapshot.position:
            full, had, value, value_hash = self._journal.pop()
            if had:
                self._write(full, value, value_hash)
            else:
                self._erase(full)

    # ------------------------------------------------------------------
    # Block versions and historical views
    # ------------------------------------------------------------------

    def seal_version(self, height: int) -> None:
        """Bake the journal since the last seal into block ``height``'s reverse delta.

        Called once per committed block.  The delta maps every key the block
        touched to its value *before* the block, which is exactly what an
        overlay needs to read the state as of any earlier height.
        """
        height = int(height)
        if self._latest_version is not None and height != self._latest_version + 1:
            raise ValidationError(
                f"cannot seal version {height}: latest sealed version is {self._latest_version}"
            )
        delta: dict[str, tuple[bool, Any, str | None]] = {}
        for full, had, value, value_hash in self._journal:
            if full not in delta:  # first record per key = value before the block
                delta[full] = (had, value, value_hash)
        self._versions[height] = delta
        self._journal.clear()
        self._generation += 1
        self._latest_version = height

    @property
    def latest_version(self) -> int | None:
        """The height of the most recently sealed block version (None before genesis)."""
        return self._latest_version

    def has_version(self, height: int) -> bool:
        """Whether block ``height``'s reverse delta is retained."""
        return int(height) in self._versions

    def view_at(self, height: int) -> StateView:
        """A read-only :class:`StateView` of the state as of sealed block ``height``."""
        height = int(height)
        if self._latest_version is None or not 0 <= height <= self._latest_version:
            raise ValidationError(
                f"no sealed state version at height {height} "
                f"(latest is {self._latest_version})"
            )
        overlay: dict[str, tuple[bool, Any]] = {}
        # Walk the reverse deltas oldest-first: the first delta above the
        # target height that touched a key recorded the key's value *at* the
        # target height (nothing in between touched it).
        for sealed in range(height + 1, self._latest_version + 1):
            delta = self._versions.get(sealed)
            if delta is None:
                raise ValidationError(
                    f"state version {sealed} was not retained; historical views "
                    f"below it need a full replay"
                )
            for full, (had, value, _) in delta.items():
                if full not in overlay:
                    overlay[full] = (had, value)
        # Changes journaled after the last seal (an in-flight block) are newer
        # than every sealed delta: they only shadow keys no sealed delta touched.
        for full, had, value, _ in self._journal:
            if full not in overlay:
                overlay[full] = (had, value)
        return StateView(self, height, overlay)

    def unwind_latest_version(self) -> int:
        """Apply the latest sealed reverse delta, stepping the store back one block.

        Used by ``Blockchain.verify_version_roots`` on a scratch copy to check
        every retained version's root against its committed header with O(Δ)
        incremental updates per block.  Returns the new latest height.
        """
        if self._journal:
            raise ValidationError("cannot unwind with unsealed journal entries in flight")
        if self._latest_version is None or self._latest_version not in self._versions:
            raise ValidationError("no sealed version to unwind")
        delta = self._versions.pop(self._latest_version)
        for full, (had, value, value_hash) in delta.items():
            if had:
                self._write(full, value, value_hash)
            else:
                self._erase(full)
        self._latest_version -= 1
        return self._latest_version

    def oldest_retained_version(self) -> int | None:
        """The lowest height whose reverse delta is still retained (None when empty)."""
        if not self._versions:
            return None
        return min(self._versions)

    def prune_versions(self, keep_last: int) -> list[int]:
        """Drop reverse deltas below a horizon of the last ``keep_last`` sealed blocks.

        The live state and all retained deltas are untouched; only
        :meth:`view_at` *below* the horizon loses its O(Δ) overlay path (and
        raises, which ``Blockchain.state_at`` / the incremental audit catch
        and answer by snapshot+replay instead).  Returns the pruned heights.
        """
        keep_last = int(keep_last)
        if keep_last < 1:
            raise ValidationError("prune horizon must keep at least the latest version")
        if self._latest_version is None:
            return []
        horizon = self._latest_version - keep_last + 1
        pruned = sorted(height for height in self._versions if height < horizon)
        for height in pruned:
            del self._versions[height]
        return pruned

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self) -> "WorldState":
        """An independent copy of the whole state (structure-shared, O(keys)).

        Stored values are never mutated in place (writes and reads both deep
        copy), so the copy shares value references and sealed delta dicts with
        the original — only the index structures are duplicated.
        """
        clone = WorldState.__new__(WorldState)
        clone._root_version = self._root_version
        clone._data = dict(self._data)
        clone._journal = list(self._journal)
        clone._generation = self._generation
        clone._versions = dict(self._versions)
        clone._latest_version = self._latest_version
        clone._value_hashes = dict(self._value_hashes)
        clone._key_hashes = self._key_hashes
        clone._ns_trees = {ns: tree.copy() for ns, tree in self._ns_trees.items()}
        clone._ns_buckets = {
            ns: {bucket: set(keys) for bucket, keys in buckets.items()}
            for ns, buckets in self._ns_buckets.items()
        }
        clone._ns_sizes = dict(self._ns_sizes)
        clone._ns_nbuckets = dict(self._ns_nbuckets)
        clone._dirty = {ns: set(buckets) for ns, buckets in self._dirty.items()}
        clone._top_tree = self._top_tree
        clone._top_namespaces = list(self._top_namespaces)
        return clone

    # ------------------------------------------------------------------
    # State root and proofs
    # ------------------------------------------------------------------

    def state_root(self) -> str:
        """Deterministic hash of the entire state (the block's state root).

        Version 1 is the historical flat hash of the sorted dict — O(all
        keys), byte-identical to pre-Merkle chains.  Versions 2 and 3 are the
        Merkle commitment, re-hashing only buckets dirtied since the last
        call; version 3 additionally widens each namespace's bucket layout as
        it grows (identical to version 2 until a namespace exceeds
        ``N_STATE_BUCKETS * TARGET_KEYS_PER_BUCKET`` keys).
        """
        if self._root_version == STATE_ROOT_V1:
            return hash_payload({key: self._data[key] for key in sorted(self._data)})
        self._flush_dirty()
        if self._top_tree is None:
            self._top_namespaces = sorted(self._ns_sizes)
            self._top_tree = MerkleTree(
                [_namespace_leaf(ns, self._ns_trees[ns].root) for ns in self._top_namespaces]
            )
        return self._top_tree.root

    def _flush_dirty(self) -> None:
        """Re-hash every dirty bucket and update its namespace-tree path."""
        for namespace, buckets in self._dirty.items():
            tree = self._ns_trees[namespace]
            ns_buckets = self._ns_buckets[namespace]
            for bucket in buckets:
                keys = ns_buckets.get(bucket)
                if keys:
                    leaves = [
                        _leaf_for(full, self._value_hashes[full]) for full in sorted(keys)
                    ]
                    tree.update(bucket, MerkleTree.root_of(leaves))
                else:
                    ns_buckets.pop(bucket, None)
                    tree.update(bucket, EMPTY_ROOT)
        self._dirty = {}

    def prove(self, namespace: str, key: str) -> StateProof:
        """Produce a Merkle inclusion proof for one entry against the current root.

        Only meaningful with ``root_version>=2`` — version 1's flat hash has
        no sub-structure to prove against.
        """
        if self._root_version < STATE_ROOT_V2:
            raise ValidationError(
                "state proofs need state_root_version >= 2 (the Merkle-ized root); "
                "version-1 chains commit a flat hash with no inclusion structure"
            )
        full = self._full_key(namespace, key)
        if full not in self._data:
            raise ValidationError(f"cannot prove a missing key {full!r}")
        root = self.state_root()  # flush caches so every tree is current
        bucket = _bucket_of(self._key_hash(full), self._ns_nbuckets[namespace])
        bucket_keys = sorted(self._ns_buckets[namespace][bucket])
        bucket_tree = MerkleTree(
            [_leaf_for(k, self._value_hashes[k]) for k in bucket_keys]
        )
        leaf_index = bucket_keys.index(full)
        bucket_proof = bucket_tree.proof(leaf_index)
        top_index = self._top_namespaces.index(namespace)
        top_proof = self._top_tree.proof(top_index)
        return StateProof(
            namespace=namespace,
            key=key,
            value_hash=self._value_hashes[full],
            bucket_index=bucket,
            leaf_index=leaf_index,
            bucket_siblings=bucket_proof.siblings,
            namespace_siblings=tuple(self._ns_trees[namespace].path(bucket)),
            top_index=top_index,
            top_siblings=top_proof.siblings,
            root=root,
            n_buckets=self._ns_nbuckets[namespace],
        )
