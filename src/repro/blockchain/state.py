"""World state: the key-value store contracts read and write.

State keys are namespaced per contract (``"<contract>/<key>"``).  The state
supports deterministic hashing (for block state roots), deep snapshots (so a
failed transaction rolls back cleanly), and structured access helpers for the
contract runtime.
"""

from __future__ import annotations

import copy
from typing import Any, Iterator

from repro.exceptions import ValidationError
from repro.utils.hashing import hash_payload


class WorldState:
    """A namespaced key-value store with snapshot/rollback and hashing."""

    def __init__(self, initial: dict[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = copy.deepcopy(initial) if initial else {}

    @staticmethod
    def _full_key(namespace: str, key: str) -> str:
        if not namespace or not key:
            raise ValidationError("state namespace and key must be non-empty")
        if "/" in namespace:
            raise ValidationError("state namespace must not contain '/'")
        return f"{namespace}/{key}"

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Read a value; returns a deep copy so callers cannot mutate state in place."""
        value = self._data.get(self._full_key(namespace, key), default)
        return copy.deepcopy(value)

    def set(self, namespace: str, key: str, value: Any) -> None:
        """Write a value (deep-copied on the way in)."""
        self._data[self._full_key(namespace, key)] = copy.deepcopy(value)

    def delete(self, namespace: str, key: str) -> None:
        """Remove a key if present."""
        self._data.pop(self._full_key(namespace, key), None)

    def contains(self, namespace: str, key: str) -> bool:
        """Whether the key exists."""
        return self._full_key(namespace, key) in self._data

    def keys(self, namespace: str) -> list[str]:
        """All keys within a namespace (without the namespace prefix), sorted."""
        prefix = f"{namespace}/"
        return sorted(k[len(prefix):] for k in self._data if k.startswith(prefix))

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs of a namespace in sorted key order."""
        for key in self.keys(namespace):
            yield key, self.get(namespace, key)

    def snapshot(self) -> dict[str, Any]:
        """A deep copy of the raw state, suitable for rollback."""
        return copy.deepcopy(self._data)

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Replace the state with a previously taken snapshot."""
        self._data = copy.deepcopy(snapshot)

    def copy(self) -> "WorldState":
        """An independent copy of the whole state."""
        return WorldState(self._data)

    def state_root(self) -> str:
        """Deterministic hash of the entire state (the block's state root)."""
        return hash_payload({key: self._data[key] for key in sorted(self._data)})

    def raw(self) -> dict[str, Any]:
        """A deep copy of the underlying dict (for audits and debugging)."""
        return copy.deepcopy(self._data)

    def __len__(self) -> int:
        return len(self._data)
