"""The ledger: ordered blocks plus the world state they produce.

A :class:`Blockchain` owns a :class:`~repro.blockchain.state.WorldState` and a
:class:`~repro.blockchain.contracts.base.ContractRuntime`.  It can

* execute transactions (producing receipts, rolling back failed calls via the
  state's O(Δ) write journal),
* propose a block from a transaction list (leader role),
* verify and append a block proposed by someone else by re-executing it
  against its own state (miner role),
* replay the whole chain from genesis to reconstruct the state — the
  transparency property audits rely on — and
* serve *historical state views* (:meth:`Blockchain.state_at`) and the
  incremental commitment check (:meth:`Blockchain.verify_version_roots`):
  every committed block seals an O(Δ) state version, so past state is
  readable — and each header's ``state_root`` checkable — without genesis
  re-execution.

The ``state_root_version`` (pinned on the registry at protocol setup) selects
the header commitment: version 1 is the historical flat state hash
(byte-identical chains), version 2 the incrementally maintained Merkle root
that also supports per-entry inclusion proofs (see
:mod:`repro.blockchain.state`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.blockchain.block import GENESIS_PARENT_HASH, Block
from repro.blockchain.consensus import verify_block_authority
from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.state import STATE_ROOT_V1, StateView, WorldState
from repro.blockchain.transaction import Transaction, TransactionReceipt
from repro.exceptions import (
    ChainValidationError,
    InvalidBlockError,
    InvalidTransactionError,
    ValidationError,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a module cycle
    from repro.blockchain.storage import StorageBackend


class Blockchain:
    """An in-memory blockchain replica.

    Args:
        runtime_factory: zero-argument callable returning a fresh
            :class:`ContractRuntime` with all protocol contracts registered.
            Every replica must use the same factory so re-execution agrees.
        chain_id: label distinguishing independent simulations.
        state_root_version: which state commitment block headers carry (1 =
            historical flat hash, 2 = incremental Merkle root with inclusion
            proofs, 3 = Merkle root with adaptive bucketing).  Every replica
            of one chain must agree on it, which is why the protocol pins it
            on the registry at setup.
        storage: optional persistence backend (see
            :mod:`repro.blockchain.storage`), attached via
            :meth:`attach_storage`.  Strictly off-chain: it mirrors sealed
            blocks to durable storage and never changes what gets committed.
    """

    def __init__(
        self,
        runtime_factory: Callable[[], ContractRuntime],
        chain_id: str = "repro-chain",
        state_root_version: int = STATE_ROOT_V1,
        storage: "StorageBackend | None" = None,
    ) -> None:
        self.chain_id = chain_id
        self._runtime_factory = runtime_factory
        self.runtime = runtime_factory()
        self.state_root_version = int(state_root_version)
        self.state = WorldState(root_version=self.state_root_version)
        self.blocks: list[Block] = []
        self._nonces: dict[str, int] = {}
        self.storage: "StorageBackend | None" = None
        self._append_genesis()
        if storage is not None:
            self.attach_storage(storage)

    # ------------------------------------------------------------------
    # Genesis and basic accessors
    # ------------------------------------------------------------------

    def _append_genesis(self) -> None:
        genesis = Block.build(
            height=0,
            parent_hash=GENESIS_PARENT_HASH,
            proposer="genesis",
            transactions=[],
            receipts=[],
            state_root=self.state.state_root(),
            timestamp=0,
        )
        self.blocks.append(genesis)
        self.state.seal_version(0)

    def attach_storage(self, backend: "StorageBackend") -> bool:
        """Attach a persistence backend; restore from it when it holds a chain.

        Must be called with this replica fresh at genesis.  Returns ``True``
        when the backend held a committed chain and this replica adopted it
        (blocks, state with retained deltas, nonces — verified against the
        stored headers), ``False`` when the backend was fresh and was
        initialized from this replica instead.
        """
        if self.storage is not None:
            raise ChainValidationError("a storage backend is already attached")
        restored = backend.attach(self)
        self.storage = backend
        return restored

    def __getstate__(self) -> dict[str, Any]:
        """Pickle support for shipping a replica over the sync wire.

        The storage backend (if any) holds an open database connection and is
        strictly local to its owning process; a chain that crosses a process
        boundary travels detached and the receiver re-attaches its own.
        """
        state = dict(self.__dict__)
        state["storage"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    def _persist_commit(self, block: Block) -> None:
        """Mirror one freshly sealed block to the attached backend (if any)."""
        if self.storage is None:
            return
        delta = self.state._versions[block.height]
        touched = {
            full: (full in self.state._data, self.state._data.get(full))
            for full in delta
        }
        self.storage.commit_block(block, touched, delta, dict(self._nonces))

    @property
    def height(self) -> int:
        """Height of the latest block."""
        return self.blocks[-1].height

    @property
    def head(self) -> Block:
        """The latest block."""
        return self.blocks[-1]

    def next_nonce(self, sender: str) -> int:
        """The nonce the given sender should use for its next transaction."""
        return self._nonces.get(sender, 0)

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------

    def execute_transaction(self, tx: Transaction, block_height: int) -> TransactionReceipt:
        """Execute one transaction against the current state.

        Failed calls roll the state back to the pre-transaction snapshot and
        produce a failed receipt rather than raising, mirroring how real chains
        include reverted transactions in blocks.
        """
        tx.validate()
        expected_nonce = self._nonces.get(tx.sender, 0)
        if tx.nonce != expected_nonce:
            raise InvalidTransactionError(
                f"nonce mismatch for {tx.sender}: expected {expected_nonce}, got {tx.nonce}"
            )
        snapshot = self.state.snapshot()
        try:
            result, events, gas = self.runtime.execute(
                state=self.state,
                sender=tx.sender,
                contract_name=tx.contract,
                method_name=tx.method,
                args=tx.args,
                block_height=block_height,
            )
            receipt = TransactionReceipt(
                tx_hash=tx.tx_hash,
                success=True,
                result=result,
                events=tuple(events),
                gas_used=gas,
            )
        except Exception as exc:  # noqa: BLE001 - contract faults become failed receipts
            self.state.restore(snapshot)
            receipt = TransactionReceipt(
                tx_hash=tx.tx_hash,
                success=False,
                error=str(exc),
                gas_used=0,
            )
        self._nonces[tx.sender] = expected_nonce + 1
        return receipt

    # ------------------------------------------------------------------
    # Block production and verification
    # ------------------------------------------------------------------

    def propose_block(
        self,
        proposer: str,
        transactions: Iterable[Transaction],
        timestamp: int | None = None,
        view: int | None = None,
    ) -> Block:
        """Leader role: execute ``transactions`` and assemble the next block.

        The chain's own state advances as a side effect, exactly as it would on
        the leader node.  ``view`` is the consensus view number under
        epoch-authority rotation (``None`` on non-rotation chains); it is
        hashed into the block header so verifiers and auditors can recompute
        the proposer schedule.
        """
        txs = list(transactions)
        height = self.height + 1
        receipts = [self.execute_transaction(tx, height) for tx in txs]
        block = Block.build(
            height=height,
            parent_hash=self.head.block_hash,
            proposer=proposer,
            transactions=txs,
            receipts=receipts,
            state_root=self.state.state_root(),
            timestamp=self.head.header.timestamp + 1 if timestamp is None else timestamp,
            view=view,
        )
        self.blocks.append(block)
        self.state.seal_version(block.height)
        self._persist_commit(block)
        return block

    def verify_and_append(self, block: Block) -> None:
        """Miner role: re-execute a proposed block and append it if results match.

        Raises :class:`InvalidBlockError` if the block does not extend the head,
        its roots do not match its contents, its proposer/view disagree with
        the on-chain epoch-authority schedule, or re-execution produces
        different receipts or a different state root than the proposer claimed.
        """
        if block.height != self.height + 1:
            raise InvalidBlockError(
                f"block height {block.height} does not extend local head {self.height}"
            )
        if block.header.parent_hash != self.head.block_hash:
            raise InvalidBlockError("block parent hash does not match local head")
        block.verify_roots()
        # Authority check against the *pre-execution* state: round r's schedule
        # only depends on membership boundaries <= r, all committed before this
        # block, so proposer and verifier derive it from the same state.
        try:
            verify_block_authority(self.state, block)
        except Exception as exc:
            raise InvalidBlockError(str(exc)) from exc

        # Re-execution failures unwind through the state's write journal, so a
        # rejected proposal leaves local state untouched at O(Δ) cost.
        saved_state = self.state.snapshot()
        saved_nonces = dict(self._nonces)
        try:
            receipts = [self.execute_transaction(tx, block.height) for tx in block.transactions]
            local_receipt_dicts = [r.to_dict() for r in receipts]
            proposed_receipt_dicts = [r.to_dict() for r in block.receipts]
            if local_receipt_dicts != proposed_receipt_dicts:
                raise InvalidBlockError(f"block {block.height}: re-executed receipts differ from proposal")
            if self.state.state_root() != block.header.state_root:
                raise InvalidBlockError(f"block {block.height}: state root mismatch after re-execution")
        except InvalidBlockError:
            self.state.restore(saved_state)
            self._nonces = saved_nonces
            raise
        except Exception as exc:  # noqa: BLE001
            self.state.restore(saved_state)
            self._nonces = saved_nonces
            raise InvalidBlockError(f"block {block.height}: re-execution failed: {exc}") from exc
        self.blocks.append(block)
        self.state.seal_version(block.height)
        self._persist_commit(block)

    # ------------------------------------------------------------------
    # Validation and replay (transparency)
    # ------------------------------------------------------------------

    def validate_chain(self) -> None:
        """Check structural integrity of the whole chain (links and Merkle roots)."""
        if not self.blocks or self.blocks[0].height != 0:
            raise ChainValidationError("chain has no genesis block")
        if self.blocks[0].header.parent_hash != GENESIS_PARENT_HASH:
            raise ChainValidationError("genesis parent hash is wrong")
        for previous, current in zip(self.blocks, self.blocks[1:]):
            if current.height != previous.height + 1:
                raise ChainValidationError(f"non-contiguous heights at block {current.height}")
            if current.header.parent_hash != previous.block_hash:
                raise ChainValidationError(f"broken parent link at block {current.height}")
            current.verify_roots()

    def replay(self) -> "Blockchain":
        """Rebuild a fresh replica by re-executing every block from genesis.

        This is the transparency guarantee in executable form: anyone holding
        the block data can independently reconstruct the final state (and hence
        every published model and contribution score).
        """
        self.validate_chain()
        replica = Blockchain(
            self._runtime_factory,
            chain_id=f"{self.chain_id}-replay",
            state_root_version=self.state_root_version,
        )
        for block in self.blocks[1:]:
            replica.verify_and_append(block)
        return replica

    def clone(self) -> "Blockchain":
        """A structural copy of this replica (blocks, state, nonces) without re-execution.

        Used by miner nodes to stage proposals and verification runs cheaply;
        :meth:`replay` remains the from-scratch transparency check.
        """
        replica = Blockchain(
            self._runtime_factory,
            chain_id=f"{self.chain_id}-clone",
            state_root_version=self.state_root_version,
        )
        replica.blocks = list(self.blocks)
        replica.state = self.state.copy()
        replica._nonces = dict(self._nonces)
        return replica

    # ------------------------------------------------------------------
    # Historical views and incremental verification
    # ------------------------------------------------------------------

    def state_at(self, height: int) -> StateView:
        """A read-only view of the world state as of committed block ``height``.

        Built from the retained per-block reverse deltas in O(keys changed
        since ``height``) — no genesis re-execution.  Below the pruning
        horizon (deltas dropped by :meth:`prune`) the O(Δ) overlay is gone,
        so the view falls back to replaying the chain prefix on a scratch
        replica — slower, but the answer stays available as long as the
        blocks are.  The view borrows its backing state, so read it before
        the chain advances (take a fresh view per use).
        """
        height = int(height)
        if not 0 <= height <= self.height:
            raise ChainValidationError(
                f"no committed block at height {height} (chain head is {self.height})"
            )
        try:
            return self.state.view_at(height)
        except ValidationError:
            # Pruned below the horizon: snapshot+replay fallback.  The view
            # holds a reference to the replica's state, keeping it alive.
            return self.replay_prefix(height).state.view_at(height)

    def replay_prefix(self, height: int) -> "Blockchain":
        """Re-execute blocks 1..``height`` from genesis onto a fresh replica.

        The snapshot+replay fallback for history below the pruning horizon:
        ``verify_and_append`` re-checks every receipt and state root along the
        way, so the result is verified, not trusted.
        """
        height = int(height)
        if not 0 <= height <= self.height:
            raise ChainValidationError(
                f"no committed block at height {height} (chain head is {self.height})"
            )
        replica = Blockchain(
            self._runtime_factory,
            chain_id=f"{self.chain_id}-replay",
            state_root_version=self.state_root_version,
        )
        for block in self.blocks[1 : height + 1]:
            replica.verify_and_append(block)
        return replica

    def prune(self, keep_last: int) -> list[int]:
        """Drop reverse deltas below a horizon of the last ``keep_last`` blocks.

        Blocks, live state, and nonces are untouched — only the O(Δ) overlay
        path below the horizon is given up.  :meth:`state_at` and the
        incremental audit fall back to snapshot+replay there (and the audit
        reports it).  The attached backend (if any) drops the same delta
        rows.  Returns the pruned heights.
        """
        pruned = self.state.prune_versions(keep_last)
        if self.storage is not None and pruned:
            self.storage.prune(pruned)
        return pruned

    def oldest_retained_version(self) -> int | None:
        """The lowest height whose reverse delta is retained (the pruning horizon)."""
        return self.state.oldest_retained_version()

    def verify_version_roots(self) -> list[int]:
        """Check every committed header's ``state_root`` against the retained versions.

        Walks a scratch copy of the live state backwards — one O(Δ) reverse
        delta per block — recomputing the root incrementally at each height
        and comparing it to the header.  This is the succinct-commitment half
        of the transparency story: together with :meth:`validate_chain` it
        certifies that the state versions this replica serves are exactly the
        ones the majority-voted headers committed, without re-executing a
        single transaction (``replay`` remains the full re-execution oracle).

        On a pruned chain the backward walk stops at the oldest retained
        delta: heights from the head down to one below the horizon are
        verified (unwinding delta ``h`` lands the scratch copy *at* ``h-1``),
        anything older has no retained version to check.

        Returns the verified heights (descending).  Raises
        :class:`ChainValidationError` on any root mismatch.
        """
        scratch = self.state.copy()
        verified: list[int] = []
        for block in reversed(self.blocks):
            root = scratch.state_root()
            if root != block.header.state_root:
                raise ChainValidationError(
                    f"block {block.height}: retained state version hashes to "
                    f"{root[:12]} but the committed header says "
                    f"{block.header.state_root[:12]}"
                )
            verified.append(block.height)
            if block.height == 0:
                break
            if not scratch.has_version(block.height):
                # Pruned below the horizon: nothing older can be unwound.
                break
            scratch.unwind_latest_version()
        return verified

    def fast_sync_from(self, reference: "Blockchain") -> None:
        """Adopt a peer replica's committed chain without re-executing it.

        A joining miner copies the peer's blocks, state (with its retained
        versions), and nonce counters, then independently checks what the
        copy *claims*: chain structure and Merkle tx/receipt roots
        (:meth:`validate_chain`) and every header's state commitment against
        the copied versions (:meth:`verify_version_roots`).  Trust reduces to
        the majority-voted block headers — exactly the succinct-commitment
        model — while a full :meth:`replay` stays available as the
        re-execution oracle.
        """
        if self.height != 0 or self.blocks[0].transactions:
            raise ChainValidationError("fast sync requires a fresh replica at genesis")
        if reference.state_root_version != self.state_root_version:
            raise ChainValidationError(
                f"fast sync across state root versions ({reference.state_root_version} "
                f"!= {self.state_root_version})"
            )
        if self.blocks[0].block_hash != reference.blocks[0].block_hash:
            raise ChainValidationError("fast sync requires an identical genesis block")
        # Adopt-then-verify, but commit only on success: a peer that fails
        # validation must leave this replica at genesis so it can retry
        # against an honest peer.
        saved = (self.blocks, self.state, self._nonces)
        self.blocks = list(reference.blocks)
        self.state = reference.state.copy()
        self._nonces = dict(reference._nonces)
        try:
            self.validate_chain()
            self.verify_version_roots()
        except Exception:
            self.blocks, self.state, self._nonces = saved
            raise
        if self.storage is not None:
            self.storage.rewrite(self)

    def catch_up_from(self, reference: "Blockchain") -> list[Block]:
        """Adopt a longer peer chain mid-flight after falling behind.

        This is :meth:`fast_sync_from`'s recovery twin for a replica that is
        *not* fresh — e.g. one stranded behind a healed partition.  The peer's
        chain is fast-synced onto a scratch replica (full structure and
        header-commitment verification, same succinct-commitment trust model),
        the local prefix is required to match the peer's byte for byte, and
        only then are blocks, state, and nonces swapped in.  Returns the newly
        adopted blocks (so the caller can e.g. clear them from a mempool).
        """
        if reference.height <= self.height:
            raise ChainValidationError(
                f"catch-up needs a longer peer chain (peer at {reference.height}, "
                f"local at {self.height})"
            )
        scratch = Blockchain(
            self._runtime_factory,
            chain_id=self.chain_id,
            state_root_version=self.state_root_version,
        )
        scratch.fast_sync_from(reference)
        for local, remote in zip(self.blocks, scratch.blocks):
            if local.block_hash != remote.block_hash:
                raise ChainValidationError(
                    f"peer chain diverges at height {local.height}: local "
                    f"{local.block_hash[:12]} vs peer {remote.block_hash[:12]}"
                )
        adopted = scratch.blocks[self.height + 1 :]
        self.blocks = scratch.blocks
        self.state = scratch.state
        self._nonces = scratch._nonces
        if self.storage is not None:
            self.storage.rewrite(self)
        return adopted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def find_receipt(self, tx_hash: str) -> TransactionReceipt | None:
        """Locate the receipt for a transaction hash anywhere in the chain."""
        for block in self.blocks:
            for receipt in block.receipts:
                if receipt.tx_hash == tx_hash:
                    return receipt
        return None

    def events(self, name: str | None = None) -> list[dict[str, Any]]:
        """All events emitted on the chain, optionally filtered by event name."""
        found = []
        for block in self.blocks:
            for receipt in block.receipts:
                for event in receipt.events:
                    if name is None or event.get("name") == name:
                        found.append({"block": block.height, "tx": receipt.tx_hash, **event})
        return found

    def total_transactions(self) -> int:
        """Number of transactions across all blocks."""
        return sum(len(block.transactions) for block in self.blocks)

    def total_gas(self) -> int:
        """Total abstract gas consumed by the chain."""
        return sum(block.total_gas() for block in self.blocks)
