"""Mempool: pending transactions awaiting inclusion in a block."""

from __future__ import annotations

from collections import OrderedDict

from repro.blockchain.transaction import Transaction
from repro.exceptions import InvalidTransactionError


class Mempool:
    """A FIFO pool of pending transactions, deduplicated by hash.

    Transactions are validated on admission (signature and serializability);
    nonce ordering is enforced later by the chain at execution time.
    """

    def __init__(self, max_size: int = 100_000) -> None:
        self._pool: "OrderedDict[str, Transaction]" = OrderedDict()
        self.max_size = max_size

    def add(self, tx: Transaction) -> bool:
        """Admit a transaction; returns False if it is a duplicate."""
        tx.validate()
        if tx.tx_hash in self._pool:
            return False
        if len(self._pool) >= self.max_size:
            raise InvalidTransactionError("mempool is full")
        self._pool[tx.tx_hash] = tx
        return True

    def add_many(self, txs: list[Transaction]) -> int:
        """Admit a batch; returns how many were newly added."""
        return sum(1 for tx in txs if self.add(tx))

    def take(self, limit: int | None = None) -> list[Transaction]:
        """Remove and return up to ``limit`` transactions in arrival order."""
        if limit is None or limit >= len(self._pool):
            txs = list(self._pool.values())
            self._pool.clear()
            return txs
        txs = []
        for _ in range(limit):
            _, tx = self._pool.popitem(last=False)
            txs.append(tx)
        return txs

    def peek(self) -> list[Transaction]:
        """The pending transactions in arrival order, without removing them."""
        return list(self._pool.values())

    def remove(self, tx_hashes: list[str]) -> None:
        """Drop transactions that were included in an accepted block."""
        for tx_hash in tx_hashes:
            self._pool.pop(tx_hash, None)

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._pool
