"""Event log helpers: structured views over contract-emitted events."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class ChainEvent:
    """A contract event with its provenance on the chain."""

    block_height: int
    tx_hash: str
    name: str
    data: dict[str, Any]


def collect_events(raw_events: Iterable[dict[str, Any]]) -> list[ChainEvent]:
    """Convert the dict events returned by ``Blockchain.events`` into ChainEvents."""
    collected = []
    for raw in raw_events:
        collected.append(
            ChainEvent(
                block_height=int(raw.get("block", -1)),
                tx_hash=str(raw.get("tx", "")),
                name=str(raw.get("name", "")),
                data=dict(raw.get("data", {})),
            )
        )
    return collected


def filter_events(events: Iterable[ChainEvent], name: str) -> list[ChainEvent]:
    """Events with the given name, preserving chain order."""
    return [event for event in events if event.name == name]


def latest_event(events: Iterable[ChainEvent], name: str) -> ChainEvent | None:
    """The most recent event with the given name, or None."""
    matching = filter_events(events, name)
    return matching[-1] if matching else None
