"""Merkle trees over transaction hashes.

Blocks commit to their transaction list (and receipt list) through a Merkle
root, and the tree can produce inclusion proofs so an auditor can verify that a
specific masked update or evaluation result was included in a block without
replaying the whole chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import ValidationError
from repro.utils.hashing import hash_concat, sha256_hex

EMPTY_ROOT = sha256_hex(b"repro-empty-merkle")
_EMPTY_ROOT = EMPTY_ROOT  # backwards-compatible alias


def fold_proof_path(leaf: str, index: int, siblings: Iterable[str]) -> str:
    """Fold a leaf up a Merkle path: the root implied by ``siblings`` bottom-up.

    Shared by :meth:`MerkleTree.verify_proof` and the state-store proofs so
    every proof in the system uses one hashing convention.
    """
    current = leaf
    position = index
    for sibling in siblings:
        if position % 2 == 0:
            current = hash_concat([current, sibling])
        else:
            current = hash_concat([sibling, current])
        position //= 2
    return current


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf, its index, and sibling hashes bottom-up."""

    leaf: str
    index: int
    siblings: tuple[str, ...]
    root: str


class MerkleTree:
    """A binary Merkle tree over a list of hex-string leaves.

    Odd levels duplicate the last node (Bitcoin-style), which keeps proofs simple
    and the root well defined for any leaf count.
    """

    def __init__(self, leaves: list[str]) -> None:
        for leaf in leaves:
            if not isinstance(leaf, str) or not leaf:
                raise ValidationError("Merkle leaves must be non-empty strings")
        self._leaves = list(leaves)
        self._levels = self._build_levels(self._leaves)

    @staticmethod
    def _build_levels(leaves: list[str]) -> list[list[str]]:
        if not leaves:
            return [[_EMPTY_ROOT]]
        levels = [list(leaves)]
        current = list(leaves)
        while len(current) > 1:
            if len(current) % 2 == 1:
                current = current + [current[-1]]
            nxt = [hash_concat(current[i : i + 2]) for i in range(0, len(current), 2)]
            levels.append(nxt)
            current = nxt
        return levels

    @property
    def leaves(self) -> list[str]:
        """The leaf hashes this tree was built from."""
        return list(self._leaves)

    @property
    def root(self) -> str:
        """The Merkle root (a constant sentinel root for an empty tree)."""
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Produce an inclusion proof for the leaf at ``index``."""
        if not self._leaves:
            raise ValidationError("cannot prove inclusion in an empty tree")
        if not 0 <= index < len(self._leaves):
            raise ValidationError(f"leaf index {index} out of range")
        siblings: list[str] = []
        position = index
        for level in self._levels[:-1]:
            padded = level + [level[-1]] if len(level) % 2 == 1 else level
            sibling_index = position + 1 if position % 2 == 0 else position - 1
            siblings.append(padded[sibling_index])
            position //= 2
        return MerkleProof(leaf=self._leaves[index], index=index, siblings=tuple(siblings), root=self.root)

    @staticmethod
    def verify_proof(proof: MerkleProof) -> bool:
        """Check that a proof's leaf hashes up to its claimed root."""
        return fold_proof_path(proof.leaf, proof.index, proof.siblings) == proof.root

    @classmethod
    def root_of(cls, leaves: list[str]) -> str:
        """Convenience: the Merkle root of a leaf list without keeping the tree."""
        return cls(leaves).root
